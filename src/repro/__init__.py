"""repro: reproduction of "Progress on Carbon Nanotube BEOL Interconnects".

The package mirrors the paper's structure (Uhlig et al., DATE 2018):

* :mod:`repro.atomistic` -- tight-binding transport (the DFT/NEGF substitute
  behind Fig. 8),
* :mod:`repro.core` -- CNT / Cu / composite interconnect compact models
  (Eqs. 4-5, Fig. 9 and the Section I comparisons),
* :mod:`repro.tcad` -- finite-difference RC extraction (Eqs. 2-3, Fig. 10),
* :mod:`repro.circuit` -- MNA circuit simulation and the 45 nm inverter
  benchmark (Figs. 11-12),
* :mod:`repro.thermal` -- self-heating, SThM emulation and via thermal models,
* :mod:`repro.process` -- growth, doping stability, variability and wafer maps,
* :mod:`repro.characterization` -- TLM / I-V / electromigration / Raman
  measurement emulation,
* :mod:`repro.analysis` -- experiment drivers that regenerate every figure
  and table plus the registered extension studies (catalog in
  docs/EXPERIMENTS.md),
* :mod:`repro.api` -- the experiment engine: registry, declarative sweeps,
  columnar results, parallel/streaming execution, the on-disk result cache
  and the ``python -m repro`` CLI.

Model quick start::

    from repro.core import MWCNTInterconnect, DopingProfile
    from repro.units import nm, um

    pristine = MWCNTInterconnect(outer_diameter=nm(10), length=um(500))
    doped = pristine.with_doping(DopingProfile.from_channels(10))
    print(pristine.resistance, doped.resistance)

Experiment quick start::

    from repro.api import Engine, SweepSpec

    engine = Engine()
    fig9 = engine.run("fig9")
    print(fig9.filter(kind="Cu").column("conductivity_ms_per_m"))

    sweep = engine.sweep(
        "table_density", SweepSpec.grid(length_um=[1.0, 10.0, 100.0])
    )
    print(len(sweep))

or, from the shell, ``python -m repro list`` / ``python -m repro run fig9``
(``python -m repro cache stats`` inspects the memoisation cache, and
``python -m repro docs`` regenerates the experiment catalog).
"""

from repro import constants, units
from repro.api import Engine, Experiment, ResultSet, SweepSpec

__version__ = "1.1.0"

__all__ = [
    "constants",
    "units",
    "Engine",
    "Experiment",
    "ResultSet",
    "SweepSpec",
    "__version__",
]
