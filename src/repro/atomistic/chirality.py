"""Chirality bookkeeping for single-wall carbon nanotubes.

A SWCNT is fully described by its chiral indices ``(n, m)``: the chiral vector
``C_h = n a1 + m a2`` wraps the graphene sheet into a cylinder.  Everything
else -- diameter, chiral angle, metallic or semiconducting character, the
translation vector along the tube axis and the number of atoms per unit cell
-- follows from ``(n, m)``.  These quantities are the inputs of the
zone-folding band-structure calculation in
:mod:`repro.atomistic.bandstructure`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.constants import CC_BOND_LENGTH, GRAPHENE_LATTICE_CONSTANT


@dataclass(frozen=True)
class Chirality:
    """Chiral indices of a single-wall carbon nanotube.

    Parameters
    ----------
    n, m:
        Chiral indices.  Convention: ``n >= m >= 0`` and ``n > 0``.

    Examples
    --------
    >>> tube = Chirality(7, 7)
    >>> round(tube.diameter * 1e9, 3)
    0.949
    >>> tube.is_metallic
    True
    """

    n: int
    m: int

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ValueError(f"chiral index n must be positive, got {self.n}")
        if self.m < 0:
            raise ValueError(f"chiral index m must be non-negative, got {self.m}")
        if self.m > self.n:
            raise ValueError(
                f"chirality convention requires n >= m, got ({self.n}, {self.m})"
            )

    # --- basic geometry -----------------------------------------------------

    @property
    def circumference(self) -> float:
        """Length of the chiral vector |C_h| in metre."""
        n, m = self.n, self.m
        return GRAPHENE_LATTICE_CONSTANT * math.sqrt(n * n + n * m + m * m)

    @property
    def diameter(self) -> float:
        """Tube diameter in metre."""
        return self.circumference / math.pi

    @property
    def chiral_angle(self) -> float:
        """Chiral angle in radian (0 for zigzag, pi/6 for armchair)."""
        n, m = self.n, self.m
        return math.atan2(math.sqrt(3.0) * m, 2.0 * n + m)

    # --- electronic character -------------------------------------------------

    @property
    def is_metallic(self) -> bool:
        """True when ``(n - m) mod 3 == 0`` (zone-folding metallicity rule)."""
        return (self.n - self.m) % 3 == 0

    @property
    def is_armchair(self) -> bool:
        """True for (n, n) tubes."""
        return self.n == self.m

    @property
    def is_zigzag(self) -> bool:
        """True for (n, 0) tubes."""
        return self.m == 0

    @property
    def family(self) -> str:
        """Human-readable family name: 'armchair', 'zigzag' or 'chiral'."""
        if self.is_armchair:
            return "armchair"
        if self.is_zigzag:
            return "zigzag"
        return "chiral"

    # --- unit cell -----------------------------------------------------------

    @property
    def d_r(self) -> int:
        """gcd(2n + m, 2m + n), the reduced greatest common divisor d_R."""
        return math.gcd(2 * self.n + self.m, 2 * self.m + self.n)

    @property
    def translation_indices(self) -> tuple[int, int]:
        """Integer components (t1, t2) of the translation vector T = t1 a1 + t2 a2."""
        d_r = self.d_r
        t1 = (2 * self.m + self.n) // d_r
        t2 = -(2 * self.n + self.m) // d_r
        return t1, t2

    @property
    def translation_length(self) -> float:
        """Length of the translation vector |T| in metre."""
        return math.sqrt(3.0) * self.circumference / self.d_r

    @property
    def hexagons_per_cell(self) -> int:
        """Number N of graphene hexagons in the nanotube unit cell."""
        n, m = self.n, self.m
        return 2 * (n * n + n * m + m * m) // self.d_r

    @property
    def atoms_per_cell(self) -> int:
        """Number of carbon atoms in the nanotube unit cell (2 per hexagon)."""
        return 2 * self.hexagons_per_cell

    @property
    def band_gap_estimate(self) -> float:
        """Analytic band-gap estimate in eV.

        Metallic tubes return 0.  Semiconducting tubes follow the standard
        zone-folding estimate ``E_g = 2 a_cc gamma0 / d`` with the hopping
        energy taken from :data:`repro.constants.TB_HOPPING_EV`.
        """
        if self.is_metallic:
            return 0.0
        from repro.constants import TB_HOPPING_EV

        return 2.0 * CC_BOND_LENGTH * TB_HOPPING_EV / self.diameter

    # --- constructors ---------------------------------------------------------

    @classmethod
    def armchair(cls, n: int) -> "Chirality":
        """Armchair tube (n, n)."""
        return cls(n, n)

    @classmethod
    def zigzag(cls, n: int) -> "Chirality":
        """Zigzag tube (n, 0)."""
        return cls(n, 0)

    @classmethod
    def from_diameter(
        cls, diameter_m: float, family: str = "armchair", metallic: bool | None = None
    ) -> "Chirality":
        """Closest (n, m) of the requested family to a target diameter.

        Parameters
        ----------
        diameter_m:
            Target diameter in metre.
        family:
            ``"armchair"`` or ``"zigzag"``.
        metallic:
            When the family is ``"zigzag"``, optionally force the returned tube
            to be metallic (``n`` a multiple of 3) or semiconducting.  Ignored
            for armchair tubes, which are always metallic.
        """
        if diameter_m <= 0:
            raise ValueError("diameter must be positive")
        if family == "armchair":
            n = max(1, round(math.pi * diameter_m / (GRAPHENE_LATTICE_CONSTANT * math.sqrt(3.0))))
            return cls(n, n)
        if family == "zigzag":
            n = max(1, round(math.pi * diameter_m / GRAPHENE_LATTICE_CONSTANT))
            if metallic is True:
                candidates = [c for c in (n - 1, n, n + 1, n + 2) if c >= 3 and c % 3 == 0]
                n = min(candidates, key=lambda c: abs(c - n))
            elif metallic is False:
                candidates = [c for c in (n - 1, n, n + 1, n + 2) if c >= 1 and c % 3 != 0]
                n = min(candidates, key=lambda c: abs(c - n))
            return cls(n, 0)
        raise ValueError(f"unknown family {family!r}; expected 'armchair' or 'zigzag'")

    def __str__(self) -> str:
        return f"({self.n},{self.m})"
