"""Landauer transmission of ballistic carbon nanotubes.

In the ballistic limit the transmission of a perfect nanotube at energy ``E``
equals the number of bands that cross ``E`` (mode counting): every band whose
energy range spans ``E`` contributes exactly one transmission channel, and the
two-terminal conductance is ``G(E_F) = G0 * T(E_F)`` with the spin-degenerate
conductance quantum ``G0 = 2 e^2 / h``.  This is the working approximation of
the paper's NEGF simulations in the ballistic regime (Section III.A).
"""

from __future__ import annotations

import numpy as np

from repro.atomistic.bandstructure import BandStructure


def _crossings_per_energy(energies: np.ndarray, energy: np.ndarray) -> np.ndarray:
    """Count band crossings of each probe energy over the whole Brillouin zone.

    ``energies`` has shape ``(n_bands, n_k)``; ``energy`` is 1-D.  For every
    probe energy the number of sign changes of ``E_band(k) - E`` along ``k``
    is accumulated over all bands.  Each pair of crossings corresponds to one
    right-moving (and one left-moving) mode, so the channel count is half the
    crossing count.
    """
    counts = np.zeros(energy.shape[0], dtype=int)
    for band in energies:
        # sign of (E_band(k) - E) for all probe energies at once: (n_e, n_k)
        signs = np.sign(band[None, :] - energy[:, None])
        # Treat exact hits as positive so a touching extremum is not counted
        # as a double crossing.
        signs[signs == 0] = 1
        counts += (np.diff(signs, axis=1) != 0).sum(axis=1)
    return counts


def channels_at_energy(
    band_structure: BandStructure, energy_ev: float | np.ndarray, degeneracy_tol_ev: float = 1.0e-6
) -> np.ndarray:
    """Number of open transmission channels (modes) at the given energy.

    A band that crosses the probe energy ``2 c`` times as ``k`` sweeps the
    Brillouin zone contributes ``c`` forward-moving modes.  Energies that sit
    exactly on a band-touching point (e.g. the Fermi point of an armchair
    tube) are evaluated a hair above and below and the larger count is used,
    so metallic tubes correctly report two channels at their Fermi level.

    Parameters
    ----------
    band_structure:
        Zone-folded band structure of the tube.
    energy_ev:
        Energy (scalar or array) in eV, measured on the band-structure energy
        axis (pristine Fermi level at 0 eV).
    degeneracy_tol_ev:
        Offset used to probe just above/below the requested energy.

    Returns
    -------
    numpy.ndarray
        Integer channel count with the same shape as ``energy_ev``.
    """
    energy = np.atleast_1d(np.asarray(energy_ev, dtype=float)).ravel()
    bands = band_structure.energies

    upper = _crossings_per_energy(bands, energy + degeneracy_tol_ev)
    lower = _crossings_per_energy(bands, energy - degeneracy_tol_ev)
    counts = np.maximum(upper, lower) // 2

    if np.isscalar(energy_ev):
        return counts[0]
    return counts.reshape(np.shape(energy_ev))


def transmission_function(
    band_structure: BandStructure,
    energies_ev: np.ndarray | None = None,
    n_points: int = 801,
    margin_ev: float = 0.5,
) -> tuple[np.ndarray, np.ndarray]:
    """Transmission (channel count) versus energy.

    Parameters
    ----------
    band_structure:
        Zone-folded band structure of the tube.
    energies_ev:
        Energy grid in eV.  When omitted, a uniform grid spanning the band
        structure plus ``margin_ev`` on each side is used.
    n_points:
        Number of points of the automatic grid.
    margin_ev:
        Margin added above/below the band extrema for the automatic grid.

    Returns
    -------
    (energies, transmission):
        Both 1-D arrays; transmission is the integer number of open channels.
    """
    if energies_ev is None:
        e_min, e_max = band_structure.energy_window()
        energies_ev = np.linspace(e_min - margin_ev, e_max + margin_ev, n_points)
    energies_ev = np.asarray(energies_ev, dtype=float)
    transmission = channels_at_energy(band_structure, energies_ev)
    return energies_ev, np.asarray(transmission, dtype=float)


def thermally_averaged_transmission(
    band_structure: BandStructure,
    fermi_level_ev: float = 0.0,
    temperature: float = 300.0,
    n_points: int = 601,
    window_kt: float = 10.0,
) -> float:
    """Thermal average of the transmission around a Fermi level.

    Evaluates ``integral T(E) (-df/dE) dE`` with the Fermi-Dirac derivative as
    weight, which is the finite-temperature Landauer conductance in units of
    ``G0``.  At low temperature this reduces to the channel count at the Fermi
    level.

    Parameters
    ----------
    band_structure:
        Zone-folded band structure.
    fermi_level_ev:
        Fermi level in eV (0 for a pristine tube, negative for p-type doping).
    temperature:
        Temperature in kelvin.  ``0`` falls back to the zero-temperature count.
    n_points:
        Number of integration points.
    window_kt:
        Half-width of the integration window in units of ``k_B T``.
    """
    if temperature <= 0.0:
        return float(channels_at_energy(band_structure, fermi_level_ev))

    from repro.constants import BOLTZMANN_EV

    kt = BOLTZMANN_EV * temperature
    energies = np.linspace(
        fermi_level_ev - window_kt * kt, fermi_level_ev + window_kt * kt, n_points
    )
    transmission = channels_at_energy(band_structure, energies).astype(float)
    x = (energies - fermi_level_ev) / kt
    # -df/dE = 1/(4 kT) sech^2(x/2); normalised so it integrates to 1.
    weight = 1.0 / (4.0 * kt * np.cosh(x / 2.0) ** 2)
    return float(np.trapezoid(transmission * weight, energies))
