"""Graphene pi-band tight-binding dispersion.

The zone-folding description of a carbon nanotube samples the 2-D graphene
dispersion along a set of parallel "cutting lines" in reciprocal space.  This
module provides the 2-D dispersion itself together with the real- and
reciprocal-space lattice vectors in the convention used by
:mod:`repro.atomistic.bandstructure`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.constants import GRAPHENE_LATTICE_CONSTANT, TB_HOPPING_EV


def lattice_vectors(a: float = GRAPHENE_LATTICE_CONSTANT) -> tuple[np.ndarray, np.ndarray]:
    """Real-space graphene lattice vectors ``a1`` and ``a2``.

    Uses the convention ``a1 = a (sqrt(3)/2, 1/2)``, ``a2 = a (sqrt(3)/2, -1/2)``
    so that the chiral vector of an (n, m) tube is ``n a1 + m a2``.
    """
    a1 = np.array([math.sqrt(3.0) / 2.0, 0.5]) * a
    a2 = np.array([math.sqrt(3.0) / 2.0, -0.5]) * a
    return a1, a2


def reciprocal_vectors(a: float = GRAPHENE_LATTICE_CONSTANT) -> tuple[np.ndarray, np.ndarray]:
    """Reciprocal lattice vectors ``b1`` and ``b2`` with ``a_i . b_j = 2 pi delta_ij``."""
    a1, a2 = lattice_vectors(a)
    cell = np.column_stack([a1, a2])
    recip = 2.0 * math.pi * np.linalg.inv(cell).T
    return recip[:, 0], recip[:, 1]


def structure_factor(k: np.ndarray, a: float = GRAPHENE_LATTICE_CONSTANT) -> np.ndarray:
    """Nearest-neighbour structure factor ``f(k) = 1 + exp(i k.a1) + exp(i k.a2)``.

    Parameters
    ----------
    k:
        Array of wave vectors with shape ``(..., 2)`` in rad/metre.
    """
    k = np.asarray(k, dtype=float)
    a1, a2 = lattice_vectors(a)
    phase1 = k @ a1
    phase2 = k @ a2
    return 1.0 + np.exp(1j * phase1) + np.exp(1j * phase2)


def dispersion(
    k: np.ndarray,
    hopping_ev: float = TB_HOPPING_EV,
    a: float = GRAPHENE_LATTICE_CONSTANT,
) -> np.ndarray:
    """Magnitude of the graphene pi/pi* band energy at wave vector(s) ``k``.

    Returns ``|E(k)| = gamma0 |f(k)|`` in eV; the conduction (valence) band is
    ``+|E|`` (``-|E|``).  The Fermi level of pristine graphene is at 0 eV.

    Parameters
    ----------
    k:
        Array of wave vectors with shape ``(..., 2)`` in rad/metre.
    hopping_ev:
        Nearest-neighbour hopping energy ``gamma0`` in eV.
    """
    return hopping_ev * np.abs(structure_factor(k, a=a))


def dirac_points(a: float = GRAPHENE_LATTICE_CONSTANT) -> tuple[np.ndarray, np.ndarray]:
    """The two inequivalent Dirac points K and K' in rad/metre."""
    b1, b2 = reciprocal_vectors(a)
    k_point = (2.0 * b1 + b2) / 3.0
    k_prime = (b1 + 2.0 * b2) / 3.0
    return k_point, k_prime
