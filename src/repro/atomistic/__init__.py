"""Atomistic transport models for single-wall carbon nanotubes.

This subpackage is the reproduction's substitute for the paper's DFT/NEGF
simulations (Section III.A, Fig. 8).  It implements:

* :mod:`repro.atomistic.chirality` -- chiral indices, diameter, metallicity,
  translation vector and unit-cell bookkeeping,
* :mod:`repro.atomistic.graphene` -- the graphene pi-band tight-binding
  dispersion that zone folding is built on,
* :mod:`repro.atomistic.bandstructure` -- zone-folded CNT band structures,
* :mod:`repro.atomistic.transmission` -- Landauer transmission (channel
  counting) versus energy,
* :mod:`repro.atomistic.dos` -- density of states with van Hove singularities,
* :mod:`repro.atomistic.conductance` -- ballistic conductance versus diameter
  and temperature (Fig. 8a),
* :mod:`repro.atomistic.doping` -- rigid-band charge-transfer doping
  (Fig. 8b/c: iodine doping of SWCNT(7,7)).
"""

from repro.atomistic.chirality import Chirality
from repro.atomistic.bandstructure import BandStructure, compute_band_structure
from repro.atomistic.transmission import transmission_function, channels_at_energy
from repro.atomistic.conductance import (
    ballistic_conductance,
    conducting_channels,
    conductance_vs_diameter,
)
from repro.atomistic.dos import density_of_states
from repro.atomistic.doping import (
    DopedTube,
    doped_conductance,
    fermi_shift_for_target_conductance,
)

__all__ = [
    "Chirality",
    "BandStructure",
    "compute_band_structure",
    "transmission_function",
    "channels_at_energy",
    "ballistic_conductance",
    "conducting_channels",
    "conductance_vs_diameter",
    "density_of_states",
    "DopedTube",
    "doped_conductance",
    "fermi_shift_for_target_conductance",
]
