"""Density of states of single-wall carbon nanotubes.

The 1-D density of states of a nanotube exhibits van Hove singularities at
every subband edge.  It is computed here directly from the zone-folded band
structure by histogramming band energies weighted by the inverse group
velocity, with a small Gaussian broadening to keep the singularities finite.
The DOS enters the doping model: shifting the Fermi level into regions of
higher DOS opens additional conduction channels (paper Section III.C).
"""

from __future__ import annotations

import numpy as np

from repro.atomistic.bandstructure import BandStructure


def density_of_states(
    band_structure: BandStructure,
    energies_ev: np.ndarray | None = None,
    n_points: int = 801,
    broadening_ev: float = 0.02,
) -> tuple[np.ndarray, np.ndarray]:
    """Density of states per unit cell versus energy.

    Parameters
    ----------
    band_structure:
        Zone-folded band structure of the tube.
    energies_ev:
        Energy grid in eV.  When omitted a uniform grid covering the bands is
        used.
    n_points:
        Number of points of the automatic energy grid.
    broadening_ev:
        Gaussian broadening in eV applied to each state.

    Returns
    -------
    (energies, dos):
        1-D arrays; ``dos`` is in states per eV per unit cell (both spins).
    """
    if broadening_ev <= 0.0:
        raise ValueError("broadening must be positive")

    if energies_ev is None:
        e_min, e_max = band_structure.energy_window()
        pad = 5.0 * broadening_ev
        energies_ev = np.linspace(e_min - pad, e_max + pad, n_points)
    energies_ev = np.asarray(energies_ev, dtype=float)

    band_energies = band_structure.energies.ravel()
    n_k = band_structure.n_k
    # Each sampled (band, k) state carries weight 2 (spin) / n_k so the DOS
    # integrates to 2 states per band per unit cell.
    weight = 2.0 / n_k

    diff = energies_ev[:, None] - band_energies[None, :]
    gauss = np.exp(-0.5 * (diff / broadening_ev) ** 2) / (
        broadening_ev * np.sqrt(2.0 * np.pi)
    )
    dos = weight * gauss.sum(axis=1)
    return energies_ev, dos


def carrier_density_shift(
    band_structure: BandStructure,
    fermi_shift_ev: float,
    temperature: float = 300.0,
    n_points: int = 2001,
) -> float:
    """Change in carriers per unit cell caused by a rigid Fermi-level shift.

    Positive return value means added electrons (n-type doping); negative
    means added holes (p-type doping, e.g. the paper's iodine/PtCl4 dopants
    which shift the Fermi level down).

    Parameters
    ----------
    band_structure:
        Zone-folded band structure of the pristine tube (Fermi level 0 eV).
    fermi_shift_ev:
        Rigid shift of the Fermi level in eV (negative = p-type).
    temperature:
        Temperature in kelvin used for the Fermi-Dirac occupations.
    n_points:
        Number of energy integration points.
    """
    from repro.constants import BOLTZMANN_EV

    e_min, e_max = band_structure.energy_window()
    energies, dos = density_of_states(
        band_structure, np.linspace(e_min - 0.5, e_max + 0.5, n_points)
    )

    kt = max(BOLTZMANN_EV * temperature, 1.0e-6)

    def occupation(mu: float) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(np.clip((energies - mu) / kt, -60.0, 60.0)))

    n_pristine = np.trapezoid(dos * occupation(0.0), energies)
    n_doped = np.trapezoid(dos * occupation(fermi_shift_ev), energies)
    return float(n_doped - n_pristine)
