"""Zone-folded band structure of single-wall carbon nanotubes.

The band structure of an (n, m) nanotube is obtained by sampling the graphene
pi-band dispersion along ``N`` parallel cutting lines in reciprocal space,
where ``N`` is the number of hexagons in the nanotube unit cell.  Each cutting
line ``mu`` contributes one valence and one conduction band

    E_{mu, +-}(k) = +- gamma0 | f( mu K1 + k K2_hat ) |

with ``k`` the 1-D wave number along the tube axis in the first Brillouin zone
``(-pi/T, pi/T]``.  This is the textbook substitute for the paper's DFT band
structures of Fig. 8c and reproduces the metal/semiconductor dichotomy, the
linear crossing bands of armchair tubes and the van Hove structure the paper
relies on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.atomistic.chirality import Chirality
from repro.atomistic.graphene import dispersion, reciprocal_vectors
from repro.constants import GRAPHENE_LATTICE_CONSTANT, TB_HOPPING_EV


@dataclass(frozen=True)
class BandStructure:
    """Band structure of a single-wall carbon nanotube.

    Attributes
    ----------
    chirality:
        The tube the bands belong to.
    k:
        1-D wave numbers along the tube axis in rad/metre, shape ``(n_k,)``.
    energies:
        Band energies in eV, shape ``(n_bands, n_k)``.  Bands come in +/- pairs
        (conduction and valence) for each cutting line; the Fermi level of the
        pristine tube is 0 eV.
    fermi_level:
        Fermi level in eV used when deriving occupations (0 for pristine).
    """

    chirality: Chirality
    k: np.ndarray
    energies: np.ndarray
    fermi_level: float = 0.0

    # numpy arrays are not hashable; keep the dataclass frozen but unhashable.
    __hash__ = None  # type: ignore[assignment]

    @property
    def n_bands(self) -> int:
        """Total number of bands (2 per cutting line)."""
        return int(self.energies.shape[0])

    @property
    def n_k(self) -> int:
        """Number of k-points along the tube axis."""
        return int(self.energies.shape[1])

    def band_gap(self) -> float:
        """Band gap in eV around the Fermi level (0 for metallic tubes).

        Computed as the gap between the lowest conduction-band minimum and the
        highest valence-band maximum; values below a small numerical floor are
        reported as exactly zero.
        """
        above = self.energies[self.energies > 0.0]
        below = self.energies[self.energies < 0.0]
        if above.size == 0 or below.size == 0:
            return 0.0
        gap = float(above.min() - below.max())
        return 0.0 if gap < 1.0e-6 else gap

    def energy_window(self) -> tuple[float, float]:
        """(min, max) band energy in eV."""
        return float(self.energies.min()), float(self.energies.max())

    def shifted(self, fermi_shift_ev: float) -> "BandStructure":
        """Return a copy with the Fermi level rigidly shifted.

        A negative ``fermi_shift_ev`` corresponds to p-type doping (the paper's
        iodine doping shifts the Fermi level *down* by about 0.6 eV).
        """
        return BandStructure(
            chirality=self.chirality,
            k=self.k,
            energies=self.energies,
            fermi_level=self.fermi_level + fermi_shift_ev,
        )

    def subband_extrema(self) -> np.ndarray:
        """Energies of every band extremum (eV), useful for van Hove positions."""
        mins = self.energies.min(axis=1)
        maxs = self.energies.max(axis=1)
        return np.sort(np.concatenate([mins, maxs]))


def cutting_line_kpoints(
    chirality: Chirality, mu: int, k_axis: np.ndarray, a: float = GRAPHENE_LATTICE_CONSTANT
) -> np.ndarray:
    """2-D graphene wave vectors sampled by cutting line ``mu`` of a tube.

    Parameters
    ----------
    chirality:
        Tube chirality.
    mu:
        Cutting-line index, ``0 <= mu < N``.
    k_axis:
        1-D wave numbers along the tube axis in rad/metre.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(len(k_axis), 2)``.
    """
    n, m = chirality.n, chirality.m
    t1, t2 = chirality.translation_indices
    big_n = chirality.hexagons_per_cell
    b1, b2 = reciprocal_vectors(a)

    k1 = (-t2 * b1 + t1 * b2) / big_n  # circumferential quantisation vector
    k2 = (m * b1 - n * b2) / big_n  # along-axis reciprocal vector
    k2_hat = k2 / np.linalg.norm(k2)

    k_axis = np.asarray(k_axis, dtype=float)
    return mu * k1[None, :] + k_axis[:, None] * k2_hat[None, :]


def _fermi_point_kvalues(
    chirality: Chirality, a: float = GRAPHENE_LATTICE_CONSTANT, tolerance: float = 1.0e-6
) -> list[float]:
    """Axial wave numbers where a cutting line passes through a Dirac point.

    For metallic tubes at least one cutting line passes exactly through a
    graphene K (or K') point; the band crossing there defines the Fermi
    points.  A uniform k-grid generally misses those points, which would open
    a spurious discretisation gap, so :func:`compute_band_structure` inserts
    them into the grid explicitly.  Semiconducting tubes return an empty list.
    """
    from repro.atomistic.graphene import dirac_points

    n, m = chirality.n, chirality.m
    t1, t2 = chirality.translation_indices
    big_n = chirality.hexagons_per_cell
    b1, b2 = reciprocal_vectors(a)
    k1 = (-t2 * b1 + t1 * b2) / big_n
    k2 = (m * b1 - n * b2) / big_n
    k2_hat = k2 / np.linalg.norm(k2)

    bz_edge = math.pi / chirality.translation_length
    k_point, k_prime = dirac_points(a)
    # Include nearby reciprocal-lattice copies of K and K'; the cutting lines
    # tile one reciprocal unit cell whose placement need not contain the
    # first-zone K points themselves.
    candidates = []
    for base in (k_point, k_prime):
        for i in (-1, 0, 1):
            for j in (-1, 0, 1):
                candidates.append(base + i * b1 + j * b2)

    found: list[float] = []
    scale = np.linalg.norm(b1)
    for mu in range(big_n):
        origin = mu * k1
        for target in candidates:
            delta = target - origin
            k_star = float(delta @ k2_hat)
            perpendicular = delta - k_star * k2_hat
            if np.linalg.norm(perpendicular) < tolerance * scale and abs(k_star) <= bz_edge * (1 + 1e-9):
                k_star = max(-bz_edge, min(bz_edge, k_star))
                if not any(abs(k_star - existing) < tolerance / max(bz_edge, 1.0) for existing in found):
                    found.append(k_star)
    return found


def compute_band_structure(
    chirality: Chirality,
    n_k: int = 201,
    hopping_ev: float = TB_HOPPING_EV,
    a: float = GRAPHENE_LATTICE_CONSTANT,
) -> BandStructure:
    """Compute the zone-folded band structure of a SWCNT.

    Parameters
    ----------
    chirality:
        Tube chirality (n, m).
    n_k:
        Number of k-points along the 1-D Brillouin zone; an odd number keeps
        the zone centre on the grid.  For metallic tubes the exact Fermi-point
        wave numbers are inserted into the grid in addition, so the band
        crossing at the Fermi level is resolved without a discretisation gap.
    hopping_ev:
        Tight-binding hopping energy gamma0 in eV.

    Returns
    -------
    BandStructure
        Bands of shape ``(2 N, n_k')`` where ``N`` is the number of hexagons
        in the unit cell and ``n_k'`` is ``n_k`` plus any inserted Fermi
        points.
    """
    if n_k < 3:
        raise ValueError("need at least 3 k-points to resolve a band")

    t_length = chirality.translation_length
    k_axis = np.linspace(-math.pi / t_length, math.pi / t_length, n_k)
    fermi_points = _fermi_point_kvalues(chirality, a=a)
    if fermi_points:
        k_axis = np.unique(np.concatenate([k_axis, np.asarray(fermi_points)]))

    big_n = chirality.hexagons_per_cell
    bands = np.empty((2 * big_n, k_axis.size), dtype=float)
    for mu in range(big_n):
        kpts = cutting_line_kpoints(chirality, mu, k_axis, a=a)
        magnitude = dispersion(kpts, hopping_ev=hopping_ev, a=a)
        bands[2 * mu, :] = magnitude
        bands[2 * mu + 1, :] = -magnitude

    return BandStructure(chirality=chirality, k=k_axis, energies=bands)
