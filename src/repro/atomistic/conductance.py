"""Ballistic conductance of single-wall carbon nanotubes (paper Fig. 8a).

The paper extracts the number of conducting channels from the DFT/NEGF
ballistic conductance as ``Nc = G_bal / G0`` (Eq. 1) and observes that ``Nc``
stays close to 2 for metallic tubes regardless of diameter and chirality.
Here the same quantities are produced from zone-folded tight-binding bands and
Landauer mode counting, including the finite-temperature average at 300 K that
softens the small-diameter quantum-confinement variation the paper mentions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.atomistic.bandstructure import BandStructure, compute_band_structure
from repro.atomistic.chirality import Chirality
from repro.atomistic.transmission import thermally_averaged_transmission
from repro.constants import QUANTUM_CONDUCTANCE, ROOM_TEMPERATURE


def ballistic_conductance(
    tube: Chirality | BandStructure,
    temperature: float = ROOM_TEMPERATURE,
    fermi_level_ev: float = 0.0,
    n_k: int = 201,
) -> float:
    """Ballistic (Landauer) conductance of a SWCNT in siemens.

    Parameters
    ----------
    tube:
        Either a :class:`Chirality` (the band structure is computed on the
        fly) or a pre-computed :class:`BandStructure`.
    temperature:
        Temperature in kelvin; 0 gives the sharp zero-temperature result.
    fermi_level_ev:
        Fermi level in eV relative to the pristine tube's Fermi level
        (negative for p-type doping).
    n_k:
        Number of k-points used when a band structure has to be computed.

    Returns
    -------
    float
        Conductance in siemens.  A pristine metallic tube returns approximately
        ``2 G0 ~ 0.155 mS``, matching the paper's value for SWCNT(7,7).
    """
    bands = tube if isinstance(tube, BandStructure) else compute_band_structure(tube, n_k=n_k)
    channels = thermally_averaged_transmission(
        bands, fermi_level_ev=fermi_level_ev, temperature=temperature
    )
    return QUANTUM_CONDUCTANCE * channels


def conducting_channels(
    tube: Chirality | BandStructure,
    temperature: float = ROOM_TEMPERATURE,
    fermi_level_ev: float = 0.0,
    n_k: int = 201,
) -> float:
    """Number of conducting channels ``Nc = G_bal / G0`` (paper Eq. 1)."""
    return ballistic_conductance(tube, temperature, fermi_level_ev, n_k) / QUANTUM_CONDUCTANCE


@dataclass(frozen=True)
class ConductancePoint:
    """One point of the conductance-versus-diameter sweep (Fig. 8a)."""

    chirality: Chirality
    diameter: float
    """Tube diameter in metre."""
    conductance: float
    """Ballistic conductance in siemens."""
    channels: float
    """Number of conducting channels ``G / G0``."""

    @property
    def family(self) -> str:
        """'armchair', 'zigzag' or 'chiral'."""
        return self.chirality.family


def conductance_vs_diameter(
    families: tuple[str, ...] = ("armchair", "zigzag"),
    diameter_range_m: tuple[float, float] = (0.4e-9, 3.0e-9),
    temperature: float = ROOM_TEMPERATURE,
    metallic_only: bool = False,
    n_k: int = 101,
) -> list[ConductancePoint]:
    """Sweep ballistic conductance versus diameter (reproduces Fig. 8a).

    Enumerates armchair (n, n) and zigzag (n, 0) tubes whose diameters fall in
    the requested range and evaluates their ballistic conductance at the given
    temperature.

    Parameters
    ----------
    families:
        Which tube families to include (any of ``"armchair"``, ``"zigzag"``).
    diameter_range_m:
        (min, max) diameter in metre.
    temperature:
        Temperature in kelvin.
    metallic_only:
        When True, skip semiconducting zigzag tubes (the paper's Fig. 8a
        plots metallic tubes, whose conductance clusters near 2 G0).
    n_k:
        k-point count per band structure.

    Returns
    -------
    list of ConductancePoint, sorted by diameter.
    """
    d_min, d_max = diameter_range_m
    if d_min <= 0 or d_max <= d_min:
        raise ValueError("diameter range must satisfy 0 < min < max")

    points: list[ConductancePoint] = []
    for family in families:
        if family not in ("armchair", "zigzag"):
            raise ValueError(f"unsupported family {family!r}")
        n = 1
        while True:
            tube = Chirality(n, n) if family == "armchair" else Chirality(n, 0)
            d = tube.diameter
            if d > d_max:
                break
            if d >= d_min and not (metallic_only and not tube.is_metallic):
                g = ballistic_conductance(tube, temperature=temperature, n_k=n_k)
                points.append(
                    ConductancePoint(
                        chirality=tube,
                        diameter=d,
                        conductance=g,
                        channels=g / QUANTUM_CONDUCTANCE,
                    )
                )
            n += 1

    points.sort(key=lambda p: p.diameter)
    return points


def conductance_per_unit_area(
    point: ConductancePoint,
) -> float:
    """Ballistic conductance divided by the tube cross-sectional area (S/m^2).

    Supports the paper's remark that "the conductance of CNTs per unit area
    decreases as the diameter increases" because Nc stays ~2 while the area
    grows with d^2.
    """
    area = np.pi * (point.diameter / 2.0) ** 2
    return point.conductance / area
