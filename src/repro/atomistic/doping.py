"""Rigid-band charge-transfer doping of SWCNTs (paper Fig. 8b/c).

The paper's DFT calculations show that an iodine dopant inside SWCNT(7,7)
acts as a p-type dopant: the Fermi level shifts *down* by about 0.6 eV and the
ballistic conductance increases from 0.155 mS (2 channels) to 0.387 mS
(5 channels).  The reproduction models charge-transfer doping in the
rigid-band approximation: the band structure of the pristine tube is kept and
the Fermi level is shifted by the dopant-induced charge transfer.  Moving the
Fermi level into regions of higher subband density opens additional
conduction channels, exactly the mechanism the paper's compact model captures
with the doping enhancement factor ``Nc``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import brentq

from repro.atomistic.bandstructure import BandStructure, compute_band_structure
from repro.atomistic.chirality import Chirality
from repro.atomistic.conductance import ballistic_conductance
from repro.constants import QUANTUM_CONDUCTANCE, ROOM_TEMPERATURE

IODINE_FERMI_SHIFT_EV = -0.6
"""Fermi-level shift reported by the paper for iodine doping of SWCNT(7,7)."""


@dataclass(frozen=True)
class DopedTube:
    """A SWCNT together with a rigid-band doping level.

    Attributes
    ----------
    chirality:
        Tube chirality.
    fermi_shift_ev:
        Rigid Fermi-level shift in eV.  Negative values are p-type (iodine,
        PtCl4); positive values are n-type.
    dopant:
        Free-text dopant label (e.g. ``"iodine"`` or ``"PtCl4"``).
    """

    chirality: Chirality
    fermi_shift_ev: float
    dopant: str = "iodine"

    def band_structure(self, n_k: int = 201) -> BandStructure:
        """Band structure with the shifted Fermi level."""
        return compute_band_structure(self.chirality, n_k=n_k).shifted(self.fermi_shift_ev)

    def conductance(self, temperature: float = ROOM_TEMPERATURE, n_k: int = 201) -> float:
        """Ballistic conductance of the doped tube in siemens."""
        return doped_conductance(
            self.chirality, self.fermi_shift_ev, temperature=temperature, n_k=n_k
        )

    def channels(self, temperature: float = ROOM_TEMPERATURE, n_k: int = 201) -> float:
        """Number of conducting channels of the doped tube."""
        return self.conductance(temperature=temperature, n_k=n_k) / QUANTUM_CONDUCTANCE

    def enhancement_factor(self, temperature: float = ROOM_TEMPERATURE, n_k: int = 201) -> float:
        """Conductance ratio doped / pristine (the compact-model boost)."""
        pristine = ballistic_conductance(self.chirality, temperature=temperature, n_k=n_k)
        if pristine <= 0.0:
            return float("inf")
        return self.conductance(temperature=temperature, n_k=n_k) / pristine


def doped_conductance(
    chirality: Chirality,
    fermi_shift_ev: float,
    temperature: float = ROOM_TEMPERATURE,
    n_k: int = 201,
) -> float:
    """Ballistic conductance of a tube with a rigidly shifted Fermi level (S)."""
    return ballistic_conductance(
        chirality, temperature=temperature, fermi_level_ev=fermi_shift_ev, n_k=n_k
    )


def channels_after_doping(
    chirality: Chirality,
    fermi_shift_ev: float,
    temperature: float = ROOM_TEMPERATURE,
    n_k: int = 201,
) -> float:
    """Conducting channels of the doped tube (``G_doped / G0``)."""
    return (
        doped_conductance(chirality, fermi_shift_ev, temperature=temperature, n_k=n_k)
        / QUANTUM_CONDUCTANCE
    )


def fermi_shift_for_target_conductance(
    chirality: Chirality,
    target_conductance_s: float,
    p_type: bool = True,
    temperature: float = ROOM_TEMPERATURE,
    max_shift_ev: float = 2.0,
    n_k: int = 201,
    tolerance_s: float = 1.0e-7,
) -> float:
    """Fermi shift (eV) needed to reach a target ballistic conductance.

    Because the channel count is a staircase in energy, the returned shift is
    the smallest-magnitude shift whose thermally-broadened conductance is
    within ``tolerance_s`` of the target or exceeds it.

    Parameters
    ----------
    chirality:
        Tube chirality.
    target_conductance_s:
        Target conductance in siemens (e.g. ``0.387e-3`` for the paper's doped
        SWCNT(7,7)).
    p_type:
        Search downward shifts (True, default) or upward shifts.
    temperature:
        Temperature in kelvin.
    max_shift_ev:
        Maximum shift magnitude explored.
    n_k:
        k-point count for the band structure.
    tolerance_s:
        Acceptable conductance shortfall in siemens.

    Raises
    ------
    ValueError
        If the target cannot be reached within ``max_shift_ev``.
    """
    bands = compute_band_structure(chirality, n_k=n_k)
    sign = -1.0 if p_type else 1.0

    def conductance_at(shift_magnitude: float) -> float:
        return ballistic_conductance(
            bands, temperature=temperature, fermi_level_ev=sign * shift_magnitude
        )

    if conductance_at(0.0) >= target_conductance_s - tolerance_s:
        return 0.0

    n_samples = 201
    magnitudes = np.linspace(0.0, max_shift_ev, n_samples)
    previous = 0.0
    for magnitude in magnitudes[1:]:
        g = conductance_at(magnitude)
        if g >= target_conductance_s - tolerance_s:
            # Refine inside the bracketing interval for a tight estimate.
            try:
                root = brentq(
                    lambda s: conductance_at(s) - (target_conductance_s - tolerance_s),
                    previous,
                    magnitude,
                    xtol=1.0e-4,
                )
            except ValueError:
                root = magnitude
            return sign * float(root)
        previous = magnitude

    raise ValueError(
        f"target conductance {target_conductance_s:.3e} S not reachable within "
        f"a {max_shift_ev} eV Fermi shift for tube {chirality}"
    )


def iodine_doped_swcnt77() -> DopedTube:
    """The paper's reference system: iodine-doped SWCNT(7,7), -0.6 eV shift."""
    return DopedTube(Chirality(7, 7), IODINE_FERMI_SHIFT_EV, dopant="iodine")
