"""Small unit-conversion helpers.

Everything inside the library works in SI units (metre, ohm, farad, henry,
second, ampere, kelvin).  The paper, however, quotes lengths in nanometre and
micrometre, capacitances in aF/um, current densities in A/cm^2 and so on.
These helpers keep the conversions explicit and readable at call sites.
"""

from __future__ import annotations

# --- length -----------------------------------------------------------------

NM = 1.0e-9
UM = 1.0e-6
MM = 1.0e-3
CM = 1.0e-2
ANGSTROM = 1.0e-10


def nm(value: float) -> float:
    """Convert a length given in nanometre to metre."""
    return value * NM


def um(value: float) -> float:
    """Convert a length given in micrometre to metre."""
    return value * UM


def to_nm(value_m: float) -> float:
    """Convert a length in metre to nanometre."""
    return value_m / NM


def to_um(value_m: float) -> float:
    """Convert a length in metre to micrometre."""
    return value_m / UM


# --- electrical -------------------------------------------------------------


def kohm(value: float) -> float:
    """Convert kilo-ohm to ohm."""
    return value * 1.0e3


def to_kohm(value_ohm: float) -> float:
    """Convert ohm to kilo-ohm."""
    return value_ohm / 1.0e3


def ms_to_siemens(value: float) -> float:
    """Convert milli-siemens to siemens."""
    return value * 1.0e-3

def siemens_to_ms(value: float) -> float:
    """Convert siemens to milli-siemens."""
    return value * 1.0e3


def af_per_um(value: float) -> float:
    """Convert a per-unit-length capacitance in aF/um to F/m."""
    return value * 1.0e-18 / UM


def to_af_per_um(value_f_per_m: float) -> float:
    """Convert a per-unit-length capacitance in F/m to aF/um."""
    return value_f_per_m * UM / 1.0e-18


def nh_per_um(value: float) -> float:
    """Convert a per-unit-length inductance in nH/um to H/m."""
    return value * 1.0e-9 / UM


def to_nh_per_um(value_h_per_m: float) -> float:
    """Convert a per-unit-length inductance in H/m to nH/um."""
    return value_h_per_m * UM / 1.0e-9


def ohm_per_um(value: float) -> float:
    """Convert a per-unit-length resistance in Ohm/um to Ohm/m."""
    return value / UM


def to_ohm_per_um(value_ohm_per_m: float) -> float:
    """Convert a per-unit-length resistance in Ohm/m to Ohm/um."""
    return value_ohm_per_m * UM


# --- current density --------------------------------------------------------


def a_per_cm2(value: float) -> float:
    """Convert a current density in A/cm^2 to A/m^2."""
    return value / (CM * CM)


def to_a_per_cm2(value_a_per_m2: float) -> float:
    """Convert a current density in A/m^2 to A/cm^2."""
    return value_a_per_m2 * CM * CM


# --- resistivity ------------------------------------------------------------


def uohm_cm(value: float) -> float:
    """Convert a resistivity in micro-ohm centimetre to ohm metre."""
    return value * 1.0e-6 * CM


def to_uohm_cm(value_ohm_m: float) -> float:
    """Convert a resistivity in ohm metre to micro-ohm centimetre."""
    return value_ohm_m / (1.0e-6 * CM)


# --- time -------------------------------------------------------------------

PS = 1.0e-12
NS = 1.0e-9


def ps(value: float) -> float:
    """Convert picosecond to second."""
    return value * PS


def to_ps(value_s: float) -> float:
    """Convert second to picosecond."""
    return value_s / PS


def ns(value: float) -> float:
    """Convert nanosecond to second."""
    return value * NS


def to_ns(value_s: float) -> float:
    """Convert second to nanosecond."""
    return value_s / NS


# --- energy / temperature ----------------------------------------------------


def ev_to_joule(value: float) -> float:
    """Convert electronvolt to joule."""
    return value * 1.602176634e-19


def joule_to_ev(value: float) -> float:
    """Convert joule to electronvolt."""
    return value / 1.602176634e-19


def celsius_to_kelvin(value: float) -> float:
    """Convert degree Celsius to kelvin."""
    return value + 273.15


def kelvin_to_celsius(value: float) -> float:
    """Convert kelvin to degree Celsius."""
    return value - 273.15
