"""Thermal conductivity models for CNTs and copper.

The paper quotes a room-temperature thermal conductivity of 3000-10000 W/mK
for SWCNT bundles (estimated from measured film conductivities combined with
electrical-conductivity observations, reference [9]) against 385 W/mK for
copper.  Individual-tube conductivity is length- and defect-dependent; the
models below capture the leading dependences needed by the self-heating and
via experiments (E8).
"""

from __future__ import annotations

import math

from repro.constants import (
    CNT_THERMAL_CONDUCTIVITY_RANGE,
    COPPER_THERMAL_CONDUCTIVITY,
    ROOM_TEMPERATURE,
)

PHONON_MFP_CNT = 500.0e-9
"""Representative phonon mean free path of a high-quality CNT at 300 K (metre)."""


def cnt_thermal_conductivity(
    length: float = 1.0e-6,
    temperature: float = ROOM_TEMPERATURE,
    quality: float = 1.0,
    intrinsic: float = CNT_THERMAL_CONDUCTIVITY_RANGE[1],
) -> float:
    """Thermal conductivity of an individual CNT in W/(m K).

    Three effects reduce the intrinsic (defect-free, long-tube) value:

    * ballistic suppression for tubes shorter than the phonon mean free path
      (factor ``L / (L + mfp)``),
    * growth quality below 1 (defect scattering), and
    * Umklapp scattering above room temperature (factor ``300 / T``).

    Parameters
    ----------
    length:
        Tube length in metre.
    temperature:
        Temperature in kelvin.
    quality:
        Growth-quality factor in (0, 1]; 1 is a defect-free tube.
    intrinsic:
        Intrinsic conductivity of a long, perfect tube in W/(m K).
    """
    if length <= 0:
        raise ValueError("length must be positive")
    if temperature <= 0:
        raise ValueError("temperature must be positive")
    if not 0.0 < quality <= 1.0:
        raise ValueError("quality must lie in (0, 1]")
    length_factor = length / (length + PHONON_MFP_CNT)
    temperature_factor = min(1.0, ROOM_TEMPERATURE / temperature)
    return intrinsic * length_factor * quality * temperature_factor


def copper_thermal_conductivity(temperature: float = ROOM_TEMPERATURE) -> float:
    """Thermal conductivity of copper in W/(m K) (weak temperature dependence)."""
    if temperature <= 0:
        raise ValueError("temperature must be positive")
    # Copper's conductivity falls by roughly 6 % between 300 K and 400 K.
    return COPPER_THERMAL_CONDUCTIVITY * (1.0 - 6.0e-4 * (temperature - ROOM_TEMPERATURE))


def bundle_thermal_conductivity(
    fill_fraction: float,
    tube_length: float = 1.0e-6,
    temperature: float = ROOM_TEMPERATURE,
    quality: float = 1.0,
    matrix_conductivity: float = 1.4,
) -> float:
    """Effective thermal conductivity of a CNT bundle / composite in W/(m K).

    Rule of mixtures along the tube axis: the tubes conduct in parallel with
    whatever fills the space between them (dielectric or copper).

    Parameters
    ----------
    fill_fraction:
        Volume fraction occupied by CNTs, in [0, 1].
    tube_length, temperature, quality:
        Passed to :func:`cnt_thermal_conductivity`.
    matrix_conductivity:
        Thermal conductivity of the filling material in W/(m K) (1.4 for
        SiO2, 385 for copper in a Cu-CNT composite).
    """
    if not 0.0 <= fill_fraction <= 1.0:
        raise ValueError("fill fraction must lie in [0, 1]")
    if matrix_conductivity < 0:
        raise ValueError("matrix conductivity cannot be negative")
    tube = cnt_thermal_conductivity(tube_length, temperature, quality)
    return fill_fraction * tube + (1.0 - fill_fraction) * matrix_conductivity


def cnt_to_copper_ratio(length: float = 1.0e-6, quality: float = 1.0) -> float:
    """Thermal-conductivity advantage of a CNT over copper (dimensionless)."""
    return cnt_thermal_conductivity(length, quality=quality) / copper_thermal_conductivity()
