"""Scanning thermal microscopy (SThM) measurement emulation.

The paper uses scanning thermal microscopy with resistively heated probes to
map the temperature of operating MWCNT interconnects and extract their
thermal conductivity (references [24]-[25]).  The instrument is emulated
here: the true temperature profile of a powered line (from the 1-D heat
solver) is blurred by the probe's finite contact radius and perturbed with
measurement noise; the extraction routine then recovers the thermal
conductivity by fitting the solver to the noisy scan -- exactly the analysis
loop an SThM experiment performs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np
from scipy.optimize import minimize_scalar

from repro.thermal.heat1d import HeatLineProblem, solve_heat_line


@dataclass(frozen=True)
class SThMScan:
    """A simulated SThM line scan.

    Attributes
    ----------
    positions:
        Scan positions along the line in metre.
    temperatures:
        Measured (blurred + noisy) temperatures in kelvin.
    true_temperatures:
        Underlying true temperatures in kelvin.
    probe_radius:
        Probe thermal contact radius used for the blur, in metre.
    """

    positions: np.ndarray
    temperatures: np.ndarray
    true_temperatures: np.ndarray
    probe_radius: float

    @property
    def peak_measured_rise(self) -> float:
        """Peak measured temperature rise above the contacts in kelvin."""
        return float(self.temperatures.max() - self.temperatures[0])


def _gaussian_blur(values: np.ndarray, positions: np.ndarray, radius: float) -> np.ndarray:
    """Blur a profile with a Gaussian kernel of standard deviation ``radius``."""
    if radius <= 0:
        return values.copy()
    dx = positions[1] - positions[0]
    half_width = max(int(3 * radius / dx), 1)
    offsets = np.arange(-half_width, half_width + 1) * dx
    kernel = np.exp(-0.5 * (offsets / radius) ** 2)
    kernel /= kernel.sum()
    padded = np.pad(values, half_width, mode="edge")
    return np.convolve(padded, kernel, mode="valid")


def simulate_sthm_scan(
    problem: HeatLineProblem,
    probe_radius: float = 50.0e-9,
    noise_kelvin: float = 0.2,
    seed: int | None = 0,
) -> SThMScan:
    """Simulate an SThM temperature line scan of a powered interconnect.

    Parameters
    ----------
    problem:
        The heat-line problem describing the powered interconnect.
    probe_radius:
        Probe thermal contact radius in metre (sets the spatial blur).
    noise_kelvin:
        RMS measurement noise in kelvin.
    seed:
        Seed of the noise generator (None for non-reproducible noise).

    Returns
    -------
    SThMScan
    """
    if probe_radius < 0:
        raise ValueError("probe radius cannot be negative")
    if noise_kelvin < 0:
        raise ValueError("noise level cannot be negative")

    solution = solve_heat_line(problem)
    blurred = _gaussian_blur(solution.temperatures, solution.positions, probe_radius)
    rng = np.random.default_rng(seed)
    noisy = blurred + rng.normal(0.0, noise_kelvin, size=blurred.shape)
    return SThMScan(
        positions=solution.positions,
        temperatures=noisy,
        true_temperatures=solution.temperatures,
        probe_radius=probe_radius,
    )


def extract_thermal_conductivity(
    scan: SThMScan,
    problem_template: HeatLineProblem,
    bounds: tuple[float, float] = (50.0, 20000.0),
) -> float:
    """Extract the thermal conductivity that best explains an SThM scan.

    The 1-D heat model is fitted to the measured profile with the thermal
    conductivity as the only free parameter (least squares over the scan).

    Parameters
    ----------
    scan:
        The measured (or simulated) SThM scan.
    problem_template:
        The heat-line problem with every parameter known except the thermal
        conductivity (its value in the template is ignored).
    bounds:
        Search interval for the conductivity in W/(m K).

    Returns
    -------
    float
        Extracted thermal conductivity in W/(m K).
    """
    measured = scan.temperatures

    def misfit(conductivity: float) -> float:
        candidate = replace(problem_template, thermal_conductivity=float(conductivity))
        model = solve_heat_line(candidate).temperatures
        model = _gaussian_blur(model, scan.positions, scan.probe_radius)
        return float(np.mean((model - measured) ** 2))

    result = minimize_scalar(misfit, bounds=bounds, method="bounded")
    return float(result.x)
