"""Thermal substrate: conductivity models, self-heating and SThM emulation.

Section IV.B of the paper motivates thermal studies of CNT interconnects:
their thermal conductivity (3000-10000 W/mK versus 385 W/mK for copper) can
relieve thermal design constraints, self-heating of MWCNT lines is studied by
scanning thermal microscopy (SThM), and thermal conductivity is extracted
from those measurements.  This subpackage provides:

* :mod:`repro.thermal.conductivity` -- CNT / Cu thermal conductivity models,
* :mod:`repro.thermal.heat1d` -- a 1-D steady-state heat solver for powered
  interconnect lines,
* :mod:`repro.thermal.selfheating` -- coupled electro-thermal iteration
  (Joule heating vs temperature-dependent resistance),
* :mod:`repro.thermal.sthm` -- scanning-thermal-microscopy measurement
  emulation and conductivity extraction,
* :mod:`repro.thermal.via` -- thermal resistance of Cu versus CNT vias.
"""

from repro.thermal.conductivity import (
    cnt_thermal_conductivity,
    copper_thermal_conductivity,
    bundle_thermal_conductivity,
)
from repro.thermal.heat1d import HeatLineProblem, solve_heat_line
from repro.thermal.selfheating import ElectroThermalResult, self_heating_analysis
from repro.thermal.sthm import SThMScan, simulate_sthm_scan, extract_thermal_conductivity
from repro.thermal.via import via_thermal_resistance, via_temperature_rise

__all__ = [
    "cnt_thermal_conductivity",
    "copper_thermal_conductivity",
    "bundle_thermal_conductivity",
    "HeatLineProblem",
    "solve_heat_line",
    "ElectroThermalResult",
    "self_heating_analysis",
    "SThMScan",
    "simulate_sthm_scan",
    "extract_thermal_conductivity",
    "via_thermal_resistance",
    "via_temperature_rise",
]
