"""Thermal resistance of vertical vias: copper versus CNT bundles.

Section I of the paper argues that "heat diffuses more efficiently through
CNT vias than Cu vias and can reduce the on-chip temperature", which also
motivates CNT through-silicon vias for 3-D integration.  The helpers below
quantify that claim: thermal resistance of a via of given geometry for each
material, and the temperature drop across it for a given heat flow.
"""

from __future__ import annotations

from repro.thermal.conductivity import (
    bundle_thermal_conductivity,
    cnt_thermal_conductivity,
    copper_thermal_conductivity,
)


def via_thermal_resistance(
    diameter: float,
    height: float,
    material: str = "cnt",
    fill_fraction: float = 0.8,
    quality: float = 1.0,
    temperature: float = 300.0,
) -> float:
    """Thermal resistance of a cylindrical via in K/W.

    Parameters
    ----------
    diameter:
        Via diameter in metre.
    height:
        Via height in metre.
    material:
        ``"cnt"`` (bundle of CNTs), ``"copper"`` or ``"composite"``
        (CNTs in a copper matrix).
    fill_fraction:
        CNT fill fraction for bundle / composite vias.
    quality:
        CNT growth quality factor in (0, 1].
    temperature:
        Operating temperature in kelvin.
    """
    if diameter <= 0 or height <= 0:
        raise ValueError("diameter and height must be positive")
    area = 3.141592653589793 * diameter**2 / 4.0

    if material == "copper":
        conductivity = copper_thermal_conductivity(temperature)
    elif material == "cnt":
        conductivity = bundle_thermal_conductivity(
            fill_fraction,
            tube_length=height,
            temperature=temperature,
            quality=quality,
            matrix_conductivity=1.4,
        )
    elif material == "composite":
        conductivity = bundle_thermal_conductivity(
            fill_fraction,
            tube_length=height,
            temperature=temperature,
            quality=quality,
            matrix_conductivity=copper_thermal_conductivity(temperature),
        )
    else:
        raise ValueError("material must be 'cnt', 'copper' or 'composite'")

    return height / (conductivity * area)


def via_temperature_rise(
    heat_flow: float,
    diameter: float,
    height: float,
    material: str = "cnt",
    **kwargs,
) -> float:
    """Temperature drop across a via carrying ``heat_flow`` watt, in kelvin."""
    if heat_flow < 0:
        raise ValueError("heat flow cannot be negative")
    return heat_flow * via_thermal_resistance(diameter, height, material, **kwargs)


def cnt_via_advantage(
    diameter: float = 100.0e-9,
    height: float = 200.0e-9,
    fill_fraction: float = 0.8,
    quality: float = 1.0,
) -> float:
    """How much cooler a CNT via runs than a Cu via for the same heat flow.

    Returns the ratio of Cu-via to CNT-via temperature rise (> 1 means the
    CNT via is the better heat path, supporting the paper's claim).
    """
    cnt = via_thermal_resistance(diameter, height, "cnt", fill_fraction=fill_fraction, quality=quality)
    copper = via_thermal_resistance(diameter, height, "copper")
    return copper / cnt
