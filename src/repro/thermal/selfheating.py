"""Coupled electro-thermal (self-heating) analysis of a CNT interconnect.

The resistance of a CNT line rises with temperature (the phonon-limited mean
free path shrinks), and the dissipated power rises with resistance at fixed
current -- so self-heating must be solved self-consistently.  The iteration
below alternates the 1-D heat solver with the compact resistance model until
the peak temperature converges, reproducing the kind of self-heating study
the paper performs with SThM on operating MWCNT interconnects.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.thermal.conductivity import cnt_thermal_conductivity
from repro.thermal.heat1d import HeatLineProblem, solve_heat_line


@dataclass(frozen=True)
class ElectroThermalResult:
    """Converged self-heating state of a current-carrying interconnect.

    Attributes
    ----------
    peak_temperature:
        Hottest point of the line in kelvin.
    average_temperature:
        Average line temperature in kelvin.
    resistance:
        Line resistance at the converged temperature in ohm.
    dissipated_power:
        Total Joule power in watt.
    iterations:
        Number of electro-thermal iterations performed.
    converged:
        Whether the iteration met the temperature tolerance.
    """

    peak_temperature: float
    average_temperature: float
    resistance: float
    dissipated_power: float
    iterations: int
    converged: bool


def self_heating_analysis(
    interconnect,
    current: float,
    substrate_coupling: float = 0.05,
    ambient_temperature: float = 300.0,
    thermal_conductivity: float | None = None,
    max_iterations: int = 50,
    tolerance: float = 0.05,
) -> ElectroThermalResult:
    """Self-consistent Joule-heating analysis of a CNT or copper interconnect.

    Parameters
    ----------
    interconnect:
        Any compact model with ``length``, ``cross_section_area``,
        ``resistance`` and a ``temperature`` field that can be replaced
        (:class:`~repro.core.swcnt.SWCNTInterconnect`,
        :class:`~repro.core.mwcnt.MWCNTInterconnect`,
        :class:`~repro.core.copper.CopperInterconnect`).
    current:
        Applied DC current in ampere.
    substrate_coupling:
        Heat-loss coefficient to the substrate in W/(m K); ~0.05-0.2 for a
        line on ILD, 0 for a suspended line.
    ambient_temperature:
        Contact / substrate temperature in kelvin.
    thermal_conductivity:
        Axial thermal conductivity in W/(m K); defaults to the CNT model
        evaluated at the line length (use 385 for copper comparisons).
    max_iterations:
        Iteration cap.
    tolerance:
        Convergence threshold on the peak temperature in kelvin.

    Returns
    -------
    ElectroThermalResult
    """
    if current < 0:
        raise ValueError("current cannot be negative")

    if thermal_conductivity is None:
        thermal_conductivity = cnt_thermal_conductivity(interconnect.length)

    device = replace(interconnect, temperature=ambient_temperature)
    peak = ambient_temperature
    average = ambient_temperature
    converged = False
    iterations = 0

    for iterations in range(1, max_iterations + 1):
        resistance = device.resistance
        power = current**2 * resistance
        problem = HeatLineProblem(
            length=device.length,
            thermal_conductivity=thermal_conductivity,
            cross_section_area=device.cross_section_area,
            power_per_length=power / device.length,
            substrate_coupling=substrate_coupling,
            contact_temperature=ambient_temperature,
            substrate_temperature=ambient_temperature,
        )
        solution = solve_heat_line(problem)
        new_peak = solution.peak_temperature
        average = solution.average_temperature

        if abs(new_peak - peak) < tolerance:
            peak = new_peak
            converged = True
            break
        peak = new_peak
        # Re-evaluate the resistance at the average line temperature.
        device = replace(interconnect, temperature=average)

    return ElectroThermalResult(
        peak_temperature=peak,
        average_temperature=average,
        resistance=device.resistance,
        dissipated_power=current**2 * device.resistance,
        iterations=iterations,
        converged=converged,
    )
