"""1-D steady-state heat equation for a powered interconnect line.

The temperature profile of a current-carrying line of length ``L`` with both
ends anchored at contact temperature obeys

    d/dx ( k A dT/dx ) - g (T - T_sub) + p(x) = 0

where ``k`` is the thermal conductivity, ``A`` the cross-section, ``g`` the
heat loss per unit length to the substrate (through the surrounding
dielectric) and ``p(x)`` the dissipated electrical power per unit length.
The solver discretises the equation with second-order finite differences and
solves the resulting tridiagonal system; it underpins the self-heating and
SThM experiments (E8/E9 region of DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.linalg import solve_banded


@dataclass(frozen=True)
class HeatLineProblem:
    """Description of a powered line for the 1-D heat solver.

    Attributes
    ----------
    length:
        Line length in metre.
    thermal_conductivity:
        Axial thermal conductivity in W/(m K).
    cross_section_area:
        Conducting cross-section in square metre.
    power_per_length:
        Dissipated power per unit length in W/m.  Either a scalar (uniform
        Joule heating) or an array matching the grid.
    substrate_coupling:
        Heat loss coefficient to the substrate in W/(m K) (per unit length
        per kelvin of temperature difference).  0 for a suspended line.
    contact_temperature:
        Temperature of both contacts in kelvin.
    substrate_temperature:
        Substrate (ambient) temperature in kelvin.
    n_points:
        Number of grid points.
    """

    length: float
    thermal_conductivity: float
    cross_section_area: float
    power_per_length: float | np.ndarray
    substrate_coupling: float = 0.0
    contact_temperature: float = 300.0
    substrate_temperature: float = 300.0
    n_points: int = 201

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError("length must be positive")
        if self.thermal_conductivity <= 0:
            raise ValueError("thermal conductivity must be positive")
        if self.cross_section_area <= 0:
            raise ValueError("cross-section area must be positive")
        if self.substrate_coupling < 0:
            raise ValueError("substrate coupling cannot be negative")
        if self.n_points < 3:
            raise ValueError("need at least 3 grid points")


@dataclass(frozen=True)
class HeatLineSolution:
    """Temperature profile of a powered line.

    Attributes
    ----------
    positions:
        Grid positions along the line in metre.
    temperatures:
        Temperature at each grid position in kelvin.
    """

    positions: np.ndarray
    temperatures: np.ndarray

    @property
    def peak_temperature(self) -> float:
        """Hottest point of the line in kelvin."""
        return float(self.temperatures.max())

    @property
    def peak_temperature_rise(self) -> float:
        """Peak temperature rise above the cooler end in kelvin."""
        return float(self.temperatures.max() - self.temperatures[0])

    @property
    def average_temperature(self) -> float:
        """Average line temperature in kelvin."""
        return float(self.temperatures.mean())


def solve_heat_line(problem: HeatLineProblem) -> HeatLineSolution:
    """Solve the steady-state heat equation for a powered line.

    Returns
    -------
    HeatLineSolution
        The temperature profile; for a uniformly heated suspended line the
        profile is the classic parabola with peak rise ``p L^2 / (8 k A)``.
    """
    n = problem.n_points
    x = np.linspace(0.0, problem.length, n)
    dx = x[1] - x[0]
    ka = problem.thermal_conductivity * problem.cross_section_area

    power = np.broadcast_to(np.asarray(problem.power_per_length, dtype=float), (n,)).copy()

    # Unknowns: interior temperatures (the two ends are Dirichlet).
    n_free = n - 2
    main = np.full(n_free, 2.0 * ka / dx**2 + problem.substrate_coupling)
    off = np.full(n_free - 1, -ka / dx**2)
    rhs = (
        power[1:-1]
        + problem.substrate_coupling * problem.substrate_temperature
    )
    rhs[0] += ka / dx**2 * problem.contact_temperature
    rhs[-1] += ka / dx**2 * problem.contact_temperature

    banded = np.zeros((3, n_free))
    banded[0, 1:] = off
    banded[1, :] = main
    banded[2, :-1] = off
    interior = solve_banded((1, 1), banded, rhs)

    temperatures = np.empty(n)
    temperatures[0] = problem.contact_temperature
    temperatures[-1] = problem.contact_temperature
    temperatures[1:-1] = interior
    return HeatLineSolution(positions=x, temperatures=temperatures)


def analytic_peak_rise_suspended(problem: HeatLineProblem) -> float:
    """Closed-form peak temperature rise of a uniformly heated suspended line.

    ``dT_peak = p L^2 / (8 k A)`` -- used to validate the numerical solver and
    as a quick estimate in the via/benchmark comparisons.
    """
    power = problem.power_per_length
    if not np.isscalar(power):
        raise ValueError("the analytic formula applies to uniform heating only")
    if problem.substrate_coupling != 0.0:
        raise ValueError("the analytic formula applies to suspended lines only")
    ka = problem.thermal_conductivity * problem.cross_section_area
    return float(power) * problem.length**2 / (8.0 * ka)
