"""Jittered exponential backoff for store-polling loops.

Every polling loop in the distributed layer -- a worker waiting for
siblings' leases (:func:`repro.dist.worker.run_worker` with ``wait=True``),
a queue daemon watching for new jobs (``python -m repro worker --watch``) --
used to sleep a fixed interval between passes.  With many daemons on one
store that synchronises the pollers: every pass of every process hits the
store lock in the same beat, and the contention grows linearly with the
fleet (the ``dist_workers`` perf case measured 0.80x serial in BENCH_4
partly for this reason).

:class:`Backoff` replaces the fixed sleep: delays start at ``initial``,
grow geometrically by ``factor`` up to ``maximum``, and every delay is
jittered by a uniform ``+-jitter`` fraction so that independent pollers
decorrelate instead of thundering together.  Call :meth:`~Backoff.reset`
whenever the loop makes progress, so an active store is polled eagerly and
only an idle one backs off.

Usage::

    backoff = Backoff(initial=0.2, maximum=5.0)
    while work_remains():
        if claim_something():
            backoff.reset()
            continue
        time.sleep(backoff.next_delay())
"""

from __future__ import annotations

import random
from typing import Callable


class Backoff:
    """Stateful jittered-exponential delay sequence for one polling loop.

    Parameters
    ----------
    initial:
        First delay in seconds (pre-jitter).
    maximum:
        Cap on the un-jittered delay; clamped up to ``initial`` if smaller.
    factor:
        Geometric growth per consecutive idle poll (>= 1).
    jitter:
        Fractional uniform jitter: each returned delay is scaled by a factor
        drawn from ``[1 - jitter, 1 + jitter]``.  ``0`` disables jitter.
    rng:
        Source of uniform floats (``random.uniform`` signature); injectable
        for deterministic tests.
    """

    def __init__(
        self,
        initial: float = 0.2,
        maximum: float = 5.0,
        factor: float = 2.0,
        jitter: float = 0.25,
        rng: Callable[[float, float], float] | None = None,
    ) -> None:
        if initial <= 0:
            raise ValueError("backoff initial delay must be positive")
        if factor < 1.0:
            raise ValueError("backoff factor must be >= 1")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("backoff jitter must be in [0, 1)")
        self.initial = float(initial)
        self.maximum = max(float(maximum), self.initial)
        self.factor = float(factor)
        self.jitter = float(jitter)
        self._uniform = rng if rng is not None else random.uniform
        self._delay: float | None = None

    def reset(self) -> None:
        """Drop back to the initial delay (the loop made progress)."""
        self._delay = None

    def next_delay(self) -> float:
        """The next sleep in seconds: grown since the last reset, jittered."""
        if self._delay is None:
            self._delay = self.initial
        else:
            self._delay = min(self._delay * self.factor, self.maximum)
        if self.jitter == 0.0:
            return self._delay
        return self._delay * self._uniform(1.0 - self.jitter, 1.0 + self.jitter)

    def __repr__(self) -> str:
        return (
            f"Backoff(initial={self.initial}, maximum={self.maximum}, "
            f"factor={self.factor}, jitter={self.jitter})"
        )
