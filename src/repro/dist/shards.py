"""Deterministic sharding of sweeps and merging of partial results.

A :class:`ShardPlan` statically partitions any
:class:`~repro.api.sweep.SweepSpec` into ``n_shards`` disjoint slices so
that independent machines can each run ``--shards N --shard-index i``
without any coordination at all.  Assignment is by *stable param-hash*: a
point belongs to ``sha256(canonical(point)) % n_shards``, which makes the
partition

* **order-independent** -- the hash canonicalises key order, so the same
  point dict built in any order (or replayed from a JSON/CSV round-trip)
  lands on the same shard, on every Python version;
* **refine-safe** -- :meth:`SweepSpec.refine` densifies an axis and coerces
  its values to ``float``; numeric values are hashed as floats, so the
  points of the coarse sweep keep their shard (and therefore their cached
  results stay on the machine that computed them) when the sweep is
  refined.

Hash-based assignment trades perfect balance for stability: shards of a
small sweep can be uneven (or even empty).  That is the right trade for
cache-affine distribution; for dynamic balance use the lease-claiming
worker (:mod:`repro.dist.worker`) instead.

:func:`merge_results` is the inverse of sharding: it reassembles the
partial per-shard :class:`~repro.api.results.ResultSet`\\ s into the exact
ResultSet a single serial run would have produced -- records in sweep
order, provenance metadata intact, duplicates and unexpected records
rejected -- so the merged ``content_hash`` is bit-identical to the serial
run's.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.api.results import ResultSet, _normalize_cell
from repro.api.sweep import SweepSpec


def _hash_value(value: Any) -> Any:
    """Canonicalise one axis value for hashing/matching.

    Numeric values collapse to ``float`` (``refine`` floats integer axes, and
    CSV round-trips may re-type cells); numpy scalars and tuples normalise
    exactly like :class:`ResultSet` ingestion, so a point read back from an
    exported result matches the point that produced it.
    """
    value = _normalize_cell(value)
    if isinstance(value, bool):
        return value
    if isinstance(value, int):
        return float(value)
    if isinstance(value, list):
        return [_hash_value(v) for v in value]
    return value


def point_key(point: Mapping[str, Any]) -> str:
    """Canonical JSON identity of one sweep point (order-independent)."""
    canonical = {str(name): _hash_value(value) for name, value in point.items()}
    return json.dumps(canonical, sort_keys=True, separators=(",", ":"), default=str)


def point_hash(point: Mapping[str, Any]) -> str:
    """Stable SHA-256 hex digest of one sweep point."""
    return hashlib.sha256(point_key(point).encode("utf-8")).hexdigest()


def shard_of(point: Mapping[str, Any], n_shards: int) -> int:
    """The shard index (``0 .. n_shards-1``) that owns a sweep point."""
    if n_shards < 1:
        raise ValueError("n_shards must be positive")
    return int(point_hash(point)[:16], 16) % n_shards


@dataclass(frozen=True)
class ShardPlan:
    """One slice of a statically partitioned sweep.

    ``ShardPlan(n_shards=4, shard_index=1)`` owns every sweep point whose
    stable param-hash maps to shard 1.  The engine accepts a plan through
    ``Engine.sweep(..., shard=plan)`` (and the CLI as ``sweep --shards 4
    --shard-index 1``); :func:`merge_results` reassembles the partial
    results of all shards.
    """

    n_shards: int
    shard_index: int

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError("n_shards must be positive")
        if not 0 <= self.shard_index < self.n_shards:
            raise ValueError(
                f"shard_index must be in [0, {self.n_shards}), got {self.shard_index}"
            )

    def owns(self, point: Mapping[str, Any]) -> bool:
        """Whether this shard executes the given sweep point."""
        return shard_of(point, self.n_shards) == self.shard_index

    def indices(self, points: Sequence[Mapping[str, Any]]) -> list[int]:
        """Positions of this shard's points within ``points`` (sweep order)."""
        return [i for i, point in enumerate(points) if self.owns(point)]

    def points(self, spec: SweepSpec) -> list[dict[str, Any]]:
        """This shard's slice of a spec's points, in sweep order."""
        return [point for point in spec.points() if self.owns(point)]

    @classmethod
    def partition(cls, n_shards: int) -> list["ShardPlan"]:
        """All ``n_shards`` plans of one partition, by shard index."""
        return [cls(n_shards, index) for index in range(n_shards)]


def _record_point_key(record: Mapping[str, Any], axis_names: Sequence[str]) -> str:
    """Recover a record's sweep-point identity from its tag columns.

    Sweep tagging stores an axis under ``param_<axis>`` when the name
    collides with an experiment output column, so that spelling wins here.
    """
    values: dict[str, Any] = {}
    for name in axis_names:
        prefixed = f"param_{name}"
        if prefixed in record:
            values[name] = record[prefixed]
        elif name in record:
            values[name] = record[name]
        else:
            raise ValueError(
                f"record is missing sweep axis column {name!r}; "
                "was it produced by a sweep over these axes?"
            )
    return point_key(values)


def _spec_from_meta(meta: Mapping[str, Any]) -> SweepSpec:
    try:
        return SweepSpec.from_meta(meta.get("sweep"))
    except ValueError:
        raise ValueError(
            "partial result carries no sweep metadata; pass spec= explicitly"
        ) from None


def merge_results(
    parts: Sequence[ResultSet],
    spec: SweepSpec | None = None,
    allow_missing: bool = False,
) -> ResultSet:
    """Reassemble partial sweep ResultSets into the full sweep ResultSet.

    Parameters
    ----------
    parts:
        The per-shard (or per-worker) partial ResultSets, in any order.
        Each must carry the sweep tag columns; provenance metadata
        (experiment, version, sweep axes) is validated for consistency when
        present.
    spec:
        The sweep the parts belong to.  Defaults to the spec recorded in the
        parts' metadata (``meta["sweep"]``) -- required explicitly when the
        parts went through a metadata-less round-trip such as CSV.
    allow_missing:
        Permit sweep points no part has records for (e.g. a shard that has
        not finished yet).  Missing point indices are recorded in
        ``meta["merged"]["missing_points"]``.

    Returns the merged ResultSet with records in sweep order, so its
    ``content_hash`` is bit-identical to a single serial run of the full
    sweep.  A point contributed by more than one part (overlapping shards)
    or a record matching no sweep point is an error -- silent duplication
    is exactly what sharding is meant to rule out.
    """
    if not parts:
        raise ValueError("merge_results needs at least one partial ResultSet")

    identities = {
        (part.meta.get("experiment"), str(part.meta.get("version")))
        for part in parts
        if part.meta.get("experiment") is not None
    }
    if len(identities) > 1:
        raise ValueError(
            f"cannot merge results of different experiments/versions: {sorted(identities)}"
        )
    # Base parameters are part of the sweep's identity too: shard runs with
    # different -p overrides compute different physics for the same axis
    # values, and the axis tags alone cannot tell them apart.
    base_params = {
        point_key(part.meta["params"])
        for part in parts
        if isinstance(part.meta.get("params"), Mapping)
    }
    if len(base_params) > 1:
        raise ValueError(
            "cannot merge results with different base parameters: "
            f"{sorted(base_params)}"
        )

    if spec is None:
        spec = _spec_from_meta(parts[0].meta)
    for part in parts:
        part_sweep = part.meta.get("sweep")
        if isinstance(part_sweep, Mapping) and "axes" in part_sweep:
            if {k: list(v) for k, v in part_sweep["axes"].items()} != {
                k: list(v) for k, v in spec.axes.items()
            }:
                raise ValueError("partial results belong to different sweeps")
        elif isinstance(part_sweep, Mapping) and "points" in part_sweep:
            # Explicit-point parts (campaign batches): same identity check,
            # keyed on the canonical point list instead of the axes.
            theirs = {point_key(p) for p in part_sweep["points"]}
            ours = {point_key(p) for p in spec.points()}
            if not theirs <= ours:
                raise ValueError("partial results belong to different sweeps")

    points = spec.points()
    axis_names = spec.axis_names

    # Bucket every record under its point identity, remembering which part
    # contributed it -- a point fed by two parts means overlapping shards.
    buckets: dict[str, dict[int, list[dict[str, Any]]]] = {}
    for part_index, part in enumerate(parts):
        for record in part.to_records():
            key = _record_point_key(record, axis_names)
            buckets.setdefault(key, {}).setdefault(part_index, []).append(record)

    merged: list[dict[str, Any]] = []
    missing: list[int] = []
    for index, point in enumerate(points):
        bucket = buckets.pop(point_key(point), None)
        if bucket is None:
            missing.append(index)
            continue
        if len(bucket) > 1:
            raise ValueError(
                f"sweep point {point} was executed by {len(bucket)} parts; "
                "shards must be disjoint"
            )
        merged.extend(next(iter(bucket.values())))
    if buckets:
        stray = next(iter(buckets))
        raise ValueError(
            f"{len(buckets)} record groups match no point of the sweep "
            f"(first: {stray}); wrong spec or foreign results?"
        )
    if missing and not allow_missing:
        raise ValueError(
            f"{len(missing)} sweep points have no records "
            f"(first missing index: {missing[0]}); pass allow_missing=True "
            "to merge an incomplete sweep"
        )

    base = parts[0].meta
    meta: dict[str, Any] = {
        key: base[key] for key in ("experiment", "version", "params") if key in base
    }
    meta["executor"] = "merged"
    wall_times = [part.meta.get("wall_time_s") for part in parts]
    if all(isinstance(t, (int, float)) for t in wall_times):
        meta["wall_time_s"] = float(sum(wall_times))
    meta["sweep"] = spec.to_meta()
    meta["merged"] = {"n_parts": len(parts)}
    if missing:
        meta["merged"]["missing_points"] = missing
    return ResultSet.from_records(merged, meta=meta)
