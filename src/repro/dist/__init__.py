"""Distributed sweep execution over a shared, lock-safe result store.

The engine's cache key ``(experiment, version, params)`` is fully
content-addressed, so distributing a sweep across processes or machines
only needs the three pieces this subpackage provides:

* :mod:`repro.dist.store` -- the :class:`ResultStore` abstraction:
  :class:`LocalStore` (the classic single-machine cache directory) and
  :class:`SharedStore` (advisory locking + lease-based claims with
  stale-lease recovery + atomic publish, safe for N concurrent workers).
* :mod:`repro.dist.shards` -- :class:`ShardPlan`, a deterministic,
  coordination-free partition of any sweep by stable param-hash, and
  :func:`merge_results`, which reassembles partial results bit-identically
  to a serial run.
* :mod:`repro.dist.worker` -- :func:`run_worker`, the claim/execute/publish
  loop behind ``python -m repro worker``.
* :mod:`repro.dist.sqlstore` -- :class:`SqliteStore`, the same store seam
  over one sqlite database (transactional claims, indexed metadata, queried
  by ``python -m repro query``), :func:`resolve_store` for the CLI's
  ``--store sqlite:///path.db`` spelling and :func:`migrate_store` for
  moving an existing directory store into a database.

Quick start (two cooperating workers, one shared directory)::

    import tempfile

    from repro.api import Engine, SweepSpec
    from repro.dist import SharedStore, run_worker

    store = SharedStore(tempfile.mkdtemp())
    spec = SweepSpec.grid(length_um=[1.0, 10.0, 100.0])

    report = run_worker("table_density", spec, store, worker_id="w1")
    print(report.summary())

    # Any engine pointed at the store reassembles the full sweep from cache.
    merged = Engine(store=store).sweep("table_density", spec)
    print(len(merged), merged.content_hash[:16])

See ``docs/DISTRIBUTED.md`` for the multi-terminal walkthrough, lease/TTL
semantics and failure recovery.
"""

from repro.dist.backoff import Backoff
from repro.dist.shards import ShardPlan, merge_results, point_hash, point_key, shard_of
from repro.dist.sqlstore import (
    MigrationReport,
    SqliteStore,
    migrate_store,
    resolve_store,
)
from repro.dist.store import (
    CLAIM_ACQUIRED,
    CLAIM_BUSY,
    CLAIM_DONE,
    CLAIM_SKIPPED,
    DEFAULT_LEASE_TTL,
    FAILED_SUFFIX,
    LEASE_SUFFIX,
    Lease,
    LocalStore,
    ResultStore,
    SharedStore,
    StoreLockTimeout,
    default_worker_id,
    store_lock,
)
from repro.dist.worker import LeaseHeartbeat, WorkerReport, run_worker

__all__ = [
    "Backoff",
    "CLAIM_ACQUIRED",
    "CLAIM_BUSY",
    "CLAIM_DONE",
    "CLAIM_SKIPPED",
    "DEFAULT_LEASE_TTL",
    "FAILED_SUFFIX",
    "LEASE_SUFFIX",
    "Lease",
    "LeaseHeartbeat",
    "LocalStore",
    "MigrationReport",
    "ResultStore",
    "ShardPlan",
    "SharedStore",
    "SqliteStore",
    "StoreLockTimeout",
    "WorkerReport",
    "default_worker_id",
    "merge_results",
    "migrate_store",
    "point_hash",
    "point_key",
    "resolve_store",
    "run_worker",
    "shard_of",
    "store_lock",
]
