"""SQL-backed result store: the ``ResultStore`` seam over one sqlite file.

:class:`SqliteStore` keeps the engine's content-addressed cache in a single
sqlite database instead of a directory of JSON blobs.  Entry identity is
unchanged -- :meth:`~SqliteStore.entry_path` still returns the familiar
``<experiment>-<key16>.json`` name, it just keys a row instead of naming a
file -- so the engine, workers, daemons and the HTTP service run on either
backend without modification.

What the relational layout buys:

* **Transactional coordination.**  Claim, renew, publish, tombstone and GC
  are conditional writes (``INSERT ... ON CONFLICT`` / guarded ``UPDATE`` /
  ``DELETE``) inside ``BEGIN IMMEDIATE`` transactions: sqlite's writer lock
  replaces the flock + lease-file protocol of
  :class:`~repro.dist.store.SharedStore`, and a crashed worker mid-publish
  can never leave a torn entry -- the transaction either committed or it
  did not.  No shared *filesystem* is required, only a shared database
  file (and postgres is a connection string away).
* **Indexed metadata.**  Experiment, version, cache key, content hash,
  timestamp and worker/executor provenance are real columns with real
  indexes, scanned by ``repro query`` / ``cache stats`` *without* touching
  the (potentially huge) payload blobs.  Millions of cached points need an
  index, not a readdir.
* **One-statement GC.**  Lease and tombstone garbage collection is a pair
  of ``DELETE`` statements instead of a directory walk.

Concurrency model: one connection per thread (heartbeat threads renew
leases concurrently with the executing thread), WAL journal mode so readers
never block the writer, and a busy timeout so contending writers queue
instead of erroring.  The store pickles (connections are dropped and
reopened lazily), so it crosses ``ProcessPoolExecutor`` boundaries like the
directory stores do.

:func:`resolve_store` turns CLI spellings into stores: ``sqlite:///sweep.db``
(or any existing regular file) becomes a :class:`SqliteStore`, a directory
path keeps its :class:`~repro.dist.store.SharedStore` meaning.
:func:`migrate_store` ingests an existing store (directory or database)
into another backend, preserving timestamps and tombstones.

Quick start::

    import tempfile, os

    from repro.api import Engine
    from repro.dist import SqliteStore

    store = SqliteStore(os.path.join(tempfile.mkdtemp(), "cache.db"))
    result = Engine(store=store).run("table_density")
    print(store.entries()[0].experiment, len(store.entries()))
"""

from __future__ import annotations

import json
import os
import re
import sqlite3
import threading
import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Any, ContextManager, Iterator

from repro.api.results import ResultSet
from repro.dist.store import (
    CLAIM_ACQUIRED,
    CLAIM_BUSY,
    CLAIM_DONE,
    CLAIM_SKIPPED,
    DEFAULT_LEASE_TTL,
    FAILED_SUFFIX,
    LEASE_SUFFIX,
    Lease,
    LocalStore,
    ResultStore,
    SharedStore,
)

SCHEMA_VERSION = 1
"""Bumped on any incompatible schema change; checked at connect time."""

_ENTRY_PATTERN = re.compile(r"(?P<experiment>.+)-(?P<key>[0-9a-f]{16})\.json$")


def _trace_json() -> str | None:
    """The claiming process's tracing carrier as JSON (None when off)."""
    from repro.obs.trace import current_carrier

    carrier = current_carrier()
    return None if carrier is None else json.dumps(carrier)


def _row_trace(value: Any) -> dict[str, Any] | None:
    """Parse a leases.trace column value (tolerant of NULL/corruption)."""
    if not value:
        return None
    try:
        parsed = json.loads(value)
    except (TypeError, ValueError):
        return None
    return parsed if isinstance(parsed, dict) else None

_SCHEMA = """
CREATE TABLE IF NOT EXISTS schema_info (
    version INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS results (
    entry        TEXT PRIMARY KEY,
    experiment   TEXT NOT NULL,
    key          TEXT NOT NULL,
    version      TEXT,
    params       TEXT,
    content_hash TEXT,
    created_at   REAL NOT NULL,
    worker_id    TEXT,
    executor     TEXT,
    wall_time_s  REAL,
    n_records    INTEGER,
    size_bytes   INTEGER NOT NULL,
    payload      TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_results_experiment ON results(experiment, version);
CREATE INDEX IF NOT EXISTS idx_results_created ON results(created_at);
CREATE INDEX IF NOT EXISTS idx_results_hash ON results(content_hash);
CREATE INDEX IF NOT EXISTS idx_results_key ON results(key);
CREATE TABLE IF NOT EXISTS leases (
    entry      TEXT PRIMARY KEY,
    worker     TEXT NOT NULL,
    claimed_at REAL NOT NULL,
    expires_at REAL NOT NULL,
    pid        INTEGER,
    trace      TEXT
);
CREATE INDEX IF NOT EXISTS idx_leases_expires ON leases(expires_at);
CREATE TABLE IF NOT EXISTS failures (
    entry     TEXT PRIMARY KEY,
    worker    TEXT,
    error     TEXT,
    failed_at REAL NOT NULL
);
"""


class SqliteStore(ResultStore):
    """A :class:`~repro.dist.store.ResultStore` over one sqlite database file.

    ``directory`` (inherited attribute name, kept for seam compatibility)
    is the database file's path.  All protocol methods -- claim / renew /
    release / publish / tombstone / GC -- are single transactions, so the
    store is safe for concurrent workers (threads or processes) without any
    advisory file locking; :meth:`lock` is a no-op by construction.
    """

    def __init__(self, path: str, timeout: float = 30.0) -> None:
        super().__init__(path)
        self.timeout = timeout
        self._local = threading.local()

    # --- connections --------------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        connection = getattr(self._local, "connection", None)
        if connection is None:
            parent = os.path.dirname(os.path.abspath(self.directory))
            os.makedirs(parent, exist_ok=True)
            connection = sqlite3.connect(
                self.directory, timeout=self.timeout, isolation_level=None
            )
            connection.row_factory = sqlite3.Row
            connection.execute("PRAGMA journal_mode=WAL")
            connection.execute("PRAGMA synchronous=NORMAL")
            self._ensure_schema(connection)
            self._local.connection = connection
        return connection

    def _ensure_schema(self, connection: sqlite3.Connection) -> None:
        connection.executescript(_SCHEMA)
        # Additive migration for databases created before the trace column
        # existed; purely informational, so no SCHEMA_VERSION bump.
        try:
            connection.execute("ALTER TABLE leases ADD COLUMN trace TEXT")
        except sqlite3.OperationalError:
            pass  # column already present
        row = connection.execute("SELECT version FROM schema_info").fetchone()
        if row is None:
            connection.execute(
                "INSERT INTO schema_info(version) VALUES (?)", (SCHEMA_VERSION,)
            )
        elif row["version"] != SCHEMA_VERSION:
            raise ValueError(
                f"store {self.directory!r} has schema version {row['version']}, "
                f"this build expects {SCHEMA_VERSION}"
            )

    @contextmanager
    def _txn(self) -> Iterator[sqlite3.Connection]:
        """One ``BEGIN IMMEDIATE`` transaction (the writer lock is taken up
        front, so every decision inside is atomic against other workers)."""
        connection = self._connect()
        connection.execute("BEGIN IMMEDIATE")
        try:
            yield connection
        except BaseException:
            connection.execute("ROLLBACK")
            raise
        connection.execute("COMMIT")

    def close(self) -> None:
        """Close this thread's connection (others close when their thread dies)."""
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            connection.close()
            self._local.connection = None

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_local"]  # connections do not cross process/pickle boundaries
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._local = threading.local()

    # --- layout -------------------------------------------------------------

    def entry_path(self, experiment: str, key: str) -> str:
        """Entry *name* (the row key): same spelling as the directory stores,
        minus the directory -- nothing downstream treats it as a real file."""
        return f"{experiment}-{key[:16]}.json"

    # --- result I/O ---------------------------------------------------------

    def load(self, path: str) -> ResultSet | None:
        row = self._connect().execute(
            "SELECT payload FROM results WHERE entry = ?", (path,)
        ).fetchone()
        if row is None:
            return None
        try:
            return ResultSet.from_json(row["payload"])
        except (ValueError, KeyError, json.JSONDecodeError):
            return None  # corrupt row: callers recompute and overwrite

    def publish(
        self, path: str, result: ResultSet, created_at: float | None = None
    ) -> None:
        """Upsert the entry row and clear its lease + tombstone, atomically.

        ``created_at`` lets :func:`migrate_store` preserve original write
        timestamps; normal publishes stamp the current time.
        """
        payload = result.to_json()
        meta = result.meta or {}
        match = _ENTRY_PATTERN.fullmatch(path)
        experiment = match.group("experiment") if match else str(
            meta.get("experiment", path)
        )
        key = match.group("key") if match else ""
        params = meta.get("params")
        with self._txn() as connection:
            connection.execute(
                """
                INSERT INTO results (entry, experiment, key, version, params,
                                     content_hash, created_at, worker_id,
                                     executor, wall_time_s, n_records,
                                     size_bytes, payload)
                VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
                ON CONFLICT(entry) DO UPDATE SET
                    version = excluded.version,
                    params = excluded.params,
                    content_hash = excluded.content_hash,
                    created_at = excluded.created_at,
                    worker_id = excluded.worker_id,
                    executor = excluded.executor,
                    wall_time_s = excluded.wall_time_s,
                    n_records = excluded.n_records,
                    size_bytes = excluded.size_bytes,
                    payload = excluded.payload
                """,
                (
                    path,
                    experiment,
                    key,
                    _text_or_none(meta.get("version")),
                    None if params is None else json.dumps(params, sort_keys=True, default=str),
                    _text_or_none(meta.get("content_hash")) or result.content_hash,
                    time.time() if created_at is None else created_at,
                    _text_or_none(meta.get("worker_id")),
                    _text_or_none(meta.get("executor")),
                    meta.get("wall_time_s"),
                    len(result),
                    len(payload),
                    payload,
                ),
            )
            connection.execute("DELETE FROM leases WHERE entry = ?", (path,))
            # A successful result supersedes any earlier failure of the point.
            connection.execute("DELETE FROM failures WHERE entry = ?", (path,))

    # --- coordination -------------------------------------------------------

    def claim(self, path: str, worker_id: str, ttl: float = DEFAULT_LEASE_TTL) -> str:
        if ttl <= 0:
            raise ValueError("lease ttl must be positive")
        while True:
            with self._txn() as connection:
                exists = connection.execute(
                    "SELECT 1 FROM results WHERE entry = ?", (path,)
                ).fetchone()
                if exists is None:
                    now = time.time()
                    lease = connection.execute(
                        "SELECT worker, expires_at FROM leases WHERE entry = ?",
                        (path,),
                    ).fetchone()
                    if (
                        lease is not None
                        and lease["worker"] != worker_id
                        and lease["expires_at"] > now
                    ):
                        return CLAIM_BUSY
                    # Fresh point, our own lease (renewal), or a stale lease
                    # left by a dead worker: take (over) the point.
                    connection.execute(
                        """
                        INSERT INTO leases (entry, worker, claimed_at, expires_at, pid, trace)
                        VALUES (?, ?, ?, ?, ?, ?)
                        ON CONFLICT(entry) DO UPDATE SET
                            worker = excluded.worker,
                            claimed_at = excluded.claimed_at,
                            expires_at = excluded.expires_at,
                            pid = excluded.pid,
                            trace = excluded.trace
                        """,
                        (path, worker_id, now, now + ttl, os.getpid(), _trace_json()),
                    )
                    return CLAIM_ACQUIRED
            # A row exists.  Validate it *outside* the write transaction --
            # published entries are immutable, so a successful parse at any
            # time means done, and N workers must not serialise on parsing.
            if self.load(path) is not None:
                return CLAIM_DONE
            # Corrupt row: dispose of it and loop back to take the lease.
            # Re-validate inside the transaction so a concurrent publish
            # that just replaced the torn payload is never deleted.
            with self._txn() as connection:
                row = connection.execute(
                    "SELECT payload FROM results WHERE entry = ?", (path,)
                ).fetchone()
                if row is not None and _parses(row["payload"]) is None:
                    connection.execute(
                        "DELETE FROM results WHERE entry = ?", (path,)
                    )

    def claim_many(
        self,
        paths: list[str],
        worker_id: str,
        ttl: float = DEFAULT_LEASE_TTL,
        max_acquire: int | None = None,
    ) -> list[str]:
        """Batch claim as one ``BEGIN IMMEDIATE`` transaction per pass.

        Same per-path decisions as :meth:`claim`, but N pending points cost
        one writer-lock round trip instead of N.  Payload validation stays
        outside the transaction (published rows are immutable); corrupt rows
        are disposed of and re-examined on a follow-up pass.
        """
        if ttl <= 0:
            raise ValueError("lease ttl must be positive")
        statuses: list[str | None] = [None] * len(paths)
        pending = list(range(len(paths)))
        acquired = 0
        while pending:
            revisit: list[int] = []  # rows exist: validate outside the txn
            with self._txn() as connection:
                now = time.time()
                for index in pending:
                    path = paths[index]
                    if max_acquire is not None and acquired >= max_acquire:
                        statuses[index] = CLAIM_SKIPPED
                        continue
                    exists = connection.execute(
                        "SELECT 1 FROM results WHERE entry = ?", (path,)
                    ).fetchone()
                    if exists is not None:
                        revisit.append(index)
                        continue
                    lease = connection.execute(
                        "SELECT worker, expires_at FROM leases WHERE entry = ?",
                        (path,),
                    ).fetchone()
                    if (
                        lease is not None
                        and lease["worker"] != worker_id
                        and lease["expires_at"] > now
                    ):
                        statuses[index] = CLAIM_BUSY
                        continue
                    connection.execute(
                        """
                        INSERT INTO leases (entry, worker, claimed_at, expires_at, pid, trace)
                        VALUES (?, ?, ?, ?, ?, ?)
                        ON CONFLICT(entry) DO UPDATE SET
                            worker = excluded.worker,
                            claimed_at = excluded.claimed_at,
                            expires_at = excluded.expires_at,
                            pid = excluded.pid,
                            trace = excluded.trace
                        """,
                        (path, worker_id, now, now + ttl, os.getpid(), _trace_json()),
                    )
                    statuses[index] = CLAIM_ACQUIRED
                    acquired += 1
            corrupt: list[int] = []
            for index in revisit:
                if self.load(paths[index]) is not None:
                    statuses[index] = CLAIM_DONE
                else:
                    corrupt.append(index)
            if corrupt:
                # Dispose of torn rows (re-validated inside the transaction,
                # so a concurrent good publish is never deleted), then loop
                # back to lease them.
                with self._txn() as connection:
                    for index in corrupt:
                        row = connection.execute(
                            "SELECT payload FROM results WHERE entry = ?",
                            (paths[index],),
                        ).fetchone()
                        if row is not None and _parses(row["payload"]) is None:
                            connection.execute(
                                "DELETE FROM results WHERE entry = ?",
                                (paths[index],),
                            )
            pending = corrupt
        return [status for status in statuses if status is not None]

    def release(self, path: str, worker_id: str) -> None:
        with self._txn() as connection:
            connection.execute(
                "DELETE FROM leases WHERE entry = ? AND worker = ?",
                (path, worker_id),
            )

    def renew(self, path: str, worker_id: str, ttl: float = DEFAULT_LEASE_TTL) -> bool:
        if ttl <= 0:
            raise ValueError("lease ttl must be positive")
        with self._txn() as connection:
            exists = connection.execute(
                "SELECT 1 FROM results WHERE entry = ?", (path,)
            ).fetchone()
            if exists is not None:
                return False  # published meanwhile: nothing left to renew
            now = time.time()
            cursor = connection.execute(
                "UPDATE leases SET expires_at = ? WHERE entry = ? AND worker = ?",
                (now + ttl, path, worker_id),
            )
            return cursor.rowcount > 0

    def record_failure(self, path: str, worker_id: str, error: str) -> None:
        with self._txn() as connection:
            exists = connection.execute(
                "SELECT 1 FROM results WHERE entry = ?", (path,)
            ).fetchone()
            if exists is not None:
                return  # someone published a good result meanwhile
            connection.execute(
                """
                INSERT INTO failures (entry, worker, error, failed_at)
                VALUES (?, ?, ?, ?)
                ON CONFLICT(entry) DO UPDATE SET
                    worker = excluded.worker,
                    error = excluded.error,
                    failed_at = excluded.failed_at
                """,
                (path, worker_id, str(error), time.time()),
            )

    def lock(self, timeout: float | None = None) -> ContextManager[None]:
        """No-op: every operation is already a transaction."""
        return nullcontext()

    # --- inspection ---------------------------------------------------------

    def read_lease(self, path: str) -> Lease | None:
        row = self._connect().execute(
            "SELECT * FROM leases WHERE entry = ?", (path,)
        ).fetchone()
        if row is None:
            return None
        return Lease(
            path=row["entry"] + LEASE_SUFFIX,
            worker=row["worker"],
            claimed_at=row["claimed_at"],
            expires_at=row["expires_at"],
            pid=row["pid"],
            trace=_row_trace(row["trace"]),
        )

    def leases(self, now: float | None = None) -> list[Lease]:
        """All current leases, sorted by entry (expired ones included).

        ``Lease.path`` carries the conventional ``.lease`` suffix so
        provenance-reading code works identically across backends."""
        rows = self._connect().execute(
            "SELECT * FROM leases ORDER BY entry"
        ).fetchall()
        return [
            Lease(
                path=row["entry"] + LEASE_SUFFIX,
                worker=row["worker"],
                claimed_at=row["claimed_at"],
                expires_at=row["expires_at"],
                pid=row["pid"],
                trace=_row_trace(row["trace"]),
            )
            for row in rows
        ]

    def failures(self) -> list[dict]:
        """All failure tombstones, shaped like the directory stores'."""
        rows = self._connect().execute(
            "SELECT * FROM failures ORDER BY entry"
        ).fetchall()
        return [
            {
                "worker": row["worker"],
                "error": row["error"],
                "failed_at": row["failed_at"],
                "path": row["entry"] + FAILED_SUFFIX,
            }
            for row in rows
        ]

    # --- maintenance --------------------------------------------------------

    def exists(self, path: str) -> bool:
        """Entry, lease, or tombstone existence by its conventional name."""
        connection = self._connect()
        if path.endswith(LEASE_SUFFIX):
            query, name = "SELECT 1 FROM leases WHERE entry = ?", path[: -len(LEASE_SUFFIX)]
        elif path.endswith(FAILED_SUFFIX):
            query, name = "SELECT 1 FROM failures WHERE entry = ?", path[: -len(FAILED_SUFFIX)]
        else:
            query, name = "SELECT 1 FROM results WHERE entry = ?", path
        return connection.execute(query, (name,)).fetchone() is not None

    def entries(self, read_meta: bool = True) -> list:
        """All entries from the metadata columns -- payload blobs untouched."""
        from repro.api.cache import CacheEntry

        rows = self._connect().execute(
            """
            SELECT entry, experiment, key, version, params, created_at, size_bytes
            FROM results ORDER BY entry
            """
        ).fetchall()
        found = []
        for row in rows:
            params = None
            if read_meta and row["params"] is not None:
                try:
                    params = json.loads(row["params"])
                except json.JSONDecodeError:
                    params = None
            found.append(
                CacheEntry(
                    path=row["entry"],
                    experiment=row["experiment"],
                    key=row["key"],
                    version=row["version"] if read_meta else None,
                    params=params,
                    size_bytes=row["size_bytes"],
                    mtime=row["created_at"],
                )
            )
        return found

    def remove_entries(self, paths: list[str]) -> int:
        if not paths:
            return 0
        removed = 0
        with self._txn() as connection:
            for chunk in _chunks(list(paths), 500):
                marks = ",".join("?" for _ in chunk)
                cursor = connection.execute(
                    f"DELETE FROM results WHERE entry IN ({marks})", chunk
                )
                removed += cursor.rowcount
                connection.execute(
                    f"DELETE FROM leases WHERE entry IN ({marks})", chunk
                )
                connection.execute(
                    f"DELETE FROM failures WHERE entry IN ({marks})", chunk
                )
        return removed

    def collect_garbage(
        self,
        now: float | None = None,
        dry_run: bool = False,
        keep_pending_failures: bool = False,
    ) -> list[str]:
        """Lease/tombstone GC as two conditional ``DELETE`` statements."""
        timestamp = time.time() if now is None else now
        stale_leases = (
            "entry IN (SELECT entry FROM results) OR expires_at <= ?"
        )
        stale_failures = (
            "entry IN (SELECT entry FROM results)"
            if keep_pending_failures
            else "1=1"
        )
        with self._txn() as connection:
            stale = [
                row["entry"] + LEASE_SUFFIX
                for row in connection.execute(
                    f"SELECT entry FROM leases WHERE {stale_leases} ORDER BY entry",
                    (timestamp,),
                )
            ] + [
                row["entry"] + FAILED_SUFFIX
                for row in connection.execute(
                    f"SELECT entry FROM failures WHERE {stale_failures} ORDER BY entry"
                )
            ]
            if not dry_run:
                connection.execute(
                    f"DELETE FROM leases WHERE {stale_leases}", (timestamp,)
                )
                connection.execute(f"DELETE FROM failures WHERE {stale_failures}")
        return stale


def _parses(payload: str) -> ResultSet | None:
    try:
        return ResultSet.from_json(payload)
    except (ValueError, KeyError, json.JSONDecodeError):
        return None


def _text_or_none(value: Any) -> str | None:
    return None if value is None else str(value)


def _chunks(items: list, size: int) -> Iterator[list]:
    for start in range(0, len(items), size):
        yield items[start : start + size]


SQLITE_SCHEMES = ("sqlite:///", "sqlite://", "sqlite:")
"""Accepted URL spellings; ``sqlite:///x.db`` is relative, ``sqlite:////x.db``
absolute (the SQLAlchemy convention)."""


def resolve_store(
    spec: "str | ResultStore", shared: bool = True, timeout: float = 30.0
) -> ResultStore:
    """Turn a CLI ``--store`` spelling into a :class:`ResultStore`.

    * ``sqlite:///path.db`` / ``sqlite:path.db`` -- a :class:`SqliteStore`;
    * a path to an existing regular *file* -- also a :class:`SqliteStore`
      (a store database someone already created);
    * anything else -- a directory store: :class:`SharedStore` when
      ``shared`` (the distributed default), else :class:`LocalStore`.

    Store instances pass through unchanged, so call sites can accept both.
    """
    if isinstance(spec, ResultStore):
        return spec
    text = str(spec)
    if text.startswith("sqlite:"):
        path = text[len("sqlite:") :]
        if path.startswith("//"):
            path = path[2:]
            # SQLAlchemy convention: three slashes = relative, four = absolute.
            if path.startswith("/"):
                path = path[1:]
                if path.startswith("/"):
                    path = "/" + path.lstrip("/")
        if not path:
            raise ValueError(f"no database path in store spec {text!r}")
        return SqliteStore(path, timeout=timeout)
    if os.path.isfile(text):
        return SqliteStore(text, timeout=timeout)
    return SharedStore(text) if shared else LocalStore(text)


@dataclass
class MigrationReport:
    """What :func:`migrate_store` moved (and what it could not)."""

    source: str
    destination: str
    migrated: int = 0
    failures: int = 0
    skipped: list[str] = field(default_factory=list)

    def summary(self) -> str:
        parts = [
            f"migrated {self.migrated} entries",
            f"{self.failures} tombstones",
        ]
        if self.skipped:
            parts.append(f"skipped {len(self.skipped)} corrupt entries")
        return f"{self.source} -> {self.destination}: " + ", ".join(parts)


def migrate_store(source: ResultStore, destination: ResultStore) -> MigrationReport:
    """Copy every loadable entry (plus tombstones) between store backends.

    Entry names, payloads and write timestamps are preserved, so content
    hashes -- and therefore cache identity -- survive the move; corrupt
    source entries are skipped and reported rather than aborting the run.
    The usual direction is directory -> sqlite (``repro migrate``), but any
    pairing of backends works.
    """
    report = MigrationReport(
        source=source.directory, destination=destination.directory
    )
    for entry in source.entries(read_meta=False):
        result = source.load(entry.path)
        if result is None:
            report.skipped.append(entry.path)
            continue
        target_path = destination.entry_path(entry.experiment, entry.key)
        if isinstance(destination, SqliteStore):
            destination.publish(target_path, result, created_at=entry.mtime)
        else:
            destination.publish(target_path, result)
            os.utime(target_path, (entry.mtime, entry.mtime))
    report.migrated = len(source.entries(read_meta=False)) - len(report.skipped)
    failures = getattr(source, "failures", None)
    for tombstone in failures() if callable(failures) else []:
        name = os.path.basename(str(tombstone.get("path", "")))
        if not name.endswith(FAILED_SUFFIX):
            continue
        destination.record_failure(
            name[: -len(FAILED_SUFFIX)],
            str(tombstone.get("worker", "")),
            str(tombstone.get("error", "")),
        )
        report.failures += 1
    return report
