"""Pluggable result stores: one cache layout, local or shared between machines.

The engine memoises experiment results as ``<experiment>-<key16>.json``
files (see :mod:`repro.api.cache`).  This module turns that directory into a
*store* abstraction the execution layer is pointed at:

* :class:`LocalStore` -- the exact single-machine behaviour the engine always
  had: atomic publish (tmp file + fsync + ``os.replace``), tolerant loads,
  no coordination.  ``Engine(cache_dir=...)`` is shorthand for
  ``Engine(store=LocalStore(...))``.
* :class:`SharedStore` -- the same on-disk format plus the coordination that
  makes one directory safe to share between independent worker processes or
  machines (through a shared filesystem): an advisory store lock and
  lease-based point claims (:meth:`~SharedStore.claim`) with stale-lease
  recovery, so N workers partition a sweep dynamically without duplicating
  or clobbering each other's work.

Claims are leases, not hard locks: ``claim(path, worker_id, ttl)`` grants the
point to one worker for ``ttl`` seconds.  A worker that dies mid-point simply
stops existing -- once its lease expires, any other worker's ``claim`` takes
the point over.  Publishing a result is atomic and removes the lease, and
``claim`` reports ``"done"`` once a result exists, so late workers skip
straight past completed points.  The ``ttl`` must exceed the longest single
point's wall time; a slower-than-ttl (but alive) worker can be
double-executed -- results are content-addressed, so that race wastes work
but never corrupts the store.

Locking is advisory (``flock`` where available, a lock-directory spin
otherwise), scoped to one lock file per store (:data:`LOCK_FILENAME`), and
granular: reads never lock (publishes are atomic renames); only the
claim/publish/release bookkeeping and store maintenance serialise on it.
:func:`store_lock` is the maintenance entry point ``cache clear`` / ``cache
prune`` use so that evicting entries from a live shared store cannot
interleave with a worker's publish.
"""

from __future__ import annotations

import json
import os
import socket
import tempfile
import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass
from typing import Any, ContextManager, Iterator

from repro.api.results import ResultSet
from repro.obs.trace import current_carrier

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

LOCK_FILENAME = ".repro-store.lock"
"""Name of the advisory lock file inside a store directory."""

LEASE_SUFFIX = ".lease"
"""Appended to an entry path to form its claim-lease file."""

FAILED_SUFFIX = ".failed"
"""Appended to an entry path to form its failure-tombstone file.

A worker whose point raises releases the lease *and* records the failure as
a tombstone, so operators can see what failed (and why) after every worker
has exited.  Tombstones are diagnostic residue, not state: claims ignore
them, a later successful publish removes them, and ``python -m repro cache
prune --gc`` (:func:`repro.api.cache.gc_store`) garbage-collects them."""

DEFAULT_LEASE_TTL = 300.0
"""Default claim lease in seconds; must exceed the slowest single point."""

# Claim outcomes (see ResultStore.claim / ResultStore.claim_many).
CLAIM_ACQUIRED = "acquired"
CLAIM_DONE = "done"
CLAIM_BUSY = "busy"
CLAIM_SKIPPED = "skipped"
"""``claim_many`` only: the path was not examined because ``max_acquire``
leases were already granted in this call.  The point is neither done nor
busy as far as the caller knows -- retry it on a later round trip."""


class StoreLockTimeout(TimeoutError):
    """The store lock could not be acquired within the requested timeout."""


def default_worker_id() -> str:
    """A worker identity unique per process: ``<hostname>-<pid>``."""
    return f"{socket.gethostname()}-{os.getpid()}"


def _flock_acquire(handle, path: str, timeout: float | None, poll: float) -> None:
    if timeout is None:
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        return
    deadline = time.monotonic() + timeout
    while True:
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            return
        except OSError:
            if time.monotonic() >= deadline:
                raise StoreLockTimeout(
                    f"store lock {path} not acquired within {timeout:.3f} s"
                ) from None
            time.sleep(poll)


STALE_LOCKDIR_SECONDS = 300.0
"""Age after which the mkdir-fallback lock of a crashed holder is broken.

``flock`` locks die with their process; a lock *directory* does not, so the
fallback needs explicit stale-lock recovery or one crashed holder would
deadlock every worker and all cache maintenance forever.  Must comfortably
exceed the longest critical section (they are all O(one file write))."""


def _lockdir_acquire(path: str, timeout: float | None, poll: float) -> None:
    # Portable fallback: mkdir is atomic on every filesystem worth using.
    deadline = None if timeout is None else time.monotonic() + timeout
    while True:
        try:
            os.mkdir(path)
            return
        except FileExistsError:
            try:
                if time.time() - os.stat(path).st_mtime > STALE_LOCKDIR_SECONDS:
                    # Crashed holder: break the lock.  A racing breaker just
                    # sees the rmdir fail / mkdir race and keeps looping.
                    os.rmdir(path)
                    continue
            except OSError:
                pass  # removed concurrently: loop and try mkdir again
            if deadline is not None and time.monotonic() >= deadline:
                raise StoreLockTimeout(
                    f"store lock {path} not acquired within {timeout:.3f} s"
                ) from None
            time.sleep(poll)


@contextmanager
def store_lock(
    directory: str, timeout: float | None = None, poll_interval: float = 0.05
) -> Iterator[None]:
    """Exclusive advisory lock over a store directory.

    Serialises claim/publish bookkeeping and maintenance (``cache clear`` /
    ``cache prune``) across processes and machines sharing the directory.
    ``timeout=None`` blocks until acquired; otherwise
    :class:`StoreLockTimeout` is raised after ``timeout`` seconds.  The lock
    is *not* reentrant -- do not nest.
    """
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, LOCK_FILENAME)
    if fcntl is not None:
        handle = open(path, "a+")
        try:
            _flock_acquire(handle, path, timeout, poll_interval)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        finally:
            handle.close()
    else:  # pragma: no cover - exercised only on platforms without fcntl
        lockdir = path + ".d"
        _lockdir_acquire(lockdir, timeout, poll_interval)
        try:
            yield
        finally:
            try:
                os.rmdir(lockdir)
            except OSError:
                pass


def _atomic_write(directory: str, path: str, text: str, fsync: bool = False) -> None:
    """Write ``text`` to ``path`` atomically (tmp file + ``os.replace``).

    The final name only ever points at a fully written file; ``fsync``
    additionally forces the data to disk before the rename publishes it.
    A failed write cleans its temp file up and re-raises.
    """
    handle = tempfile.NamedTemporaryFile("w", dir=directory, suffix=".tmp", delete=False)
    try:
        handle.write(text)
        if fsync:
            handle.flush()
            os.fsync(handle.fileno())
        handle.close()
        os.replace(handle.name, path)
    except BaseException:
        handle.close()
        if os.path.exists(handle.name):
            os.unlink(handle.name)
        raise


@dataclass(frozen=True)
class Lease:
    """One worker's temporary claim on a pending store entry.

    ``trace`` optionally carries the claiming worker's tracing carrier
    (see :func:`repro.obs.current_carrier`), so a crashed worker's lease
    still names the trace its point belonged to.
    """

    path: str
    worker: str
    claimed_at: float
    expires_at: float
    pid: int | None = None
    trace: dict[str, Any] | None = None

    def expired(self, now: float | None = None) -> bool:
        """Whether the lease has lapsed (its point is claimable again)."""
        return (time.time() if now is None else now) >= self.expires_at

    @property
    def entry_path(self) -> str:
        """Path of the result entry this lease guards."""
        return self.path[: -len(LEASE_SUFFIX)]


class ResultStore:
    """A directory of memoised experiment results in the engine's layout.

    The base class is the single-process contract: tolerant ``load``, atomic
    ``publish``, and trivial claim semantics (``claim`` only reports whether
    the entry already exists -- no coordination, no locking).
    :class:`SharedStore` overrides the coordination methods; execution code
    (the engine, :func:`repro.dist.worker.run_worker`) talks to the base
    interface only, which is what lets serial, pooled and distributed runs
    share one dispatch path.
    """

    def __init__(self, directory: str) -> None:
        self.directory = str(directory)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.directory!r})"

    # --- layout -----------------------------------------------------------

    def entry_path(self, experiment: str, key: str) -> str:
        """Path of the entry for one content-addressed cache key."""
        return os.path.join(self.directory, f"{experiment}-{key[:16]}.json")

    # --- result I/O -------------------------------------------------------

    def load(self, path: str) -> ResultSet | None:
        """Read one entry; ``None`` for missing or corrupt files.

        Reads never lock: publishes are atomic renames, so a reader only
        ever sees a complete entry or none at all.
        """
        if not os.path.exists(path):
            return None
        try:
            return ResultSet.from_json(path)
        except (ValueError, KeyError, json.JSONDecodeError):
            return None  # corrupt entry: callers recompute and overwrite

    def publish(self, path: str, result: ResultSet) -> None:
        """Atomically write one entry (tmp file + fsync + ``os.replace``).

        A crashed publish never leaves a truncated or corrupt entry behind:
        the final name only ever points at a fully written, synced file.
        """
        os.makedirs(self.directory, exist_ok=True)
        _atomic_write(self.directory, path, result.to_json(), fsync=True)

    # --- coordination (trivial locally) ------------------------------------

    def claim(self, path: str, worker_id: str, ttl: float = DEFAULT_LEASE_TTL) -> str:
        """Try to claim one pending entry for execution.

        Returns :data:`CLAIM_DONE` when a *loadable* result already exists
        (a corrupt entry counts as absent, so it gets recomputed instead of
        being skipped forever), :data:`CLAIM_ACQUIRED` when the caller
        should execute the point, or :data:`CLAIM_BUSY` when another live
        worker holds the lease (shared stores only -- a local store has no
        one to race).
        """
        return CLAIM_DONE if self.load(path) is not None else CLAIM_ACQUIRED

    def claim_many(
        self,
        paths: list[str],
        worker_id: str,
        ttl: float = DEFAULT_LEASE_TTL,
        max_acquire: int | None = None,
    ) -> list[str]:
        """Claim a batch of pending entries in (ideally) one store round trip.

        Returns one claim outcome per path, in order: the :meth:`claim`
        statuses plus :data:`CLAIM_SKIPPED` for paths not examined because
        ``max_acquire`` leases were already granted.  Workers use this to
        amortise store locking over whole sweeps -- against a contended
        :class:`SharedStore` or :class:`~repro.dist.sqlstore.SqliteStore`
        the per-point lock/transaction round trip dominates cheap points,
        and those backends override this with a single-lock implementation.
        The base class has no coordination cost, so it simply loops.
        """
        statuses: list[str] = []
        acquired = 0
        for path in paths:
            if max_acquire is not None and acquired >= max_acquire:
                statuses.append(CLAIM_SKIPPED)
                continue
            status = self.claim(path, worker_id, ttl)
            if status == CLAIM_ACQUIRED:
                acquired += 1
            statuses.append(status)
        return statuses

    def release(self, path: str, worker_id: str) -> None:
        """Give up a claim without publishing (failed or abandoned point)."""

    def renew(self, path: str, worker_id: str, ttl: float = DEFAULT_LEASE_TTL) -> bool:
        """Extend one's own lease on a pending entry (heartbeat).

        Returns True when the lease is (still) held after the call.  The
        local store has no leases to renew, so it always reports success --
        the heartbeat contract is only meaningful against a
        :class:`SharedStore`.
        """
        return True

    def record_failure(self, path: str, worker_id: str, error: str) -> None:
        """Record a failure tombstone for a pending entry (no-op locally)."""

    def lock(self, timeout: float | None = None) -> ContextManager[None]:
        """Maintenance lock over the whole store (no-op locally)."""
        return nullcontext()

    # --- maintenance / inspection -------------------------------------------
    #
    # The maintenance surface (``cache stats/clear/prune --gc``, queue GC)
    # talks to these four methods instead of walking the directory itself, so
    # backends with a different physical layout (:class:`SqliteStore`) inherit
    # every maintenance tool for free.

    def exists(self, path: str) -> bool:
        """Whether an entry or bookkeeping document exists at ``path``."""
        return os.path.exists(path)

    def entries(self, read_meta: bool = True) -> list:
        """This store's cache entries as :class:`repro.api.cache.CacheEntry`.

        ``read_meta=False`` skips provenance metadata (version/params) for
        callers that only need the inventory.
        """
        from repro.api.cache import scan_cache

        return scan_cache(self.directory, read_meta=read_meta)

    def remove_entries(self, paths: list[str]) -> int:
        """Delete entries plus their lease/tombstone bookkeeping.

        Returns the number of entries actually removed.  A leftover lease
        would make an evicted point look claimed; a leftover tombstone would
        report a failure for a point that no longer exists -- both die with
        the entry.
        """
        removed = 0
        for path in paths:
            try:
                os.unlink(path)
                removed += 1
            except FileNotFoundError:
                pass  # deleted concurrently: already gone is fine
            for suffix in (LEASE_SUFFIX, FAILED_SUFFIX):
                try:
                    os.unlink(path + suffix)
                except FileNotFoundError:
                    pass
        return removed

    def collect_garbage(
        self,
        now: float | None = None,
        dry_run: bool = False,
        keep_pending_failures: bool = False,
    ) -> list[str]:
        """GC claim/tombstone residue; a local store has none to collect."""
        return []


class LocalStore(ResultStore):
    """The engine's classic single-machine cache directory, unchanged.

    Exists as a named type so ``Engine(store=...)`` reads explicitly; the
    behaviour is exactly the :class:`ResultStore` base contract (and exactly
    what ``Engine(cache_dir=...)`` always did).
    """


class SharedStore(ResultStore):
    """A store directory shared by many workers, made race-safe.

    Adds to :class:`LocalStore`:

    * an advisory store lock (:meth:`lock`) serialising all bookkeeping,
    * lease-based claims: :meth:`claim` grants a point to one worker for
      ``ttl`` seconds, recorded in an ``<entry>.json.lease`` file written
      atomically under the lock.  Expired leases (dead workers) are taken
      over transparently; re-claiming one's own lease renews it.
    * locked publish: the atomic result write and the lease removal happen
      under the store lock, so maintenance (``cache prune``) never observes
      half-updated bookkeeping.

    ``poll_interval`` tunes how often blocked lock acquisitions retry.
    """

    def __init__(self, directory: str, poll_interval: float = 0.05) -> None:
        super().__init__(directory)
        self.poll_interval = poll_interval

    def lock(self, timeout: float | None = None) -> ContextManager[None]:
        return store_lock(self.directory, timeout=timeout, poll_interval=self.poll_interval)

    # --- leases -----------------------------------------------------------

    def _lease_path(self, path: str) -> str:
        return path + LEASE_SUFFIX

    def read_lease(self, path: str) -> Lease | None:
        """The current lease of an entry, or ``None`` (corrupt counts as none)."""
        lease_path = self._lease_path(path)
        try:
            with open(lease_path) as handle:
                payload = json.load(handle)
            trace = payload.get("trace")
            return Lease(
                path=lease_path,
                worker=str(payload["worker"]),
                claimed_at=float(payload["claimed_at"]),
                expires_at=float(payload["expires_at"]),
                pid=payload.get("pid"),
                trace=trace if isinstance(trace, dict) else None,
            )
        except (OSError, ValueError, KeyError, TypeError):
            return None  # missing or corrupt lease: the point is claimable

    def _write_lease(self, path: str, worker_id: str, now: float, ttl: float) -> None:
        payload: dict[str, Any] = {
            "worker": worker_id,
            "claimed_at": now,
            "expires_at": now + ttl,
            "pid": os.getpid(),
        }
        carrier = current_carrier()
        if carrier is not None:
            # Lease metadata never feeds cache keys or content hashes, so
            # the trace context is free to ride along with the claim.
            payload["trace"] = carrier
        _atomic_write(self.directory, self._lease_path(path), json.dumps(payload))

    def _unlink_lease(self, path: str) -> None:
        try:
            os.unlink(self._lease_path(path))
        except FileNotFoundError:
            pass

    def leases(self, now: float | None = None) -> list[Lease]:
        """All current lease files, sorted by path (expired ones included)."""
        if not os.path.isdir(self.directory):
            return []
        found = []
        for filename in sorted(os.listdir(self.directory)):
            if not filename.endswith(".json" + LEASE_SUFFIX):
                continue
            lease = self.read_lease(
                os.path.join(self.directory, filename[: -len(LEASE_SUFFIX)])
            )
            if lease is not None:
                found.append(lease)
        return found

    # --- coordination -----------------------------------------------------

    def claim(self, path: str, worker_id: str, ttl: float = DEFAULT_LEASE_TTL) -> str:
        if ttl <= 0:
            raise ValueError("lease ttl must be positive")
        while True:
            with self.lock():
                if not os.path.exists(path):
                    lease = self.read_lease(path)
                    now = time.time()
                    if (
                        lease is not None
                        and lease.worker != worker_id
                        and not lease.expired(now)
                    ):
                        return CLAIM_BUSY
                    # Fresh point, our own lease (renewal), or a stale lease
                    # left by a dead worker: take (over) the point.
                    self._write_lease(path, worker_id, now, ttl)
                    return CLAIM_ACQUIRED
            # An entry exists.  Validate it *outside* the lock -- published
            # entries are immutable, so a successful parse at any time means
            # done, and N workers must not serialise on JSON parsing.
            if self.load(path) is not None:
                return CLAIM_DONE
            # Corrupt entry: dispose of it and loop back to take the lease.
            # Re-validate under the lock so a concurrent publish that just
            # replaced the torn file with a good one is never deleted.
            with self.lock():
                if os.path.exists(path) and self.load(path) is None:
                    os.unlink(path)

    def claim_many(
        self,
        paths: list[str],
        worker_id: str,
        ttl: float = DEFAULT_LEASE_TTL,
        max_acquire: int | None = None,
    ) -> list[str]:
        """Batch claim under a *single* lock acquisition per pass.

        The per-path decisions are identical to :meth:`claim`; what changes
        is the cost model -- N pending points are leased with one
        lock/unlock round trip instead of N, which is what makes worker
        dispatch overhead independent of sweep size.  Entry validation
        still happens outside the lock (published entries are immutable,
        and N workers must not serialise on JSON parsing); corrupt entries
        are disposed of and re-examined on a follow-up pass, exactly like
        the single-point loop.
        """
        if ttl <= 0:
            raise ValueError("lease ttl must be positive")
        statuses: list[str | None] = [None] * len(paths)
        pending = list(range(len(paths)))
        acquired = 0
        while pending:
            revisit: list[int] = []  # entries on disk: validate outside the lock
            with self.lock():
                now = time.time()
                for index in pending:
                    path = paths[index]
                    if max_acquire is not None and acquired >= max_acquire:
                        statuses[index] = CLAIM_SKIPPED
                        continue
                    if os.path.exists(path):
                        revisit.append(index)
                        continue
                    lease = self.read_lease(path)
                    if (
                        lease is not None
                        and lease.worker != worker_id
                        and not lease.expired(now)
                    ):
                        statuses[index] = CLAIM_BUSY
                        continue
                    self._write_lease(path, worker_id, now, ttl)
                    statuses[index] = CLAIM_ACQUIRED
                    acquired += 1
            corrupt: list[int] = []
            for index in revisit:
                if self.load(paths[index]) is not None:
                    statuses[index] = CLAIM_DONE
                else:
                    corrupt.append(index)
            if corrupt:
                # Dispose of torn entries under the lock (re-validated there,
                # so a concurrent good publish is never deleted), then loop
                # back to lease them.
                with self.lock():
                    for index in corrupt:
                        path = paths[index]
                        if os.path.exists(path) and self.load(path) is None:
                            os.unlink(path)
            pending = corrupt
        return [status for status in statuses if status is not None]

    def publish(self, path: str, result: ResultSet) -> None:
        with self.lock():
            super().publish(path, result)
            self._unlink_lease(path)
            # A successful result supersedes any earlier failure of the point.
            try:
                os.unlink(path + FAILED_SUFFIX)
            except FileNotFoundError:
                pass

    def release(self, path: str, worker_id: str) -> None:
        with self.lock():
            lease = self.read_lease(path)
            if lease is not None and lease.worker == worker_id:
                self._unlink_lease(path)

    def renew(self, path: str, worker_id: str, ttl: float = DEFAULT_LEASE_TTL) -> bool:
        """Heartbeat: push one's own lease expiry ``ttl`` seconds out.

        Returns False -- without touching anything -- when the lease is gone
        or owned by another worker (the point was published, pruned, or taken
        over after an expiry); the caller should treat its execution as
        potentially duplicated but must not extend a foreign lease.
        """
        if ttl <= 0:
            raise ValueError("lease ttl must be positive")
        with self.lock():
            lease = self.read_lease(path)
            if lease is None or lease.worker != worker_id or os.path.exists(path):
                return False
            self._write_lease(path, worker_id, time.time(), ttl)
            return True

    def record_failure(self, path: str, worker_id: str, error: str) -> None:
        """Write the failure tombstone of a pending entry (atomic, locked)."""
        payload = {
            "worker": worker_id,
            "error": str(error),
            "failed_at": time.time(),
        }
        with self.lock():
            if os.path.exists(path):
                return  # someone published a good result meanwhile
            _atomic_write(self.directory, path + FAILED_SUFFIX, json.dumps(payload))

    def failures(self) -> list[dict]:
        """All failure tombstones (path, worker, error, failed_at), by path."""
        if not os.path.isdir(self.directory):
            return []
        found = []
        for filename in sorted(os.listdir(self.directory)):
            if not filename.endswith(".json" + FAILED_SUFFIX):
                continue
            tombstone = os.path.join(self.directory, filename)
            try:
                with open(tombstone) as handle:
                    payload = json.load(handle)
            except (OSError, ValueError):
                continue  # torn or concurrently removed: nothing to report
            payload["path"] = tombstone
            found.append(payload)
        return found

    def collect_garbage(
        self,
        now: float | None = None,
        dry_run: bool = False,
        keep_pending_failures: bool = False,
    ) -> list[str]:
        """Collect crashed-worker residue; returns the disposed paths.

        Removes failure tombstones and the claim leases that are expired
        (their worker died mid-point), corrupt, or attached to an entry that
        already exists.  Live, unexpired leases of pending entries are never
        touched, so GC is safe against running workers.  With
        ``keep_pending_failures`` a tombstone whose entry is still absent is
        preserved -- :class:`repro.service.queue.SpecQueue` uses that mode
        because its tombstones *are* the failed-job state.
        """
        if not os.path.isdir(self.directory):
            return []
        timestamp = time.time() if now is None else now

        def collect() -> list[str]:
            stale: list[str] = []
            for filename in sorted(os.listdir(self.directory)):
                path = os.path.join(self.directory, filename)
                if filename.endswith(".json" + FAILED_SUFFIX):
                    entry_path = path[: -len(FAILED_SUFFIX)]
                    if not keep_pending_failures or os.path.exists(entry_path):
                        stale.append(path)
                    continue
                if not filename.endswith(".json" + LEASE_SUFFIX):
                    continue
                entry_path = path[: -len(LEASE_SUFFIX)]
                lease = self.read_lease(entry_path)
                if (
                    lease is None  # corrupt lease: the point is claimable anyway
                    or lease.expired(timestamp)
                    or os.path.exists(entry_path)  # published: lease is vestigial
                ):
                    stale.append(path)
            return stale

        if dry_run:
            return collect()
        with self.lock():
            stale = collect()
            for path in stale:
                try:
                    os.unlink(path)
                except FileNotFoundError:
                    pass  # removed concurrently: already gone is fine
        return stale
