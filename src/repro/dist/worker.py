"""Sweep worker: claim pending points from a shared store, publish results.

:func:`run_worker` is the execution loop behind ``python -m repro worker``.
N workers pointed at the same :class:`~repro.dist.store.SharedStore` and
the same sweep cooperate through the store alone:

* each pending point is executed by exactly one worker -- ``claim`` grants
  a ttl-bounded lease, publish is atomic, and a point whose result already
  exists is skipped (``claim`` reports ``"done"``);
* while a point executes, a background heartbeat renews the lease at the
  ttl's half-way mark, so the ttl no longer has to exceed the slowest
  single point -- a live worker keeps its claim for as long as the point
  takes, while a *dead* worker's lease still expires within one ttl;
* a worker killed mid-point loses nothing but its lease: once the ttl
  lapses, any surviving (or restarted) worker claims the point again and
  re-executes it.  A point that *raises* releases its lease for siblings to
  retry and records a failure tombstone in the store
  (``python -m repro cache prune --gc`` collects them);
* composite experiments (``consumes=`` declarations) resolve their upstream
  stages through the same store before the claiming loop starts, so
  cooperating workers share upstream results exactly like downstream ones
  and the claim keys chain through the upstream content hashes;
* progress streams through the same ``on_result`` /
  :class:`~repro.api.engine.SweepPoint` path the engine's ``iter_sweep``
  uses, so the CLI progress renderer works unchanged.

Workers claim in sweep order but *complete* in completion order -- a worker
that finds every remaining point leased waits (``wait=True``) for the other
workers to publish or for their leases to expire, so a worker that outlives
its siblings still drives the sweep to completion.  With ``wait=False`` it
exits as soon as nothing is claimable, leaving leased points to their
owners.

Static sharding (:class:`~repro.dist.shards.ShardPlan`) composes with the
claiming loop: a worker given ``shard=`` only ever looks at its own slice,
which removes all lock contention between machines at the price of static
balance.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.api.engine import Engine, StageParams, SweepPoint, cache_key, upstream_meta
from repro.api.experiment import Experiment, get_experiment
from repro.api.results import ResultSet
from repro.api.sweep import SweepSpec
from repro.dist.backoff import Backoff
from repro.dist.shards import ShardPlan
from repro.dist.store import (
    CLAIM_ACQUIRED,
    CLAIM_BUSY,
    CLAIM_DONE,
    CLAIM_SKIPPED,
    DEFAULT_LEASE_TTL,
    ResultStore,
    default_worker_id,
)
from repro.obs import metrics
from repro.obs.metrics import metrics_snapshot
from repro.obs.trace import trace_span


class LeaseHeartbeat:
    """Background renewal of claim leases while their points execute.

    Entered around one point's execution (or one *batch* of points --
    ``path`` may be a list): a daemon thread calls ``store.renew`` every
    ``ttl / 2`` seconds, so the leases never expire under a live worker no
    matter how slow the work is, while a killed worker's leases still lapse
    within one ttl.  If a renewal reports a lease lost (published, pruned,
    or taken over), that path drops out of the heartbeat -- the eventual
    publish is atomic and content-addressed, so the worst case is
    duplicated work, never a corrupt store.
    """

    def __init__(
        self,
        store: ResultStore,
        path: "str | list[str]",
        worker_id: str,
        ttl: float,
    ):
        self.store = store
        self.paths = [path] if isinstance(path, str) else list(path)
        self.worker_id = worker_id
        self.ttl = ttl
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    @property
    def path(self) -> str:
        """The single guarded path (for the one-point entry the loop uses)."""
        return self.paths[0]

    def _beat(self) -> None:
        live = list(self.paths)
        while live and not self._stop.wait(self.ttl / 2.0):
            live = [
                entry
                for entry in live
                if self.store.renew(entry, self.worker_id, self.ttl)
            ]
            metrics.counter("repro_lease_renewals_total").inc(len(live))

    def __enter__(self) -> "LeaseHeartbeat":
        self._thread = threading.Thread(target=self._beat, daemon=True)
        self._thread.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._stop.set()
        self._thread.join()


@dataclass(frozen=True)
class WorkerReport:
    """What one worker did with its slice of a sweep.

    All point lists hold indices into ``spec.points()`` order.  ``executed``
    are the points this worker claimed, ran and published; ``already_done``
    were found published (by anyone, including earlier runs);
    ``failed`` raised in this worker (their leases were released so other
    workers may retry); ``abandoned`` were left leased to other workers when
    the worker gave up waiting (only non-empty with ``wait=False`` or an
    exhausted ``max_wait``).

    ``claim_round_trips`` counts the ``claim_many`` calls the loop made and
    ``store_round_trips`` every coordination/IO call against the store from
    the main loop (claims, loads, publishes, releases, tombstones --
    heartbeat renewals run on their own thread and are not counted).  These
    are the dispatch-overhead budget: for an uncontended sweep of N points
    the loop stays within a handful of claim round trips total plus one
    load-or-publish per point, rather than N claims.

    ``metrics`` carries a :func:`repro.obs.metrics.metrics_snapshot` of this
    process taken at loop exit (counters such as claim outcomes, cache
    events and solver totals) so a supervisor can aggregate worker activity
    without scraping each process.
    """

    worker_id: str
    n_points: int
    executed: list[int] = field(default_factory=list)
    already_done: list[int] = field(default_factory=list)
    failed: list[int] = field(default_factory=list)
    abandoned: list[int] = field(default_factory=list)
    wall_time_s: float = 0.0
    claim_round_trips: int = 0
    store_round_trips: int = 0
    metrics: dict[str, Any] | None = None

    @property
    def ok(self) -> bool:
        """Whether every point this worker *attempted* succeeded.

        Abandoned points were never attempted -- they stay leased to their
        (live) owners, which is the normal hand-off of ``wait=False`` -- so
        only actual failures count.
        """
        return not self.failed

    def summary(self) -> str:
        """One-line human summary (what the CLI prints at exit)."""
        return (
            f"worker {self.worker_id}: {self.n_points} points -- "
            f"{len(self.executed)} executed, {len(self.already_done)} already done, "
            f"{len(self.failed)} failed, {len(self.abandoned)} abandoned "
            f"({self.wall_time_s:.3f} s, {self.claim_round_trips} claim / "
            f"{self.store_round_trips} store round trips)"
        )


def run_worker(
    name: str | Experiment,
    spec: SweepSpec,
    store: ResultStore,
    base_params: Mapping[str, Any] | None = None,
    worker_id: str | None = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    shard: ShardPlan | None = None,
    on_result: Callable[[SweepPoint], None] | None = None,
    wait: bool = True,
    poll_interval: float = 0.2,
    max_wait: float | None = None,
    stage_params: StageParams | None = None,
    claim_batch: int | None = None,
) -> WorkerReport:
    """Attach to a store and drive a sweep's pending points to completion.

    Parameters
    ----------
    name:
        Registered experiment name (or an :class:`Experiment` instance).
    spec:
        The sweep every cooperating worker must agree on (the store carries
        results, not the work list).
    store:
        Where results live; a :class:`~repro.dist.store.SharedStore` for
        multi-worker runs, any :class:`~repro.dist.store.ResultStore` when
        a single worker just wants the streaming loop.
    base_params:
        Fixed parameters under the sweep overrides (as in ``Engine.sweep``).
    worker_id:
        Identity used for leases; defaults to ``<hostname>-<pid>``.
    lease_ttl:
        Seconds a claimed point stays reserved between heartbeats.  A live
        worker renews its lease at the ttl's half-way mark, so the ttl only
        bounds how long a *crashed* worker's point stays blocked -- it does
        not have to exceed the slowest single point.
    shard:
        Optional static slice; the worker then ignores points owned by other
        shards entirely.
    on_result:
        Per-point callback, same contract as ``Engine.sweep(on_result=...)``
        (already-done points arrive with ``cache_hit=True``).
    wait:
        Keep polling while other workers hold leases (default).  ``False``
        exits once nothing is claimable.
    poll_interval:
        Initial sleep between passes when no point was claimable.  Idle
        passes back off geometrically (jittered, capped) from there and
        snap back to ``poll_interval`` on progress, so many waiting
        workers do not poll the store lock in lockstep.
    max_wait:
        Upper bound in seconds on waiting for other workers (``None``:
        unbounded).  On expiry the still-leased points are ``abandoned``.
    stage_params:
        Per-experiment parameter overrides for upstream pipeline stages of a
        composite experiment (a study's ``params``); every cooperating
        worker must agree on them, like on ``spec``.
    claim_batch:
        How many leases to request per ``claim_many`` round trip.  The
        default (``None``) adapts: each pass asks for half the remaining
        points (at least one), so a lone worker drains a sweep in O(log N)
        claim round trips while cooperating workers still interleave
        instead of one worker fencing off the whole sweep up front.  Points
        past the batch come back :data:`~repro.dist.store.CLAIM_SKIPPED`
        and are simply re-claimed on the next pass (even with
        ``wait=False`` -- skipped is this worker's own deferral, not
        another worker's lease).
    """
    experiment = name if isinstance(name, Experiment) else get_experiment(name)
    worker = worker_id if worker_id is not None else default_worker_id()
    points = spec.points()
    indices = list(range(len(points))) if shard is None else shard.indices(points)
    resolved = {
        index: experiment.resolve_params({**(base_params or {}), **points[index]})
        for index in indices
    }

    executed: list[int] = []
    already_done: list[int] = []
    failed: list[int] = []
    start = time.perf_counter()

    def emit(point_index: int, **kwargs: Any) -> None:
        if on_result is not None:
            on_result(
                SweepPoint(
                    index=point_index,
                    point=points[point_index],
                    params=resolved[point_index],
                    **kwargs,
                )
            )

    # Upstream pipeline stages resolve through the same store, so N workers
    # share upstream results exactly like downstream ones (first publisher
    # wins; a concurrent compute wastes work but cannot corrupt anything),
    # and the entry keys chain through the upstream content hashes -- the
    # same stage-aware keys a serial Engine run would use, which is what
    # makes a worker-merged pipeline run bit-identical to a serial one.
    upstream_engine = Engine(store=store)
    memo: dict[str, Any] = {}
    inputs_by_index: dict[int, dict[str, ResultSet]] = {}
    paths: dict[int, str] = {}
    for index in indices:
        try:
            inputs, upstream_hashes = upstream_engine.resolve_inputs(
                experiment, resolved[index], stage_params, memo=memo
            )
        except Exception as error:
            failed.append(index)
            emit(
                index,
                result=None,
                error=f"upstream: {type(error).__name__}: {error}",
            )
            continue
        inputs_by_index[index] = inputs
        paths[index] = store.entry_path(
            experiment.name,
            cache_key(
                experiment.name, experiment.version, resolved[index], upstream_hashes
            ),
        )

    remaining = [index for index in indices if index in paths]
    deadline = None if max_wait is None else time.monotonic() + max_wait
    # Idle passes back off geometrically with jitter instead of sleeping a
    # fixed beat: N waiting workers polling one store in sync serialise on
    # the store lock, and jitter decorrelates them.  Any progress (a claim,
    # a publish observed) snaps the delay back to poll_interval.
    backoff = Backoff(initial=poll_interval, maximum=max(poll_interval * 16, 2.0))

    claim_round_trips = 0
    store_round_trips = 0

    def build_meta(index: int, wall_time_s: float) -> dict[str, Any]:
        meta: dict[str, Any] = {
            "experiment": experiment.name,
            "version": experiment.version,
            "params": dict(resolved[index]),
            "executor": "worker",
            "worker_id": worker,
            "wall_time_s": wall_time_s,
        }
        if inputs_by_index[index]:
            meta["upstream"] = upstream_meta(
                experiment,
                {
                    inject: upstream_result.content_hash
                    for inject, upstream_result in inputs_by_index[index].items()
                },
            )
        return meta

    while remaining:
        progressed = False
        busy: list[int] = []
        skipped: list[int] = []
        acquired: list[int] = []
        batch = (
            claim_batch
            if claim_batch is not None
            else max(1, (len(remaining) + 1) // 2)
        )
        statuses = store.claim_many(
            [paths[index] for index in remaining],
            worker,
            lease_ttl,
            max_acquire=batch,
        )
        claim_round_trips += 1
        store_round_trips += 1
        for status in set(statuses):
            metrics.counter("repro_claim_outcomes_total", status=status).inc(
                statuses.count(status)
            )
        for index, status in zip(remaining, statuses):
            if status == CLAIM_BUSY:
                busy.append(index)
                continue
            if status == CLAIM_SKIPPED:
                skipped.append(index)
                continue
            if status == CLAIM_DONE:
                result = store.load(paths[index])
                store_round_trips += 1
                if result is None:
                    # The entry vanished between claim and load (concurrent
                    # `cache clear`/`prune` on the live store): the point is
                    # pending again, so retry it on a later pass instead of
                    # mis-counting it done.
                    busy.append(index)
                    continue
                progressed = True
                already_done.append(index)
                result.meta["cache_hit"] = True
                emit(index, result=result, cache_hit=True)
                continue
            assert status == CLAIM_ACQUIRED
            acquired.append(index)

        # Acquired points whose experiment declares a batch_fn (and which
        # have no upstream inputs -- batch_fn is a self-contained contract)
        # run as ONE stacked evaluation; the rest run point by point.  A
        # batch failure falls back to the per-point path so one poisoned
        # point cannot take its whole batch down with it.
        serial = list(acquired)
        batchable = (
            [index for index in acquired if not inputs_by_index[index]]
            if experiment.batch_fn is not None
            else []
        )
        if len(batchable) > 1:
            batch_start = time.perf_counter()
            try:
                # One heartbeat renews every lease in the batch while it runs.
                with LeaseHeartbeat(
                    store, [paths[index] for index in batchable], worker, lease_ttl
                ), trace_span(
                    "worker.batch",
                    experiment=experiment.name,
                    worker=worker,
                    n_points=len(batchable),
                ):
                    records_list = experiment.run_batch(
                        [resolved[index] for index in batchable]
                    )
            except Exception:
                records_list = None  # fall through to the per-point path
            if records_list is not None:
                progressed = True
                per_point_wall = (time.perf_counter() - batch_start) / len(batchable)
                batched = set(batchable)
                serial = [index for index in serial if index not in batched]
                for index, records in zip(batchable, records_list):
                    result = ResultSet.from_records(
                        records, meta=build_meta(index, per_point_wall)
                    )
                    store.publish(paths[index], result)
                    store_round_trips += 1
                    executed.append(index)
                    emit(index, result=result)

        for index in serial:
            progressed = True
            point_start = time.perf_counter()
            try:
                # The heartbeat renews the lease while the point runs, so a
                # slower-than-ttl point is not re-claimed by a sibling.
                with LeaseHeartbeat(
                    store, paths[index], worker, lease_ttl
                ), trace_span(
                    "worker.point",
                    experiment=experiment.name,
                    worker=worker,
                    index=index,
                ):
                    records = experiment.run_with_inputs(
                        inputs_by_index[index], resolved[index]
                    )
            except Exception as error:
                # Release so siblings may retry; this worker will not.  The
                # tombstone keeps the failure inspectable after every worker
                # exited (`cache prune --gc` collects it).
                message = f"{type(error).__name__}: {error}"
                store.release(paths[index], worker)
                store.record_failure(paths[index], worker, message)
                store_round_trips += 2
                failed.append(index)
                emit(index, result=None, error=message)
                continue
            result = ResultSet.from_records(
                records, meta=build_meta(index, time.perf_counter() - point_start)
            )
            store.publish(paths[index], result)
            store_round_trips += 1
            executed.append(index)
            emit(index, result=result)

        remaining = sorted(busy + skipped)
        if not remaining:
            break
        if skipped:
            # Skipped points are this worker's own claim_batch deferral, not
            # another worker's lease: go claim them immediately (even with
            # wait=False), no backoff.
            backoff.reset()
            continue
        if not wait or (deadline is not None and time.monotonic() >= deadline):
            break
        if progressed:
            backoff.reset()
        else:
            time.sleep(backoff.next_delay())

    return WorkerReport(
        worker_id=worker,
        n_points=len(indices),
        executed=executed,
        already_done=already_done,
        failed=failed,
        abandoned=remaining,
        wall_time_s=time.perf_counter() - start,
        claim_round_trips=claim_round_trips,
        store_round_trips=store_round_trips,
        metrics=metrics_snapshot(),
    )
