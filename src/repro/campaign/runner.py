"""The closed-loop campaign runner: propose -> execute -> ingest -> repeat.

A :class:`Campaign` drives a :class:`~repro.campaign.strategies.Strategy`
over a finite candidate pool (a grid/zip/points
:class:`~repro.api.sweep.SweepSpec`), executing each proposed batch through
the standard engine machinery:

* every batch becomes a ``mode="points"`` SweepSpec, so batch execution IS
  ``Engine.sweep`` -- caching, provenance tagging, tracing and failure
  semantics are exactly those of a declared sweep;
* the engine's store makes re-proposed or replayed points free (a rerun of
  a finished campaign with the same seed executes **zero** new points and
  reproduces the same content hashes);
* with ``workers > 1`` each batch is partitioned by
  :class:`~repro.dist.shards.ShardPlan` and executed by cooperating
  lease-claiming workers against the shared store, then reassembled from
  cache -- bit-identical to the serial batch.

The campaign checkpoints its full decision state (strategy rng state,
visited points, round counter, history content-hash, pending batch) to a
JSON file before and after every batch, so a killed campaign resumes
*exactly*: the interrupted batch re-runs from cache and the strategy's rng
continues from the captured state, producing the same proposal sequence the
uninterrupted campaign would have.

Stopping rules (all optional, first to fire wins):

``budget``     hard cap on visited points (defaults to the pool size);
``target``     stop once the objective meets a declared value;
``patience``   stop after N rounds without improvement beyond ``tolerance``;
``exhausted``  the pool ran out (always on).

Observability: each round runs under a ``campaign.round`` span with a
nested ``campaign.propose`` span, and the counters
``repro_campaign_points_proposed_total`` /
``repro_campaign_points_ingested_total`` /
``repro_campaign_rounds_total`` (labelled by experiment and strategy)
feed the standard :mod:`repro.obs.metrics` registry.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any, Mapping

from repro.api.engine import Engine
from repro.api.results import ResultSet
from repro.api.sweep import SweepSpec
from repro.campaign.report import CampaignReport
from repro.campaign.strategies import Strategy, make_strategy
from repro.obs import metrics
from repro.obs.trace import trace_span

__all__ = ["Campaign", "CampaignError", "CHECKPOINT_VERSION"]

CHECKPOINT_VERSION = 1


class CampaignError(ValueError):
    """A campaign-level failure (bad config, checkpoint mismatch, ...).

    A :class:`ValueError` subclass so CLI error mapping treats it as a
    user-input rejection (exit code 2)."""


class Campaign:
    """One adaptive optimisation campaign over an experiment's pool.

    Parameters mirror the CLI (``repro campaign run``):

    experiment:
        Registered experiment name to optimise.
    space:
        The candidate pool as a :class:`SweepSpec` (its expansion is the
        set of points the strategy may propose).
    objective:
        Output column the campaign extremises.
    mode:
        ``"min"`` or ``"max"``.
    strategy:
        A :class:`Strategy` instance, or a registered strategy name
        (``random``, ``lhs``, ``refine``, ``surrogate``); names are
        instantiated with this campaign's space/objective/mode/seed.
    batch_size / budget:
        Points per round, and the hard cap on visited points (default:
        the whole pool).
    seed:
        Seeds the strategy rng; same seed => same proposal sequence.
    target / patience / tolerance:
        Optional stopping rules (see module docstring).
    checkpoint_path:
        JSON file for resumable state; if it exists the campaign resumes
        from it (and raises :class:`CampaignError` if it belongs to a
        different campaign configuration).
    workers:
        Batch-level parallelism; ``> 1`` requires a store-backed engine
        (shared directory or sqlite) and partitions each batch by
        :class:`~repro.dist.shards.ShardPlan`.
    engine / store / cache_dir:
        Pass a configured :class:`Engine`, or let the campaign build one
        over ``store``/``cache_dir``.
    """

    def __init__(
        self,
        experiment: str,
        space: SweepSpec,
        objective: str,
        *,
        mode: str = "min",
        strategy: "Strategy | str" = "surrogate",
        batch_size: int = 8,
        budget: int | None = None,
        seed: int = 0,
        base_params: Mapping[str, Any] | None = None,
        stage_params: Mapping[str, Mapping[str, Any]] | None = None,
        target: float | None = None,
        patience: int | None = None,
        tolerance: float = 0.0,
        checkpoint_path: str | None = None,
        workers: int = 1,
        engine: Engine | None = None,
        store: Any = None,
        cache_dir: str | None = None,
    ) -> None:
        if mode not in ("min", "max"):
            raise CampaignError(f"unknown mode {mode!r}; use 'min' or 'max'")
        if batch_size < 1:
            raise CampaignError(f"batch_size must be >= 1, got {batch_size}")
        if workers < 1:
            raise CampaignError(f"workers must be >= 1, got {workers}")
        if patience is not None and patience < 1:
            raise CampaignError(f"patience must be >= 1, got {patience}")
        if tolerance < 0:
            raise CampaignError(f"tolerance must be >= 0, got {tolerance}")

        self.experiment = experiment
        self.space = space
        self.objective = objective
        self.mode = mode
        self.batch_size = batch_size
        self.pool_size = len(space)
        self.budget = self.pool_size if budget is None else budget
        if self.budget < 1:
            raise CampaignError(f"budget must be >= 1, got {self.budget}")
        self.budget = min(self.budget, self.pool_size)
        self.seed = seed
        self.base_params = dict(base_params or {})
        self.stage_params = (
            {k: dict(v) for k, v in stage_params.items()} if stage_params else None
        )
        self.target = target
        self.patience = patience
        self.tolerance = tolerance
        self.checkpoint_path = checkpoint_path
        self.workers = workers

        if engine is None:
            engine = Engine(store=store, cache_dir=cache_dir)
        elif store is not None or cache_dir is not None:
            raise CampaignError("pass either engine or store/cache_dir, not both")
        self.engine = engine
        if workers > 1 and engine.store is None:
            raise CampaignError(
                "workers > 1 needs a store-backed engine (shared directory "
                "or sqlite) so workers can cooperate"
            )

        if isinstance(strategy, str):
            strategy = make_strategy(
                strategy, space, objective, mode=mode, seed=seed
            )
        self.strategy = strategy
        self.strategy_name = getattr(strategy, "name", type(strategy).__name__)

        # Mutable run state (reset/restored by run()).
        self._visited: list[dict[str, Any]] = []
        self._pending: list[dict[str, Any]] | None = None
        self._round = 0
        self._n_executed = 0
        self._trajectory: list[dict[str, Any]] = []
        self._best_value: float | None = None
        self._best_point: dict[str, Any] | None = None
        self._stall_rounds = 0

    # --- config identity (checkpoint validation) --------------------------

    def _config(self) -> dict[str, Any]:
        return {
            "experiment": self.experiment,
            "space": self.space.to_meta(),
            "objective": self.objective,
            "mode": self.mode,
            "strategy": self.strategy_name,
            "batch_size": self.batch_size,
            "budget": self.budget,
            "seed": self.seed,
            "base_params": self.base_params,
            "target": self.target,
            "patience": self.patience,
            "tolerance": self.tolerance,
        }

    # --- checkpointing ----------------------------------------------------

    def _checkpoint(self, phase: str, history: ResultSet | None) -> None:
        if self.checkpoint_path is None:
            return
        state = self.strategy.rng.getstate()
        document = {
            "version": CHECKPOINT_VERSION,
            "config": self._config(),
            "phase": phase,
            "round": self._round,
            "rng_state": [state[0], list(state[1]), state[2]],
            "visited": [dict(p) for p in self._visited],
            "pending": (
                None if self._pending is None else [dict(p) for p in self._pending]
            ),
            "history_hash": None if history is None else history.content_hash,
            "n_executed": self._n_executed,
            "best": (
                None
                if self._best_value is None
                else {"point": self._best_point, "value": self._best_value}
            ),
            "stall_rounds": self._stall_rounds,
            "trajectory": list(self._trajectory),
        }
        tmp = f"{self.checkpoint_path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, self.checkpoint_path)

    def _load_checkpoint(self) -> dict[str, Any] | None:
        if self.checkpoint_path is None or not os.path.exists(self.checkpoint_path):
            return None
        with open(self.checkpoint_path, encoding="utf-8") as handle:
            try:
                document = json.load(handle)
            except ValueError as error:
                raise CampaignError(
                    f"checkpoint {self.checkpoint_path!r} is not valid JSON: "
                    f"{error}"
                )
        if document.get("version") != CHECKPOINT_VERSION:
            raise CampaignError(
                f"checkpoint {self.checkpoint_path!r} has version "
                f"{document.get('version')!r}; this runner writes "
                f"{CHECKPOINT_VERSION}"
            )
        theirs = json.dumps(document.get("config"), sort_keys=True, default=str)
        ours = json.dumps(self._config(), sort_keys=True, default=str)
        if theirs != ours:
            raise CampaignError(
                f"checkpoint {self.checkpoint_path!r} belongs to a different "
                "campaign configuration; delete it or match the original "
                "arguments"
            )
        return document

    def _restore(self, document: Mapping[str, Any]) -> None:
        state = document["rng_state"]
        self.strategy.rng.setstate((state[0], tuple(state[1]), state[2]))
        self._visited = [dict(p) for p in document["visited"]]
        pending = document.get("pending")
        # An "ingested" checkpoint carries no live batch even if the field
        # survived; only a "proposed" phase leaves work to re-run.
        self._pending = (
            [dict(p) for p in pending]
            if pending and document.get("phase") == "proposed"
            else None
        )
        self._round = int(document["round"])
        self._n_executed = int(document.get("n_executed", 0))
        self._stall_rounds = int(document.get("stall_rounds", 0))
        self._trajectory = [dict(t) for t in document.get("trajectory", [])]
        best = document.get("best")
        if best:
            self._best_value = best["value"]
            self._best_point = best["point"]

    # --- execution --------------------------------------------------------

    def _execute_batch(self, batch: list[dict[str, Any]]) -> int:
        """Run one proposed batch through the engine; returns newly-executed
        point count (cache hits cost nothing and count nothing)."""
        spec = SweepSpec.from_points(batch)
        fresh = 0

        def count(sweep_point: Any) -> None:
            nonlocal fresh
            if not sweep_point.cache_hit:
                fresh += 1

        if self.workers <= 1:
            self.engine.sweep(
                self.experiment,
                spec,
                base_params=self.base_params,
                on_result=count,
                stage_params=self.stage_params,
            )
            return fresh

        # Partition the batch across cooperating workers over the shared
        # store, then reassemble from cache (0 extra executions).
        from repro.dist.shards import ShardPlan
        from repro.dist.worker import run_worker

        reports: list[Any] = [None] * self.workers
        errors: list[BaseException] = []

        def drive(index: int) -> None:
            try:
                reports[index] = run_worker(
                    self.experiment,
                    spec,
                    self.engine.store,
                    base_params=self.base_params,
                    worker_id=f"campaign-w{index}",
                    shard=ShardPlan(self.workers, index),
                    stage_params=self.stage_params,
                )
            except BaseException as error:  # surfaced below
                errors.append(error)

        threads = [
            threading.Thread(target=drive, args=(i,), daemon=True)
            for i in range(self.workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        fresh = sum(len(r.executed) for r in reports if r is not None)
        failed = [i for r in reports if r is not None for i in r.failed]
        if failed:
            raise CampaignError(
                f"batch points {sorted(failed)} failed across workers"
            )
        # Materialise the batch ResultSet (cache-only now) so the records
        # exist even when every worker found its slice already published.
        self.engine.sweep(
            self.experiment,
            spec,
            base_params=self.base_params,
            stage_params=self.stage_params,
        )
        return fresh

    def _assemble(self) -> ResultSet:
        """The full history over every visited point, in visit order.

        Always served from the store (the batches just ran), so this is a
        cheap cache replay that yields the exact ResultSet a serial
        points-sweep over the visited sequence would produce.
        """
        spec = SweepSpec.from_points(self._visited)
        return self.engine.sweep(
            self.experiment,
            spec,
            base_params=self.base_params,
            stage_params=self.stage_params,
        )

    # --- bookkeeping ------------------------------------------------------

    def _ingest(self, history: ResultSet) -> None:
        """Update incumbent/trajectory/stall counters from a fresh history."""
        if self.objective not in history.columns:
            raise CampaignError(
                f"objective column {self.objective!r} is not in "
                f"{self.experiment!r} output; available: {history.columns}"
            )
        record = history.best(self.objective, mode=self.mode)
        value = float(record[self.objective])
        improved = self._best_value is None or (
            value < self._best_value - self.tolerance
            if self.mode == "min"
            else value > self._best_value + self.tolerance
        )
        if improved:
            self._best_value = value
            self._best_point = self._point_of(record)
            self._stall_rounds = 0
        else:
            self._stall_rounds += 1
        self._trajectory.append(
            {
                "round": self._round,
                "n_visited": len(self._visited),
                "n_executed": self._n_executed,
                "best_value": self._best_value,
                "best_point": self._best_point,
            }
        )

    def _point_of(self, record: Mapping[str, Any]) -> dict[str, Any]:
        """Recover the sweep-point dict from a tagged record (the engine
        stores a colliding axis under ``param_<axis>``)."""
        point: dict[str, Any] = {}
        for name in self.space.axis_names:
            prefixed = f"param_{name}"
            point[name] = record[prefixed] if prefixed in record else record.get(name)
        return point

    def _met_target(self) -> bool:
        if self.target is None or self._best_value is None:
            return False
        if self.mode == "min":
            return self._best_value <= self.target
        return self._best_value >= self.target

    def _stop_reason(self, pool_empty: bool) -> str | None:
        if self._met_target():
            return "target"
        if len(self._visited) >= self.budget:
            return "budget"
        if self.patience is not None and self._stall_rounds >= self.patience:
            return "stalled"
        if pool_empty:
            return "exhausted"
        return None

    # --- the loop ---------------------------------------------------------

    def run(self, on_round: Any = None) -> CampaignReport:
        """Drive the campaign to a stopping rule; returns the report.

        Safe to call on a fresh runner pointing at an existing checkpoint:
        state restores exactly and the interrupted batch (if any) replays
        from the store.  ``on_round(n_visited, budget)`` fires after each
        ingest (the service daemon maps it onto job progress).
        """
        document = self._load_checkpoint()
        history: ResultSet | None = None
        if document is not None:
            self._restore(document)
            if self._visited:
                history = self._assemble()
                expected = document.get("history_hash")
                if expected is not None and history.content_hash != expected:
                    raise CampaignError(
                        "checkpoint history hash does not match the "
                        "reassembled results; the store diverged from the "
                        "campaign that wrote the checkpoint"
                    )
        if history is None:
            history = ResultSet.from_records([])

        labels = {"experiment": self.experiment, "strategy": self.strategy_name}
        stop_reason: str | None = self._stop_reason(pool_empty=False)

        while stop_reason is None:
            with trace_span(
                "campaign.round",
                experiment=self.experiment,
                strategy=self.strategy_name,
                round=self._round,
                n_visited=len(self._visited),
            ) as round_span:
                if self._pending is None:
                    room = self.budget - len(self._visited)
                    with trace_span(
                        "campaign.propose", strategy=self.strategy_name
                    ) as span:
                        batch = self.strategy.propose(
                            history, min(self.batch_size, room)
                        )
                        span.set("n_proposed", len(batch))
                    if not batch:
                        stop_reason = self._stop_reason(pool_empty=True)
                        break
                    metrics.counter(
                        "repro_campaign_points_proposed_total", **labels
                    ).inc(len(batch))
                    self._pending = batch
                    self._checkpoint("proposed", history)

                self._n_executed += self._execute_batch(self._pending)
                self._visited.extend(self._pending)
                n_batch = len(self._pending)
                self._pending = None
                self._round += 1
                history = self._assemble()
                self._ingest(history)
                metrics.counter(
                    "repro_campaign_points_ingested_total", **labels
                ).inc(n_batch)
                metrics.counter("repro_campaign_rounds_total", **labels).inc()
                round_span.set("best_value", self._best_value)
                self._checkpoint("ingested", history)
                if on_round is not None:
                    on_round(len(self._visited), self.budget)
                stop_reason = self._stop_reason(pool_empty=False)

        if stop_reason is None:  # pool drained via empty proposal
            stop_reason = "exhausted"

        report = CampaignReport(
            experiment=self.experiment,
            objective=self.objective,
            mode=self.mode,
            strategy=self.strategy_name,
            seed=self.seed,
            batch_size=self.batch_size,
            budget=self.budget,
            pool_size=self.pool_size,
            rounds=self._round,
            n_visited=len(self._visited),
            n_executed=self._n_executed,
            stop_reason=stop_reason,
            best_point=self._best_point,
            best_value=self._best_value,
            trajectory=list(self._trajectory),
            result=history if len(history) else None,
        )
        if report.result is not None:
            report.result.meta["campaign"] = report.to_dict()
        return report
