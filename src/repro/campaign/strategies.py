"""Proposal strategies for adaptive sweep campaigns.

A strategy turns *results so far* into *what to run next*.  Every strategy
here searches over a finite **candidate pool** -- the expansion of the
campaign's search-space :class:`~repro.api.sweep.SweepSpec` -- and proposes
only unvisited pool points.  Searching a declared pool (rather than a
continuous box) keeps the whole campaign machinery exact: proposed points
are grid points, so cache keys, shard assignment and content hashes match a
plain grid sweep of the same space, and "points saved vs the full grid" is
a well-defined number.

The contract is a single method::

    propose(history: ResultSet, batch_size: int) -> list[dict]

where ``history`` holds every record produced so far (the campaign runner
assembles it) and the return value is a list of at most ``batch_size``
parameter-override dicts drawn from the unvisited pool.  An empty list
means the pool is exhausted.

All strategies are seeded: two strategies constructed with the same
arguments propose identical sequences for identical histories, which is
what makes campaigns resumable and replayable.

Strategies:

``RandomStrategy``
    Uniform random draws from the unvisited pool.  The honest baseline.
``LatinHypercubeStrategy``
    Stratified draws: the unvisited pool (in spec order) is cut into
    ``batch_size`` equal strata and one point is drawn per stratum, so a
    batch spreads over the space instead of clumping.
``RefineStrategy``
    Greedy zoom: proposes the unvisited points closest (in normalised
    feature space) to the best point seen so far -- the programmatic
    version of the coarse-sweep-then-``SweepSpec.refine`` workflow.
``SurrogateStrategy``
    Gaussian-process surrogate (RBF kernel) fit over the visited points,
    expected-improvement acquisition over the unvisited pool, plus an
    exploration jitter that replaces a random fraction of each batch with
    stratified draws so the surrogate cannot tunnel-vision.
"""

from __future__ import annotations

import math
import random
from typing import Any, Mapping, Sequence

from repro.api.results import ResultSet
from repro.api.sweep import SweepSpec
from repro.dist.shards import _record_point_key, point_key

__all__ = [
    "Strategy",
    "RandomStrategy",
    "LatinHypercubeStrategy",
    "RefineStrategy",
    "SurrogateStrategy",
    "STRATEGIES",
    "make_strategy",
    "point_objectives",
]


def _is_bad(value: Any) -> bool:
    return value is None or (isinstance(value, float) and math.isnan(value))


def point_objectives(
    history: ResultSet,
    axis_names: Sequence[str],
    objective: str,
    mode: str = "min",
) -> dict[str, float]:
    """Aggregate a history into one objective value per visited point.

    Keyed by :func:`repro.dist.shards.point_key` identity.  A point whose
    experiment emits several records (``growth_window`` emits one per
    temperature) is scored by its *extremal* record in the campaign's
    direction -- for corner hunting that is exactly "the worst case at this
    point".  Records with a missing/NaN objective are skipped.
    """
    if mode not in ("min", "max"):
        raise ValueError(f"unknown mode {mode!r}; use 'min' or 'max'")
    scores: dict[str, float] = {}
    for record in history.to_records():
        value = record.get(objective)
        if _is_bad(value):
            continue
        value = float(value)
        key = _record_point_key(record, axis_names)
        if key not in scores:
            scores[key] = value
        elif mode == "min":
            scores[key] = min(scores[key], value)
        else:
            scores[key] = max(scores[key], value)
    return scores


def _axis_domains(space: SweepSpec) -> dict[str, list[Any]]:
    """Distinct values per axis, in declaration order.

    For grid/zip specs these are the declared axes; for an explicit points
    spec the domains are collected from the points in first-seen order.
    """
    if space.mode == "points":
        domains: dict[str, list[Any]] = {name: [] for name in space.axis_names}
        for point in space.points():
            for name, value in point.items():
                if all(point_key({"v": value}) != point_key({"v": seen})
                       for seen in domains[name]):
                    domains[name].append(value)
        return domains
    return {name: list(values) for name, values in space.axes.items()}


def _scalar(value: Any) -> Any:
    """Unwrap singleton lists/tuples (e.g. ``temperatures_c=(t,)`` axes)."""
    if isinstance(value, (list, tuple)) and len(value) == 1:
        return _scalar(value[0])
    return value


def _encode_axis(value: Any, domain: list[Any]) -> float:
    """One axis value as a float in [0, 1] (min-max for numeric domains,
    declaration-order index otherwise)."""
    scalars = [_scalar(v) for v in domain]
    cell = _scalar(value)
    numeric = all(
        isinstance(s, (int, float)) and not isinstance(s, bool) for s in scalars
    )
    if numeric and isinstance(cell, (int, float)) and not isinstance(cell, bool):
        lo, hi = min(scalars), max(scalars)
        if hi == lo:
            return 0.0
        return (float(cell) - lo) / (hi - lo)
    # Categorical: position in the declared value list.
    target = point_key({"v": value})
    for index, candidate in enumerate(domain):
        if point_key({"v": candidate}) == target:
            return index / max(len(domain) - 1, 1)
    return 0.0


class Strategy:
    """Base class: candidate-pool bookkeeping shared by every strategy.

    Subclasses implement :meth:`_select` over the *unvisited* pool; the
    base class handles visited-point identity, batch clamping and the
    seeded rng.  ``rng`` state is what campaign checkpoints capture, so a
    subclass must draw all its randomness from ``self.rng``.
    """

    name = "strategy"

    def __init__(
        self,
        space: SweepSpec,
        objective: str,
        mode: str = "min",
        seed: int = 0,
    ) -> None:
        if mode not in ("min", "max"):
            raise ValueError(f"unknown mode {mode!r}; use 'min' or 'max'")
        self.space = space
        self.objective = objective
        self.mode = mode
        self.seed = seed
        self.rng = random.Random(seed)
        self.pool = space.points()
        self._domains = _axis_domains(space)

    # --- pool bookkeeping -------------------------------------------------

    def unvisited(self, history: ResultSet) -> list[dict[str, Any]]:
        """Pool points not yet present in the history, in spec order."""
        seen = {
            _record_point_key(record, self.space.axis_names)
            for record in history.to_records()
        }
        return [p for p in self.pool if point_key(p) not in seen]

    def propose(self, history: ResultSet, batch_size: int) -> list[dict[str, Any]]:
        """At most ``batch_size`` unvisited points to run next ([] = done)."""
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        remaining = self.unvisited(history)
        if not remaining:
            return []
        batch = min(batch_size, len(remaining))
        chosen = self._select(remaining, history, batch)
        if len(chosen) != batch:
            raise RuntimeError(
                f"{type(self).__name__} selected {len(chosen)} points, "
                f"expected {batch}"
            )
        return [dict(point) for point in chosen]

    def _select(
        self,
        remaining: list[dict[str, Any]],
        history: ResultSet,
        batch: int,
    ) -> list[dict[str, Any]]:
        raise NotImplementedError

    # --- shared helpers ---------------------------------------------------

    def encode(self, point: Mapping[str, Any]) -> list[float]:
        """A point's normalised feature vector (one float per axis)."""
        return [
            _encode_axis(point[name], self._domains[name])
            for name in self.space.axis_names
        ]

    def scores(self, history: ResultSet) -> dict[str, float]:
        """Per-point objective values of the history (see point_objectives)."""
        return point_objectives(
            history, self.space.axis_names, self.objective, self.mode
        )

    def _stratified(
        self, remaining: list[dict[str, Any]], batch: int
    ) -> list[dict[str, Any]]:
        """One seeded draw per contiguous stratum of the remaining pool."""
        chosen: list[dict[str, Any]] = []
        n = len(remaining)
        for stratum in range(batch):
            lo = stratum * n // batch
            hi = max((stratum + 1) * n // batch, lo + 1)
            chosen.append(remaining[self.rng.randrange(lo, min(hi, n))])
        return chosen


class RandomStrategy(Strategy):
    """Uniform random draws from the unvisited pool."""

    name = "random"

    def _select(
        self,
        remaining: list[dict[str, Any]],
        history: ResultSet,
        batch: int,
    ) -> list[dict[str, Any]]:
        return self.rng.sample(remaining, batch)


class LatinHypercubeStrategy(Strategy):
    """Stratified sampling: spread each batch across the pool.

    The unvisited pool keeps its spec order (the grid's row-major layout),
    so contiguous strata correspond to contiguous regions of the slowest
    axes; one seeded draw per stratum covers the space far more evenly
    than ``batch_size`` independent uniform draws.
    """

    name = "lhs"

    def _select(
        self,
        remaining: list[dict[str, Any]],
        history: ResultSet,
        batch: int,
    ) -> list[dict[str, Any]]:
        return self._stratified(remaining, batch)


class RefineStrategy(Strategy):
    """Greedy zoom towards the incumbent best point.

    With history: rank unvisited points by Euclidean distance (normalised
    feature space) to the best visited point and take the nearest ones --
    the adaptive analogue of ``SweepSpec.refine`` around a promising value.
    Without history (round 0) it falls back to a stratified draw.
    """

    name = "refine"

    def _select(
        self,
        remaining: list[dict[str, Any]],
        history: ResultSet,
        batch: int,
    ) -> list[dict[str, Any]]:
        scores = self.scores(history)
        if not scores:
            return self._stratified(remaining, batch)
        pick = min if self.mode == "min" else max
        best_key = pick(scores, key=scores.get)
        best_features = None
        for point in self.pool:
            if point_key(point) == best_key:
                best_features = self.encode(point)
                break
        if best_features is None:  # history from outside the pool
            return self._stratified(remaining, batch)

        def distance(point: Mapping[str, Any]) -> float:
            return math.dist(self.encode(point), best_features)

        ranked = sorted(
            range(len(remaining)), key=lambda i: (distance(remaining[i]), i)
        )
        return [remaining[i] for i in ranked[:batch]]


class SurrogateStrategy(Strategy):
    """Gaussian-process surrogate with expected-improvement acquisition.

    Fits a GP (RBF kernel, per the paper-standard Bayesian-optimisation
    recipe) over the visited points' objective values, scores every
    unvisited pool point by expected improvement over the incumbent, and
    proposes the top scorers.  A fraction ``jitter`` of each batch is
    replaced by stratified exploration draws so a confidently wrong
    surrogate cannot lock the campaign into a basin.

    Falls back to stratified sampling until ``min_fit`` points are visited
    (a GP over two points is noise).
    """

    name = "surrogate"

    def __init__(
        self,
        space: SweepSpec,
        objective: str,
        mode: str = "min",
        seed: int = 0,
        length_scale: float = 0.3,
        noise: float = 1e-6,
        jitter: float = 0.25,
        min_fit: int = 3,
    ) -> None:
        super().__init__(space, objective, mode, seed)
        if not 0.0 <= jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {jitter}")
        self.length_scale = length_scale
        self.noise = noise
        self.jitter = jitter
        self.min_fit = min_fit

    def _select(
        self,
        remaining: list[dict[str, Any]],
        history: ResultSet,
        batch: int,
    ) -> list[dict[str, Any]]:
        scores = self.scores(history)
        if len(scores) < self.min_fit:
            return self._stratified(remaining, batch)

        train_x, train_y = [], []
        for point in self.pool:
            key = point_key(point)
            if key in scores:
                train_x.append(self.encode(point))
                # Fit in minimisation convention; flip for max campaigns.
                train_y.append(scores[key] if self.mode == "min" else -scores[key])
        if len(train_x) < self.min_fit:
            return self._stratified(remaining, batch)

        candidates = [self.encode(point) for point in remaining]
        ei = self._expected_improvement(train_x, train_y, candidates)

        n_explore = int(round(batch * self.jitter))
        n_exploit = batch - n_explore
        ranked = sorted(range(len(remaining)), key=lambda i: (-ei[i], i))
        chosen_idx = list(ranked[:n_exploit])
        if n_explore:
            leftover = [i for i in range(len(remaining)) if i not in set(chosen_idx)]
            explore_pool = [remaining[i] for i in leftover]
            for point in self._stratified(explore_pool, min(n_explore, len(explore_pool))):
                chosen_idx.append(leftover[explore_pool.index(point)])
            # Top up from the EI ranking if exploration collided.
            for i in ranked:
                if len(chosen_idx) >= batch:
                    break
                if i not in set(chosen_idx):
                    chosen_idx.append(i)
        return [remaining[i] for i in chosen_idx[:batch]]

    # --- the GP itself ----------------------------------------------------

    def _kernel(self, a: "Any", b: "Any") -> "Any":
        import numpy as np

        # Squared-exponential (RBF): k(x, x') = exp(-|x - x'|^2 / 2l^2).
        sq = ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=-1)
        return np.exp(-0.5 * sq / (self.length_scale ** 2))

    def _expected_improvement(
        self,
        train_x: list[list[float]],
        train_y: list[float],
        candidates: list[list[float]],
    ) -> list[float]:
        import numpy as np

        x = np.asarray(train_x, dtype=float)
        y = np.asarray(train_y, dtype=float)
        mean_y, std_y = float(y.mean()), float(y.std()) or 1.0
        y_n = (y - mean_y) / std_y

        k_xx = self._kernel(x, x) + self.noise * np.eye(len(x))
        try:
            from scipy.linalg import cho_factor, cho_solve

            factor = cho_factor(k_xx, lower=True)
            alpha = cho_solve(factor, y_n)

            def solve(rhs: "Any") -> "Any":
                return cho_solve(factor, rhs)
        except ImportError:  # pragma: no cover - scipy is a standard dep
            inv = np.linalg.inv(k_xx)
            alpha = inv @ y_n

            def solve(rhs: "Any") -> "Any":
                return inv @ rhs

        c = np.asarray(candidates, dtype=float)
        k_xc = self._kernel(x, c)
        mu = k_xc.T @ alpha
        var = 1.0 - (k_xc * solve(k_xc)).sum(axis=0)
        sigma = np.sqrt(np.clip(var, 1e-12, None))

        incumbent = float(y_n.min())
        z = (incumbent - mu) / sigma
        # EI = sigma * (z * Phi(z) + phi(z)) with Phi via erf -- no scipy
        # special functions needed.
        phi = np.exp(-0.5 * z ** 2) / math.sqrt(2.0 * math.pi)
        cdf = 0.5 * (1.0 + np.vectorize(math.erf)(z / math.sqrt(2.0)))
        return list((sigma * (z * cdf + phi)).astype(float))


STRATEGIES: dict[str, type[Strategy]] = {
    RandomStrategy.name: RandomStrategy,
    LatinHypercubeStrategy.name: LatinHypercubeStrategy,
    RefineStrategy.name: RefineStrategy,
    SurrogateStrategy.name: SurrogateStrategy,
}


def make_strategy(
    name: str,
    space: SweepSpec,
    objective: str,
    mode: str = "min",
    seed: int = 0,
) -> Strategy:
    """Build a registered strategy by name (``STRATEGIES`` lists them)."""
    try:
        cls = STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; available: {sorted(STRATEGIES)}"
        )
    return cls(space, objective, mode=mode, seed=seed)
