"""Campaign outcome summary: best point, trajectory, savings vs the grid.

A :class:`CampaignReport` is what :meth:`repro.campaign.Campaign.run`
returns: the merged :class:`~repro.api.results.ResultSet` of every visited
point plus the campaign-level accounting the CLI prints and the CI smoke
job asserts on (``n_executed == 0`` for a replayed campaign, savings vs
the full grid for a converged one).  ``to_dict()`` is the JSON view; it is
also stored under ``meta["campaign"]`` of the result, so a fetched service
result carries its own campaign provenance.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any

from repro.api.results import ResultSet

__all__ = ["CampaignReport"]


@dataclass
class CampaignReport:
    """Everything a finished (or stopped) campaign knows about itself."""

    experiment: str
    objective: str
    mode: str
    strategy: str
    seed: int
    batch_size: int
    budget: int
    pool_size: int
    rounds: int
    n_visited: int
    n_executed: int
    stop_reason: str
    best_point: dict[str, Any] | None
    best_value: float | None
    trajectory: list[dict[str, Any]] = field(default_factory=list)
    result: ResultSet | None = field(default=None, repr=False)

    @property
    def n_cached(self) -> int:
        """Visited points served from the store instead of executed."""
        return self.n_visited - self.n_executed

    @property
    def grid_fraction(self) -> float:
        """Visited points as a fraction of the full candidate pool."""
        return self.n_visited / self.pool_size if self.pool_size else 0.0

    @property
    def savings(self) -> float:
        """Fraction of the full grid the campaign did *not* have to visit."""
        return 1.0 - self.grid_fraction

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable summary (stored under ``meta["campaign"]``)."""
        return {
            "experiment": self.experiment,
            "objective": self.objective,
            "mode": self.mode,
            "strategy": self.strategy,
            "seed": self.seed,
            "batch_size": self.batch_size,
            "budget": self.budget,
            "pool_size": self.pool_size,
            "rounds": self.rounds,
            "n_visited": self.n_visited,
            "n_executed": self.n_executed,
            "n_cached": self.n_cached,
            "grid_fraction": self.grid_fraction,
            "savings": self.savings,
            "stop_reason": self.stop_reason,
            "best_point": self.best_point,
            "best_value": self.best_value,
            "trajectory": list(self.trajectory),
            "result_hash": None if self.result is None else self.result.content_hash,
        }

    def write_json(self, path: str) -> None:
        """Atomically write the ``to_dict()`` summary to ``path``."""
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)

    def summary(self) -> str:
        """One-line human summary (what the CLI prints at exit)."""
        best = (
            "no best point"
            if self.best_value is None
            else f"best {self.objective}={self.best_value:g} at {self.best_point}"
        )
        return (
            f"campaign {self.experiment!r} [{self.strategy}] "
            f"{self.stop_reason}: {self.n_visited}/{self.pool_size} points "
            f"({self.savings:.0%} of the grid saved, {self.n_executed} "
            f"executed, {self.n_cached} cached) in {self.rounds} rounds; "
            f"{best}"
        )
