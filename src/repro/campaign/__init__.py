"""Closed-loop adaptive sweep campaigns: propose, execute, ingest, repeat.

Instead of declaring a whole grid up front, a campaign lets a seeded
:class:`Strategy` look at the results so far and propose the next batch of
points, which the :class:`Campaign` runner executes through the standard
engine/store machinery (so every point is cached, traced and shardable
exactly like a declared sweep).  See ``docs/CAMPAIGNS.md`` for the
strategy protocol, stopping rules and a worked ``growth_window``
walkthrough.

>>> from repro.api import Engine, SweepSpec
>>> from repro.campaign import Campaign
>>> space = SweepSpec.grid(temperatures_c=[(t,) for t in range(300, 900, 20)])
>>> campaign = Campaign(
...     "growth_window", space, objective="quality", mode="max",
...     strategy="surrogate", batch_size=4, budget=12, seed=7,
...     engine=Engine(cache_dir="/tmp/campaign-cache"),
... )
>>> report = campaign.run()  # doctest: +SKIP
>>> report.best_point, report.savings  # doctest: +SKIP
"""

from repro.campaign.report import CampaignReport
from repro.campaign.runner import CHECKPOINT_VERSION, Campaign, CampaignError
from repro.campaign.strategies import (
    STRATEGIES,
    LatinHypercubeStrategy,
    RandomStrategy,
    RefineStrategy,
    Strategy,
    SurrogateStrategy,
    make_strategy,
    point_objectives,
)

__all__ = [
    "Campaign",
    "CampaignError",
    "CampaignReport",
    "CHECKPOINT_VERSION",
    "Strategy",
    "RandomStrategy",
    "LatinHypercubeStrategy",
    "RefineStrategy",
    "SurrogateStrategy",
    "STRATEGIES",
    "make_strategy",
    "point_objectives",
]
