"""Multi-conductor capacitance extraction (paper Fig. 10a).

For every conductor ``j`` the Laplace problem of Eq. (2) is solved with that
conductor at 1 V and all others grounded; the charge induced on conductor
``i`` then gives the Maxwell capacitance matrix entry ``C[i, j]``.  The
off-diagonal entries are the (negative) coupling capacitances responsible for
the crosstalk the paper's TCAD figure highlights.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import VACUUM_PERMITTIVITY
from repro.tcad.laplace import solve_laplace


@dataclass(frozen=True)
class CapacitanceMatrix:
    """Maxwell capacitance matrix of a set of conductors.

    Attributes
    ----------
    conductors:
        Conductor identifiers in matrix order.
    matrix:
        Maxwell capacitance matrix.  Units: F/m for 2-D cross-section grids,
        F for 3-D grids.
    """

    conductors: tuple[int, ...]
    matrix: np.ndarray

    def index_of(self, conductor: int) -> int:
        """Row/column index of a conductor identifier."""
        try:
            return self.conductors.index(conductor)
        except ValueError:
            raise KeyError(f"conductor {conductor} not in the capacitance matrix") from None

    def self_capacitance(self, conductor: int) -> float:
        """Total capacitance of a conductor to everything else (its Maxwell diagonal)."""
        i = self.index_of(conductor)
        return float(self.matrix[i, i])

    def coupling_capacitance(self, first: int, second: int) -> float:
        """Coupling (mutual) capacitance between two conductors (positive number)."""
        i, j = self.index_of(first), self.index_of(second)
        return float(-self.matrix[i, j])

    def ground_capacitance(self, conductor: int) -> float:
        """Capacitance of a conductor to ground (everything not in the matrix)."""
        i = self.index_of(conductor)
        return float(self.matrix[i, i] + self.matrix[i, :].sum() - self.matrix[i, i])

    def is_physical(self, tolerance: float = 0.05) -> bool:
        """Sanity check: positive diagonal, negative off-diagonal, near symmetry."""
        matrix = self.matrix
        if np.any(np.diag(matrix) <= 0):
            return False
        off_diagonal = matrix - np.diag(np.diag(matrix))
        if np.any(off_diagonal > 1e-18):
            return False
        asymmetry = np.abs(matrix - matrix.T)
        scale = np.max(np.abs(matrix))
        return bool(np.all(asymmetry <= tolerance * scale))


def capacitance_matrix(grid, conductors: list[int] | None = None) -> CapacitanceMatrix:
    """Extract the Maxwell capacitance matrix of the conductors in a grid.

    Parameters
    ----------
    grid:
        A :class:`~repro.tcad.grid.StructuredGrid` with at least one conductor
        painted (conductor ids >= 0).
    conductors:
        Conductor identifiers to include; defaults to every conductor found.

    Returns
    -------
    CapacitanceMatrix
        Per-unit-length (2-D grids) or absolute (3-D grids) capacitances.
    """
    ids = conductors if conductors is not None else grid.conductor_ids()
    if len(ids) == 0:
        raise ValueError("the grid contains no conductors to extract")

    n = len(ids)
    matrix = np.zeros((n, n))
    # The dielectric domain excludes conductor interiors (they are Dirichlet
    # regions); unidentified conductors (-2) are excluded entirely.
    for j, active in enumerate(ids):
        boundary_conditions = {conductor: (1.0 if conductor == active else 0.0) for conductor in ids}
        solution = solve_laplace(grid, boundary_conditions, coefficient="permittivity")
        for i, probe in enumerate(ids):
            flux = solution.flux_into_region(grid.conductor_mask(probe))
            charge = VACUUM_PERMITTIVITY * flux
            matrix[i, j] = charge

    return CapacitanceMatrix(conductors=tuple(ids), matrix=matrix)


def self_and_coupling_capacitance(grid, victim: int, aggressor: int) -> dict[str, float]:
    """Convenience two-conductor summary of the crosstalk situation of Fig. 10a.

    Returns a dictionary with the victim's total capacitance, the victim to
    aggressor coupling capacitance and the coupling fraction (the share of the
    victim's capacitance subject to crosstalk).
    """
    full = capacitance_matrix(grid)
    total = full.self_capacitance(victim)
    coupling = full.coupling_capacitance(victim, aggressor)
    return {
        "total_capacitance": total,
        "coupling_capacitance": coupling,
        "coupling_fraction": coupling / total if total > 0 else float("nan"),
    }
