"""Material table for the TCAD field solver.

Each material carries a relative permittivity (used by the capacitance
extraction, Eq. 2) and an electrical conductivity (used by the resistance
extraction, Eq. 3).  The CNT entries use effective conductivities derived
from the compact models so that the field solver and the compact models stay
consistent -- the "advanced models for conductivity ... of both Cu and CNT
are implemented using ab-initio results" workflow of Section III.B.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import COPPER_BULK_RESISTIVITY


@dataclass(frozen=True)
class Material:
    """A material usable by the field solver.

    Attributes
    ----------
    name:
        Material label.
    relative_permittivity:
        Relative dielectric constant (1 for vacuum).
    conductivity:
        Electrical conductivity in siemens per metre (0 for ideal insulators).
    is_conductor:
        Whether the material is treated as a conductor region (equipotential
        candidate for capacitance extraction, conducting domain for
        resistance extraction).
    """

    name: str
    relative_permittivity: float
    conductivity: float
    is_conductor: bool

    def __post_init__(self) -> None:
        if self.relative_permittivity <= 0:
            raise ValueError("relative permittivity must be positive")
        if self.conductivity < 0:
            raise ValueError("conductivity cannot be negative")


VACUUM = Material("vacuum", 1.0, 0.0, False)
SILICON_DIOXIDE = Material("SiO2", 3.9, 0.0, False)
LOW_K_DIELECTRIC = Material("low-k", 2.2, 0.0, False)
SILICON = Material("Si", 11.7, 0.0, False)

COPPER = Material("Cu", 1.0, 1.0 / COPPER_BULK_RESISTIVITY, True)

# Effective CNT conductivities (bundle/MWCNT level) are length dependent; the
# values below correspond to the long-length (diffusive) limit of the compact
# models and are good defaults for field-solver structures.  Use
# `cnt_material` to derive a value for a specific geometry.
CNT_BUNDLE = Material("CNT-bundle", 1.0, 5.0e7, True)
CU_CNT_COMPOSITE = Material("Cu-CNT", 1.0, 4.5e7, True)

MATERIALS: dict[str, Material] = {
    material.name: material
    for material in (
        VACUUM,
        SILICON_DIOXIDE,
        LOW_K_DIELECTRIC,
        SILICON,
        COPPER,
        CNT_BUNDLE,
        CU_CNT_COMPOSITE,
    )
}
"""Registry of the built-in materials, keyed by name."""


def cnt_material(effective_conductivity: float, name: str = "CNT-custom") -> Material:
    """Build a conductor material from a compact-model effective conductivity.

    Parameters
    ----------
    effective_conductivity:
        Conductivity in siemens per metre, e.g.
        ``MWCNTInterconnect(...).effective_conductivity``.
    name:
        Label of the new material.
    """
    if effective_conductivity <= 0:
        raise ValueError("effective conductivity must be positive")
    return Material(name, 1.0, effective_conductivity, True)
