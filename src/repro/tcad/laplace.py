"""Sparse finite-difference Laplace solver (paper Eqs. 2-3).

Solves ``div(c grad psi) = 0`` on a :class:`~repro.tcad.grid.StructuredGrid`
where the coefficient ``c`` is either the permittivity (capacitance
extraction in the dielectric) or the conductivity (resistance extraction
inside a conductor).  Dirichlet values are applied on conductor nodes (or any
explicit node mask); the outer boundary is a natural (Neumann) boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.linalg import spsolve


def _combine_coefficients(
    c_a: np.ndarray, c_b: np.ndarray, dirichlet_a: np.ndarray, dirichlet_b: np.ndarray
) -> np.ndarray:
    """Per-link coefficient from the two node coefficients.

    Harmonic mean in the bulk; when exactly one node is a Dirichlet
    (conductor) node the free node's coefficient is used, because the field
    between a conductor surface and the adjacent dielectric node lives in the
    dielectric.
    """
    denominator = np.maximum(c_a + c_b, 1e-300)
    combined = np.where(c_a + c_b > 0.0, 2.0 * c_a * c_b / denominator, 0.0)
    combined = np.where(dirichlet_a & ~dirichlet_b, c_b, combined)
    combined = np.where(dirichlet_b & ~dirichlet_a, c_a, combined)
    return combined


def _links_from(
    coords: np.ndarray, axis: int, direction: int, shape: tuple[int, ...]
) -> tuple[np.ndarray, np.ndarray]:
    """Pairs of (node, neighbour) grid coordinates along one axis direction.

    ``coords`` is an ``(n, ndim)`` array of node indices; neighbours falling
    outside the grid are dropped.  Returns the filtered node coordinates and
    the matching neighbour coordinates.
    """
    neighbours = coords.copy()
    neighbours[:, axis] += direction
    inside = (neighbours[:, axis] >= 0) & (neighbours[:, axis] < shape[axis])
    return coords[inside], neighbours[inside]


@dataclass(frozen=True)
class LaplaceSolution:
    """Result of a finite-difference Laplace solve.

    Attributes
    ----------
    grid:
        The grid the problem was solved on.
    potential:
        Node potentials in volt, shaped like the grid; nodes outside the
        solution domain hold ``numpy.nan``.
    coefficient:
        The coefficient field (permittivity or conductivity) used, shaped
        like the grid.
    dirichlet_mask:
        Boolean mask of the nodes that were held at fixed potentials.
    domain_mask:
        Boolean mask of the nodes that are part of the problem (free or
        Dirichlet).
    """

    grid: "object"
    potential: np.ndarray
    coefficient: np.ndarray
    dirichlet_mask: np.ndarray
    domain_mask: np.ndarray

    def flux_into_region(self, region_mask: np.ndarray) -> float:
        """Net coefficient-weighted flux flowing into a node region.

        The flux is ``sum over boundary links of c_link * (A/d) * (V_region -
        V_outside)``; for a capacitance solve multiply by ``epsilon_0`` to get
        the charge on the region, for a resistance solve the value is directly
        the current leaving the region through the rest of the domain (ampere,
        per metre of depth on 2-D grids).
        """
        grid = self.grid
        region = (region_mask & self.domain_mask).astype(bool)
        coords = np.argwhere(region)
        total = 0.0
        for axis in range(grid.ndim):
            factor = grid.link_area_over_distance(axis)
            for direction in (+1, -1):
                nodes, neighbours = _links_from(coords, axis, direction, grid.shape)
                if nodes.size == 0:
                    continue
                node_idx = tuple(nodes.T)
                nb_idx = tuple(neighbours.T)
                outside = ~region[nb_idx] & self.domain_mask[nb_idx]
                if not outside.any():
                    continue
                node_sel = tuple(nodes[outside].T)
                nb_sel = tuple(neighbours[outside].T)
                c_link = _combine_coefficients(
                    self.coefficient[node_sel],
                    self.coefficient[nb_sel],
                    self.dirichlet_mask[node_sel],
                    self.dirichlet_mask[nb_sel],
                )
                v_region = self.potential[node_sel]
                v_outside = self.potential[nb_sel]
                valid = ~np.isnan(v_outside) & ~np.isnan(v_region)
                total += float(
                    np.sum(c_link[valid] * factor * (v_region[valid] - v_outside[valid]))
                )
        return total

    def field_magnitude(self) -> np.ndarray:
        """Magnitude of the potential gradient |grad psi| in V/m (nan outside the domain)."""
        grid = self.grid
        gradients = np.gradient(self.potential, *grid.spacing)
        if grid.ndim == 2:
            gx, gy = gradients
            return np.sqrt(gx**2 + gy**2)
        gx, gy, gz = gradients
        return np.sqrt(gx**2 + gy**2 + gz**2)


def solve_laplace(
    grid,
    dirichlet_values: dict[int, float],
    coefficient: str = "permittivity",
    domain_mask: np.ndarray | None = None,
    extra_dirichlet: list[tuple[np.ndarray, float]] | None = None,
) -> LaplaceSolution:
    """Solve ``div(c grad psi) = 0`` on a structured grid.

    Parameters
    ----------
    grid:
        A :class:`~repro.tcad.grid.StructuredGrid`.
    dirichlet_values:
        Mapping from conductor identifier to fixed potential in volt.  Every
        node of those conductors is held at that potential.
    coefficient:
        ``"permittivity"`` (capacitance extraction, Eq. 2) or
        ``"conductivity"`` (resistance extraction, Eq. 3).
    domain_mask:
        Optional boolean mask restricting the solution domain (e.g. the
        interior of one conductor for resistance extraction).  Defaults to
        the whole grid.
    extra_dirichlet:
        Optional additional Dirichlet regions given as ``(mask, value)``
        pairs -- used for contact faces in resistance extraction.

    Returns
    -------
    LaplaceSolution
    """
    if coefficient == "permittivity":
        coeff = grid.permittivity.astype(float)
    elif coefficient == "conductivity":
        coeff = grid.conductivity.astype(float)
    else:
        raise ValueError("coefficient must be 'permittivity' or 'conductivity'")

    domain = np.ones(grid.shape, dtype=bool) if domain_mask is None else domain_mask.astype(bool)

    dirichlet_mask = np.zeros(grid.shape, dtype=bool)
    dirichlet_value = np.zeros(grid.shape, dtype=float)
    for conductor, value in dirichlet_values.items():
        mask = grid.conductor_mask(conductor)
        if not mask.any():
            raise ValueError(f"conductor {conductor} has no nodes in the grid")
        dirichlet_mask |= mask
        dirichlet_value[mask] = value
    for mask, value in extra_dirichlet or []:
        mask = mask.astype(bool)
        dirichlet_mask |= mask
        dirichlet_value[mask] = value

    dirichlet_mask &= domain
    free_mask = domain & ~dirichlet_mask
    n_free = int(free_mask.sum())
    if n_free == 0:
        potential = np.full(grid.shape, np.nan)
        potential[dirichlet_mask] = dirichlet_value[dirichlet_mask]
        return LaplaceSolution(grid, potential, coeff, dirichlet_mask, domain)

    free_index = -np.ones(grid.shape, dtype=int)
    free_index[free_mask] = np.arange(n_free)
    free_coords = np.argwhere(free_mask)

    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    data: list[np.ndarray] = []
    rhs = np.zeros(n_free)
    diagonal = np.zeros(n_free)

    for axis in range(grid.ndim):
        factor = grid.link_area_over_distance(axis)
        for direction in (+1, -1):
            nodes, neighbours = _links_from(free_coords, axis, direction, grid.shape)
            if nodes.size == 0:
                continue
            node_idx = tuple(nodes.T)
            nb_idx = tuple(neighbours.T)
            in_domain = domain[nb_idx]
            if not in_domain.any():
                continue
            nodes = nodes[in_domain]
            neighbours = neighbours[in_domain]
            node_idx = tuple(nodes.T)
            nb_idx = tuple(neighbours.T)

            c_link = _combine_coefficients(
                coeff[node_idx],
                coeff[nb_idx],
                dirichlet_mask[node_idx],
                dirichlet_mask[nb_idx],
            )
            weight = c_link * factor
            node_ids = free_index[node_idx]
            np.add.at(diagonal, node_ids, weight)

            neighbour_free = free_mask[nb_idx]
            if neighbour_free.any():
                rows.append(node_ids[neighbour_free])
                cols.append(free_index[nb_idx][neighbour_free])
                data.append(-weight[neighbour_free])

            neighbour_fixed = ~neighbour_free
            if neighbour_fixed.any():
                contribution = weight[neighbour_fixed] * dirichlet_value[nb_idx][neighbour_fixed]
                np.add.at(rhs, node_ids[neighbour_fixed], contribution)

    rows.append(np.arange(n_free))
    cols.append(np.arange(n_free))
    data.append(diagonal)

    matrix = coo_matrix(
        (np.concatenate(data), (np.concatenate(rows), np.concatenate(cols))),
        shape=(n_free, n_free),
    ).tocsr()

    solution_free = spsolve(matrix, rhs)

    potential = np.full(grid.shape, np.nan)
    potential[dirichlet_mask] = dirichlet_value[dirichlet_mask]
    potential[free_mask] = solution_free

    return LaplaceSolution(grid, potential, coeff, dirichlet_mask, domain)
