"""Resistance extraction and current-density maps (paper Fig. 10b).

The resistance of a conductor between two contact faces is extracted by
solving the conduction Laplace problem of Eq. (3) inside the conductor with
the contacts held at 0 V and 1 V, integrating the current through a contact
and applying ``R = V / I``.  The local current density ``J = kappa |grad
psi|`` exposes the hot-spots the paper's Fig. 10b highlights (current
crowding at via landings and line corners).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tcad.laplace import LaplaceSolution, solve_laplace


@dataclass(frozen=True)
class ResistanceExtraction:
    """Result of a resistance extraction.

    Attributes
    ----------
    resistance:
        Extracted resistance in ohm (ohm times metre of depth for 2-D grids).
    current:
        Current flowing between the contacts at 1 V bias, in ampere
        (ampere per metre of depth for 2-D grids).
    solution:
        The underlying Laplace solution (potentials inside the conductor).
    """

    resistance: float
    current: float
    solution: LaplaceSolution


def _face_mask(grid, conductor_mask: np.ndarray, axis: int, side: str) -> np.ndarray:
    """Mask of the conductor nodes on one outer face of the conductor."""
    coords = np.argwhere(conductor_mask)
    if coords.size == 0:
        raise ValueError("conductor has no nodes")
    along = coords[:, axis]
    target = along.min() if side == "low" else along.max()
    face = np.zeros(grid.shape, dtype=bool)
    selected = coords[along == target]
    face[tuple(selected.T)] = True
    return face


def extract_resistance(
    grid,
    conductor: int,
    axis: int = 0,
    contact_a: np.ndarray | None = None,
    contact_b: np.ndarray | None = None,
    bias: float = 1.0,
) -> ResistanceExtraction:
    """Extract the resistance of a conductor between two contacts.

    Parameters
    ----------
    grid:
        A :class:`~repro.tcad.grid.StructuredGrid`.
    conductor:
        Conductor identifier whose interior forms the conduction domain.
    axis:
        When no explicit contacts are given, the two outer faces of the
        conductor along this axis are used as contacts.
    contact_a, contact_b:
        Optional boolean node masks for the contact regions (must lie inside
        the conductor).
    bias:
        Voltage applied between the contacts in volt.

    Returns
    -------
    ResistanceExtraction
    """
    if bias <= 0:
        raise ValueError("bias must be positive")
    domain = grid.conductor_mask(conductor)
    if not domain.any():
        raise ValueError(f"conductor {conductor} has no nodes in the grid")

    if contact_a is None:
        contact_a = _face_mask(grid, domain, axis, "low")
    if contact_b is None:
        contact_b = _face_mask(grid, domain, axis, "high")
    contact_a = contact_a & domain
    contact_b = contact_b & domain
    if not contact_a.any() or not contact_b.any():
        raise ValueError("contact masks must overlap the conductor")
    if (contact_a & contact_b).any():
        raise ValueError("contacts overlap each other")

    solution = solve_laplace(
        grid,
        dirichlet_values={},
        coefficient="conductivity",
        domain_mask=domain,
        extra_dirichlet=[(contact_a, 0.0), (contact_b, bias)],
    )

    # Current flowing out of the biased contact into the conductor body.
    current = solution.flux_into_region(contact_b)
    if current <= 0:
        raise RuntimeError("no current flows between the contacts; check the geometry")
    return ResistanceExtraction(resistance=bias / current, current=current, solution=solution)


def current_density_map(extraction: ResistanceExtraction) -> np.ndarray:
    """Local current-density magnitude ``J = kappa |grad psi|`` in A/m^2.

    Nodes outside the conduction domain hold ``numpy.nan``.  The maximum of
    this map is the hot-spot metric used by experiment E4 (Fig. 10b).
    """
    solution = extraction.solution
    field = solution.field_magnitude()
    density = solution.coefficient * field
    density = np.where(solution.domain_mask, density, np.nan)
    return density


def hotspot_factor(extraction: ResistanceExtraction) -> float:
    """Peak-to-average current-density ratio inside the conductor (>= 1).

    A value well above 1 signals current crowding, the reliability hazard the
    paper's Fig. 10b visualisation is meant to expose.
    """
    density = current_density_map(extraction)
    values = density[np.isfinite(density)]
    positive = values[values > 0]
    if positive.size == 0:
        return float("nan")
    return float(positive.max() / positive.mean())
