"""SPICE-like RC netlist export of field-solver extractions.

Section III.B closes with "Extracted RC netlists are provided in a SPICE-like
format for circuit-level simulation".  This module builds a
:class:`~repro.circuit.netlist.Circuit` (and its SPICE text) from a
capacitance matrix and optional per-conductor resistances, so the TCAD and
circuit layers of the reproduction connect exactly the way the paper's flow
does.
"""

from __future__ import annotations

from repro.circuit.netlist import Circuit
from repro.tcad.capacitance import CapacitanceMatrix


def rc_netlist_from_extraction(
    capacitances: CapacitanceMatrix,
    node_names: dict[int, str] | None = None,
    resistances: dict[int, float] | None = None,
    ground_conductor: int | None = None,
    length: float = 1.0,
    title: str = "TCAD extracted RC netlist",
) -> Circuit:
    """Build a circuit from an extracted capacitance matrix.

    Parameters
    ----------
    capacitances:
        Maxwell capacitance matrix from :func:`repro.tcad.capacitance.capacitance_matrix`.
        For 2-D extractions the values are per unit length and are multiplied
        by ``length``.
    node_names:
        Optional mapping from conductor identifier to circuit node name;
        defaults to ``n<conductor>``.
    resistances:
        Optional end-to-end resistance per conductor in ohm; each is added as
        a series resistor splitting the conductor node into ``<node>_in`` and
        ``<node>`` (far end).
    ground_conductor:
        Conductor identifier to treat as the circuit ground (e.g. a ground
        plane); its capacitances become capacitances to node ``0``.
    length:
        Physical length in metre used to scale per-unit-length capacitances
        (use 1.0 for 3-D extractions).
    title:
        Circuit title.

    Returns
    -------
    Circuit
        Ready for :func:`repro.circuit.transient.transient_analysis` or for
        export through :meth:`repro.circuit.netlist.Circuit.to_spice`.
    """
    if length <= 0:
        raise ValueError("length must be positive")

    circuit = Circuit(title=title)
    conductors = list(capacitances.conductors)

    def name_of(conductor: int) -> str:
        if ground_conductor is not None and conductor == ground_conductor:
            return "0"
        if node_names and conductor in node_names:
            return node_names[conductor]
        return f"n{conductor}"

    # Ground capacitance of every conductor: Maxwell row sum.
    for conductor in conductors:
        if ground_conductor is not None and conductor == ground_conductor:
            continue
        node = name_of(conductor)
        row_sum = capacitances.ground_capacitance(conductor) * length
        if row_sum > 0:
            circuit.add_capacitor(f"cg_{conductor}", node, "0", row_sum)

    # Coupling capacitances between conductor pairs.
    for i, first in enumerate(conductors):
        for second in conductors[i + 1 :]:
            coupling = capacitances.coupling_capacitance(first, second) * length
            if coupling <= 0:
                continue
            node_a = name_of(first)
            node_b = name_of(second)
            if node_a == node_b:
                continue
            if node_a == "0" or node_b == "0":
                target = node_b if node_a == "0" else node_a
                circuit.add_capacitor(f"cc_{first}_{second}", target, "0", coupling)
            else:
                circuit.add_capacitor(f"cc_{first}_{second}", node_a, node_b, coupling)

    # Series resistances (driver side node <node>_in, far end <node>).
    for conductor, resistance in (resistances or {}).items():
        if resistance <= 0:
            raise ValueError("resistances must be positive")
        node = name_of(conductor)
        if node == "0":
            continue
        circuit.add_resistor(f"r_{conductor}", f"{node}_in", node, resistance)

    return circuit
