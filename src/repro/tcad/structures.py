"""Parametric interconnect structures for the field solver (paper Fig. 10).

Builders for the geometries used by experiment E4: a 2-D cross-section of
parallel BEOL lines over a ground plane (crosstalk extraction), a 3-D M1/M2
crossing as found above a standard-cell inverter, and a 3-D via between two
metal levels (current-crowding / hot-spot extraction).  All builders accept a
technology node so the default dimensions track the paper's 14 nm example.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.technology import NODE_14NM, TechnologyNode
from repro.tcad.grid import StructuredGrid
from repro.tcad.materials import COPPER, LOW_K_DIELECTRIC, Material


@dataclass(frozen=True)
class StructureDescription:
    """A built structure together with the conductor roles.

    Attributes
    ----------
    grid:
        The populated grid.
    conductors:
        Mapping from a human-readable role ("ground", "line0", "m1", ...) to
        the conductor identifier painted in the grid.
    """

    grid: StructuredGrid
    conductors: dict[str, int]


def parallel_lines_structure(
    n_lines: int = 3,
    technology: TechnologyNode = NODE_14NM,
    line_material: Material = COPPER,
    dielectric: Material = LOW_K_DIELECTRIC,
    aspect_ratio: float = 2.0,
    resolution: int = 4,
    include_ground_plane: bool = True,
) -> StructureDescription:
    """2-D cross-section of parallel lines over a ground plane.

    The lines use the technology node's minimum pitch (width = spacing =
    pitch / 2) and the given aspect ratio.  Conductor 0 is the ground plane
    (when present); lines are numbered left to right starting at 1.

    Parameters
    ----------
    n_lines:
        Number of parallel signal lines.
    technology:
        Technology node supplying pitch and thickness defaults.
    line_material, dielectric:
        Materials for the lines and the surrounding dielectric.
    aspect_ratio:
        Line height / line width.
    resolution:
        Grid nodes per half-pitch; higher is more accurate but slower.
    include_ground_plane:
        Paint a ground plane (conductor 0) below the lines.
    """
    if n_lines < 1:
        raise ValueError("need at least one line")
    if resolution < 2:
        raise ValueError("resolution must be at least 2 nodes per half-pitch")

    pitch = technology.wire_pitch
    width = pitch / 2.0
    spacing = pitch / 2.0
    height = width * aspect_ratio
    ild_below = height  # dielectric thickness between ground plane and lines

    margin = pitch
    total_width = 2 * margin + n_lines * width + (n_lines - 1) * spacing
    total_height = 3.0 * height + ild_below

    dx = width / resolution
    dy = dx
    nx = int(round(total_width / dx)) + 1
    ny = int(round(total_height / dy)) + 1

    grid = StructuredGrid(shape=(nx, ny), spacing=(dx, dy), background=dielectric)

    conductors: dict[str, int] = {}
    plane_top = 0.0
    if include_ground_plane:
        plane_thickness = 2 * dy
        grid.fill_box(line_material, (0.0, 0.0), (total_width, plane_thickness), conductor=0)
        conductors["ground"] = 0
        plane_top = plane_thickness

    y0 = plane_top + ild_below
    for index in range(n_lines):
        x0 = margin + index * (width + spacing)
        grid.fill_box(
            line_material, (x0, y0), (x0 + width, y0 + height), conductor=index + 1
        )
        conductors[f"line{index}"] = index + 1

    return StructureDescription(grid=grid, conductors=conductors)


def m1_m2_crossing_structure(
    technology: TechnologyNode = NODE_14NM,
    line_material: Material = COPPER,
    dielectric: Material = LOW_K_DIELECTRIC,
    resolution: int = 3,
) -> StructureDescription:
    """3-D structure of an M1 line crossed by an orthogonal M2 line above it.

    This is the minimal representative of the "cross-talk between lines up to
    the M2 interconnect level" situation of Fig. 10a.  Conductor 1 is the M1
    (victim) line, conductor 2 the M2 (aggressor) line, conductor 0 the
    substrate ground plane.
    """
    if resolution < 2:
        raise ValueError("resolution must be at least 2")

    pitch = technology.wire_pitch
    width = pitch / 2.0
    thickness = technology.metal_thickness
    span = 4.0 * pitch

    h = width / resolution
    nx = int(round(span / h)) + 1
    ny = int(round(span / h)) + 1
    total_height = 2.0 * thickness + 3.0 * thickness
    nz = int(round(total_height / h)) + 1

    grid = StructuredGrid(shape=(nx, ny, nz), spacing=(h, h, h), background=dielectric)

    # Ground plane at the bottom.
    grid.fill_box(line_material, (0.0, 0.0, 0.0), (span, span, h), conductor=0)

    # M1 line along x, centred in y.
    m1_z0 = thickness
    y_mid = span / 2.0
    grid.fill_box(
        line_material,
        (0.0, y_mid - width / 2.0, m1_z0),
        (span, y_mid + width / 2.0, m1_z0 + thickness),
        conductor=1,
    )

    # M2 line along y, centred in x, one ILD thickness above M1.
    m2_z0 = m1_z0 + 2.0 * thickness
    x_mid = span / 2.0
    grid.fill_box(
        line_material,
        (x_mid - width / 2.0, 0.0, m2_z0),
        (x_mid + width / 2.0, span, m2_z0 + thickness),
        conductor=2,
    )

    return StructureDescription(
        grid=grid, conductors={"ground": 0, "m1": 1, "m2": 2}
    )


def via_structure(
    via_width: float = 30.0e-9,
    via_height: float = 60.0e-9,
    landing_width: float = 90.0e-9,
    landing_thickness: float = 30.0e-9,
    conductor_material: Material = COPPER,
    dielectric: Material = LOW_K_DIELECTRIC,
    resolution: float = 10.0e-9,
) -> StructureDescription:
    """3-D via connecting two metal landing pads (single conductor).

    The whole structure (bottom pad, via, top pad) is painted as conductor 1
    so :func:`repro.tcad.resistance.extract_resistance` can extract its
    end-to-end resistance and current-density map -- the 30 nm via-hole
    geometry of the paper's Fig. 2 growth experiments, now as an electrical
    test structure.
    """
    if resolution <= 0:
        raise ValueError("resolution must be positive")
    if via_width >= landing_width:
        raise ValueError("the via must be narrower than its landing pads")

    span = landing_width
    total_height = 2.0 * landing_thickness + via_height
    h = resolution
    nx = max(int(round(span / h)) + 1, 5)
    ny = nx
    nz = max(int(round(total_height / h)) + 1, 5)

    grid = StructuredGrid(shape=(nx, ny, nz), spacing=(h, h, h), background=dielectric)

    centre = span / 2.0
    # Bottom landing pad.
    grid.fill_box(
        conductor_material, (0.0, 0.0, 0.0), (span, span, landing_thickness), conductor=1
    )
    # Via.
    grid.fill_box(
        conductor_material,
        (centre - via_width / 2.0, centre - via_width / 2.0, landing_thickness),
        (centre + via_width / 2.0, centre + via_width / 2.0, landing_thickness + via_height),
        conductor=1,
    )
    # Top landing pad.
    grid.fill_box(
        conductor_material,
        (0.0, 0.0, landing_thickness + via_height),
        (span, span, total_height),
        conductor=1,
    )

    return StructureDescription(grid=grid, conductors={"via": 1})
