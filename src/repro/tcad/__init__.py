"""TCAD-style field solver for interconnect RC extraction (paper Fig. 10).

Section III.B of the paper extracts macroscopic resistance and capacitance of
interconnect structures by solving the Laplace equations

    div(eps grad psi) = 0     in insulators          (Eq. 2)
    div(kappa grad psi) = 0   in conductors          (Eq. 3)

with a finite-difference approach, then exports the resulting RC netlists in
a SPICE-like format.  This subpackage is the reproduction of that flow:

* :mod:`repro.tcad.grid` -- structured 2-D/3-D grids with per-cell material,
* :mod:`repro.tcad.materials` -- permittivity / conductivity material table,
* :mod:`repro.tcad.laplace` -- the sparse finite-difference Laplace solver,
* :mod:`repro.tcad.capacitance` -- multi-conductor capacitance matrices
  (crosstalk, Fig. 10a),
* :mod:`repro.tcad.resistance` -- resistance and current-density maps
  (hot-spots, Fig. 10b),
* :mod:`repro.tcad.structures` -- parametric interconnect structures
  (parallel lines, M1/M2 crossings, vias),
* :mod:`repro.tcad.netlist_export` -- SPICE-like RC netlist export.
"""

from repro.tcad.grid import StructuredGrid
from repro.tcad.materials import Material, MATERIALS
from repro.tcad.laplace import LaplaceSolution, solve_laplace
from repro.tcad.capacitance import capacitance_matrix, self_and_coupling_capacitance
from repro.tcad.resistance import extract_resistance, current_density_map
from repro.tcad.structures import (
    parallel_lines_structure,
    m1_m2_crossing_structure,
    via_structure,
)
from repro.tcad.netlist_export import rc_netlist_from_extraction

__all__ = [
    "StructuredGrid",
    "Material",
    "MATERIALS",
    "LaplaceSolution",
    "solve_laplace",
    "capacitance_matrix",
    "self_and_coupling_capacitance",
    "extract_resistance",
    "current_density_map",
    "parallel_lines_structure",
    "m1_m2_crossing_structure",
    "via_structure",
    "rc_netlist_from_extraction",
]
