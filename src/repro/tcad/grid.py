"""Structured grids for the finite-difference field solver.

A :class:`StructuredGrid` is a uniform 2-D or 3-D node grid.  Every node
carries a relative permittivity, a conductivity and an optional conductor
identifier; geometry is built by painting axis-aligned boxes of material
(:meth:`StructuredGrid.fill_box`), which is sufficient for the interconnect
structures of Fig. 10 (parallel lines, stacked metal levels, vias).

2-D grids describe a cross-section of infinitely long parallel lines; the
solver then returns per-unit-length quantities (F/m).  3-D grids return
absolute quantities (F, ohm).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.tcad.materials import Material, VACUUM


@dataclass
class StructuredGrid:
    """A uniform structured grid with per-node material data.

    Parameters
    ----------
    shape:
        Number of nodes along each axis: ``(nx, ny)`` or ``(nx, ny, nz)``.
    spacing:
        Node spacing along each axis in metre (same length as ``shape``).
    background:
        Material the grid is initialised with (default vacuum).
    """

    shape: tuple[int, ...]
    spacing: tuple[float, ...]
    background: Material = field(default=VACUUM)

    def __post_init__(self) -> None:
        if len(self.shape) not in (2, 3):
            raise ValueError("grid must be 2-D or 3-D")
        if len(self.spacing) != len(self.shape):
            raise ValueError("spacing must have one entry per axis")
        if any(n < 3 for n in self.shape):
            raise ValueError("need at least 3 nodes per axis")
        if any(h <= 0 for h in self.spacing):
            raise ValueError("spacings must be positive")

        self.permittivity = np.full(self.shape, self.background.relative_permittivity)
        self.conductivity = np.full(self.shape, self.background.conductivity)
        self.conductor_id = np.full(self.shape, -1, dtype=int)

    # --- basic queries -----------------------------------------------------------

    @property
    def ndim(self) -> int:
        """Number of spatial dimensions (2 or 3)."""
        return len(self.shape)

    @property
    def n_nodes(self) -> int:
        """Total number of grid nodes."""
        return int(np.prod(self.shape))

    @property
    def extent(self) -> tuple[float, ...]:
        """Physical size of the grid along each axis in metre."""
        return tuple((n - 1) * h for n, h in zip(self.shape, self.spacing))

    def axis_coordinates(self, axis: int) -> np.ndarray:
        """Node coordinates along one axis in metre."""
        return np.arange(self.shape[axis]) * self.spacing[axis]

    def conductor_ids(self) -> list[int]:
        """Sorted list of conductor identifiers present in the grid."""
        ids = np.unique(self.conductor_id)
        return [int(i) for i in ids if i >= 0]

    def conductor_mask(self, conductor: int) -> np.ndarray:
        """Boolean mask of the nodes belonging to one conductor."""
        return self.conductor_id == conductor

    # --- geometry painting ------------------------------------------------------------

    def _box_slices(
        self, min_corner: tuple[float, ...], max_corner: tuple[float, ...]
    ) -> tuple[slice, ...]:
        if len(min_corner) != self.ndim or len(max_corner) != self.ndim:
            raise ValueError("corner coordinates must match the grid dimensionality")
        slices = []
        for axis, (low, high) in enumerate(zip(min_corner, max_corner)):
            if high < low:
                raise ValueError("max corner must not be below min corner")
            h = self.spacing[axis]
            start = int(np.ceil(low / h - 1e-9))
            stop = int(np.floor(high / h + 1e-9)) + 1
            start = max(start, 0)
            stop = min(stop, self.shape[axis])
            if stop <= start:
                raise ValueError(
                    f"box does not cover any node along axis {axis}: [{low}, {high}]"
                )
            slices.append(slice(start, stop))
        return tuple(slices)

    def fill_box(
        self,
        material: Material,
        min_corner: tuple[float, ...],
        max_corner: tuple[float, ...],
        conductor: int | None = None,
    ) -> None:
        """Paint an axis-aligned box of material onto the grid.

        Parameters
        ----------
        material:
            Material to assign to every node inside the box.
        min_corner, max_corner:
            Physical coordinates of the box corners in metre (inclusive).
        conductor:
            Optional conductor identifier (>= 0).  Required when the material
            is a conductor that should participate in capacitance /
            resistance extraction.
        """
        if conductor is not None and conductor < 0:
            raise ValueError("conductor identifiers must be non-negative")
        region = self._box_slices(min_corner, max_corner)
        self.permittivity[region] = material.relative_permittivity
        self.conductivity[region] = material.conductivity
        if conductor is not None:
            self.conductor_id[region] = conductor
        elif material.is_conductor:
            # Conducting material painted without an id: mark it as conductor -2
            # so the solvers can still exclude it from dielectric domains.
            self.conductor_id[region] = -2

    # --- indexing helpers ------------------------------------------------------------------

    def ravel_index(self, index: tuple[int, ...]) -> int:
        """Flat index of a node given its grid index."""
        return int(np.ravel_multi_index(index, self.shape))

    def link_area_over_distance(self, axis: int) -> float:
        """Geometric factor ``A / d`` of a link along one axis.

        For 2-D grids the out-of-plane depth is 1 m, so capacitances and
        conductances computed from these links are per unit length.
        """
        h = self.spacing
        if self.ndim == 2:
            other = h[1 - axis]
            return other / h[axis]
        others = [h[i] for i in range(3) if i != axis]
        return others[0] * others[1] / h[axis]
