"""Catalyst models and the CMOS temperature-budget check.

The paper's baseline growth uses a 1 nm iron catalyst film on an
aluminosilicate support inside 30 nm via holes (Section II.A); for CMOS
compatibility a cobalt catalyst was developed because cobalt is already used
in BEOL flows, and the growth temperature has to stay below 400 C
(Section II.B).  Each catalyst is described by an activation energy and a
prefactor for the growth-rate Arrhenius law plus a quality parameter, which
is what the growth model of :mod:`repro.process.growth` consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import celsius_to_kelvin

CMOS_BEOL_TEMPERATURE_LIMIT = celsius_to_kelvin(400.0)
"""Maximum BEOL processing temperature for CMOS compatibility (kelvin)."""


@dataclass(frozen=True)
class Catalyst:
    """A CVD growth catalyst.

    Attributes
    ----------
    name:
        Catalyst label ("Fe", "Co", ...).
    activation_energy_ev:
        Apparent activation energy of the growth rate in eV.
    rate_prefactor:
        Growth-rate prefactor in metre per second (Arrhenius law).
    optimal_temperature:
        Temperature of best-quality growth in kelvin.
    quality_width:
        Width (kelvin) of the quality window around the optimum.
    cmos_compatible_material:
        Whether the catalyst material itself is acceptable in a CMOS BEOL
        flow (cobalt yes, iron generally no).
    """

    name: str
    activation_energy_ev: float
    rate_prefactor: float
    optimal_temperature: float
    quality_width: float
    cmos_compatible_material: bool

    def __post_init__(self) -> None:
        if self.activation_energy_ev <= 0:
            raise ValueError("activation energy must be positive")
        if self.rate_prefactor <= 0:
            raise ValueError("rate prefactor must be positive")
        if self.optimal_temperature <= 0 or self.quality_width <= 0:
            raise ValueError("temperatures must be positive")


FE_CATALYST = Catalyst(
    name="Fe",
    activation_energy_ev=1.2,
    rate_prefactor=5.0,
    optimal_temperature=celsius_to_kelvin(700.0),
    quality_width=120.0,
    cmos_compatible_material=False,
)
"""Iron catalyst (the paper's baseline single-MWCNT via growth)."""

CO_CATALYST = Catalyst(
    name="Co",
    activation_energy_ev=1.2,
    rate_prefactor=50.0,
    optimal_temperature=celsius_to_kelvin(500.0),
    quality_width=150.0,
    cmos_compatible_material=True,
)
"""Cobalt catalyst developed for CMOS-compatible growth (Section II.B)."""


def cmos_compatible(catalyst: Catalyst, growth_temperature: float) -> bool:
    """Whether a growth step is CMOS-BEOL compatible.

    Both conditions of Section II.B must hold: the catalyst material must be
    acceptable in a BEOL flow and the growth temperature must not exceed
    400 C.

    Parameters
    ----------
    catalyst:
        The catalyst used.
    growth_temperature:
        Growth temperature in kelvin.
    """
    if growth_temperature <= 0:
        raise ValueError("growth temperature must be positive")
    return catalyst.cmos_compatible_material and growth_temperature <= CMOS_BEOL_TEMPERATURE_LIMIT
