"""300 mm wafer-scale growth uniformity maps (paper Section II.B, Fig. 5).

Scaling CNT growth "from a lab to a fab scale" means demonstrating uniform
growth on 300 mm wafers.  The model below generates a wafer map of a growth
metric (CNT height / density / quality) with a radial non-uniformity
component (temperature and gas-flow gradients in the reactor) plus random
within-wafer noise, and computes the uniformity statistics a fab would report
for Fig. 5-type experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

WAFER_DIAMETER_300MM = 0.3
"""Standard production wafer diameter in metre."""


@dataclass(frozen=True)
class WaferMap:
    """A per-die map of a growth metric across a wafer.

    Attributes
    ----------
    x, y:
        Die-centre coordinates in metre (1-D arrays of equal length).
    values:
        Metric value per die (e.g. normalised CNT height).
    wafer_diameter:
        Wafer diameter in metre.
    """

    x: np.ndarray
    y: np.ndarray
    values: np.ndarray
    wafer_diameter: float = WAFER_DIAMETER_300MM

    @property
    def n_dies(self) -> int:
        """Number of dies on the map."""
        return int(self.values.size)

    @property
    def mean(self) -> float:
        """Mean metric value."""
        return float(self.values.mean())

    @property
    def std(self) -> float:
        """Standard deviation of the metric."""
        return float(self.values.std())

    @property
    def uniformity(self) -> float:
        """Within-wafer uniformity ``1 - (max - min) / (2 mean)`` (1 = perfect)."""
        value_range = self.values.max() - self.values.min()
        return float(1.0 - value_range / (2.0 * self.mean)) if self.mean > 0 else float("nan")

    @property
    def coefficient_of_variation(self) -> float:
        """sigma / mu of the metric across the wafer."""
        return self.std / self.mean if self.mean > 0 else float("nan")

    def radial_profile(self, n_bins: int = 10) -> tuple[np.ndarray, np.ndarray]:
        """Mean metric versus die radius (bin centres in metre, mean per bin)."""
        radius = np.sqrt(self.x**2 + self.y**2)
        edges = np.linspace(0.0, self.wafer_diameter / 2.0, n_bins + 1)
        centres = 0.5 * (edges[:-1] + edges[1:])
        means = np.full(n_bins, np.nan)
        for i in range(n_bins):
            mask = (radius >= edges[i]) & (radius < edges[i + 1])
            if mask.any():
                means[i] = float(self.values[mask].mean())
        return centres, means


def simulate_wafer_growth(
    die_pitch: float = 0.02,
    centre_value: float = 1.0,
    edge_drop: float = 0.1,
    noise: float = 0.02,
    wafer_diameter: float = WAFER_DIAMETER_300MM,
    edge_exclusion: float = 0.003,
    seed: int | None = 0,
) -> WaferMap:
    """Simulate a wafer map of CNT growth (normalised height or density).

    Parameters
    ----------
    die_pitch:
        Die spacing in metre.
    centre_value:
        Metric value at the wafer centre.
    edge_drop:
        Fractional drop of the metric at the wafer edge (radial quadratic
        profile); 0.1 means the edge grows 10 % less than the centre.
    noise:
        Relative random within-wafer noise (1-sigma).
    wafer_diameter:
        Wafer diameter in metre (0.3 for the paper's 300 mm demonstration).
    edge_exclusion:
        Edge-exclusion width in metre (no dies there).
    seed:
        Random seed.

    Returns
    -------
    WaferMap
    """
    if die_pitch <= 0 or wafer_diameter <= 0:
        raise ValueError("die pitch and wafer diameter must be positive")
    if not 0.0 <= edge_drop < 1.0:
        raise ValueError("edge drop must lie in [0, 1)")
    if noise < 0:
        raise ValueError("noise cannot be negative")

    radius_limit = wafer_diameter / 2.0 - edge_exclusion
    coords = np.arange(-wafer_diameter / 2.0, wafer_diameter / 2.0 + die_pitch / 2.0, die_pitch)
    xx, yy = np.meshgrid(coords, coords)
    xx = xx.ravel()
    yy = yy.ravel()
    radius = np.sqrt(xx**2 + yy**2)
    inside = radius <= radius_limit
    xx, yy, radius = xx[inside], yy[inside], radius[inside]

    rng = np.random.default_rng(seed)
    radial = centre_value * (1.0 - edge_drop * (radius / radius_limit) ** 2)
    values = radial * (1.0 + rng.normal(0.0, noise, size=radial.shape))

    return WaferMap(x=xx, y=yy, values=values, wafer_diameter=wafer_diameter)
