"""Internal versus external doping stability (paper Sections II.A and IV.B).

The paper reports that, according to simulation, *internal* doping (dopants
inserted through plasma-opened tube ends, Fig. 3) is more stable than
*external* doping (PtCl4 solution applied to the outside, Fig. 2d), and that
"stable doping of CNTs at the operating temperature of circuits still needs
to be developed".  The model below captures doping retention as a thermally
activated dopant-loss process whose activation energy depends on the dopant
site, so bake/operating-life retention curves and the internal-vs-external
comparison can be generated.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.constants import BOLTZMANN_EV
from repro.core.doping import DopantSite, DopingProfile

ATTEMPT_FREQUENCY = 1.0e13
"""Attempt frequency of the dopant-escape process in hertz."""

SITE_ACTIVATION_ENERGY_EV = {
    DopantSite.INTERNAL: 1.25,
    DopantSite.EXTERNAL: 1.05,
}
"""Escape activation energy by dopant site; the higher internal barrier is
what makes internal doping the more stable option."""


@dataclass(frozen=True)
class DopingStabilityModel:
    """Thermally activated dopant-loss model.

    Attributes
    ----------
    site:
        Dopant site (internal or external).
    activation_energy_ev:
        Escape activation energy in eV; defaults to the site's tabulated value.
    """

    site: DopantSite
    activation_energy_ev: float | None = None

    def __post_init__(self) -> None:
        if self.site is DopantSite.NONE:
            raise ValueError("an undoped profile has no stability to model")
        if self.activation_energy_ev is not None and self.activation_energy_ev <= 0:
            raise ValueError("activation energy must be positive")

    @property
    def energy_ev(self) -> float:
        """Effective activation energy in eV."""
        if self.activation_energy_ev is not None:
            return self.activation_energy_ev
        return SITE_ACTIVATION_ENERGY_EV[self.site]

    def escape_rate(self, temperature: float) -> float:
        """Dopant escape rate in 1/second at a temperature (kelvin)."""
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        return ATTEMPT_FREQUENCY * math.exp(-self.energy_ev / (BOLTZMANN_EV * temperature))

    def retention(self, time: float, temperature: float) -> float:
        """Fraction of dopants still in place after ``time`` seconds at ``temperature``."""
        if time < 0:
            raise ValueError("time cannot be negative")
        return math.exp(-self.escape_rate(temperature) * time)

    def lifetime(self, temperature: float, retention_target: float = 1.0 / math.e) -> float:
        """Time in seconds until retention falls to ``retention_target``."""
        if not 0.0 < retention_target < 1.0:
            raise ValueError("retention target must lie in (0, 1)")
        return -math.log(retention_target) / self.escape_rate(temperature)


def doping_retention(
    profile: DopingProfile, time: float, temperature: float
) -> DopingProfile:
    """Doping profile after thermal ageing.

    The channels per shell decay from the doped value back towards the
    pristine value of 2 as dopants escape; the returned profile reflects the
    remaining enhancement.

    Parameters
    ----------
    profile:
        Initial doping profile (must be doped).
    time:
        Ageing time in second.
    temperature:
        Ageing temperature in kelvin.
    """
    if not profile.is_doped:
        return profile
    model = DopingStabilityModel(site=profile.site)
    remaining = model.retention(time, temperature)
    pristine = 2.0
    channels = pristine + (profile.channels_per_shell - pristine) * remaining
    return DopingProfile(
        channels_per_shell=channels,
        dopant=profile.dopant,
        site=profile.site,
        fermi_shift_ev=profile.fermi_shift_ev * remaining,
    )


def internal_vs_external_advantage(temperature: float, time: float = 3600.0) -> float:
    """Retention advantage of internal over external doping (ratio >= 1).

    Evaluates the retention of both dopant sites after ``time`` seconds at
    ``temperature`` and returns internal / external -- the quantitative form
    of the paper's "internal doping of CNT is more stable than external
    doping" statement.
    """
    internal = DopingStabilityModel(DopantSite.INTERNAL).retention(time, temperature)
    external = DopingStabilityModel(DopantSite.EXTERNAL).retention(time, temperature)
    if external == 0.0:
        return float("inf")
    return internal / external
