"""Chirality and diameter sampling of as-grown CNT populations.

CVD growth does not control chirality: statistically two thirds of the tubes
are semiconducting and one third metallic (Section II.A calls this one of the
inherent challenges of the CVD method).  Diameters follow a log-normal
distribution around the catalyst-determined mean.  This module samples tube
populations with those statistics; they feed the variability analysis of
:mod:`repro.process.variability`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.atomistic.chirality import Chirality


@dataclass(frozen=True)
class ChiralityDistribution:
    """Statistical description of an as-grown CNT population.

    Attributes
    ----------
    mean_diameter:
        Mean tube (outer) diameter in metre.
    diameter_sigma:
        Log-normal shape parameter of the diameter distribution
        (dimensionless; ~0.15-0.3 for CVD growth).
    metallic_fraction:
        Probability that a tube (or a MWCNT shell) is metallic; 1/3 for
        uncontrolled growth, larger for sorted or effectively-metallic doped
        material.
    """

    mean_diameter: float = 7.5e-9
    diameter_sigma: float = 0.2
    metallic_fraction: float = 1.0 / 3.0

    def __post_init__(self) -> None:
        if self.mean_diameter <= 0:
            raise ValueError("mean diameter must be positive")
        if self.diameter_sigma < 0:
            raise ValueError("diameter sigma cannot be negative")
        if not 0.0 < self.metallic_fraction <= 1.0:
            raise ValueError("metallic fraction must lie in (0, 1]")


@dataclass(frozen=True)
class SampledTube:
    """One sampled tube of a population.

    Attributes
    ----------
    diameter:
        Outer diameter in metre.
    is_metallic:
        Whether the (outer shell of the) tube conducts like a metal.
    chirality:
        A representative (n, m) assignment of the requested family whose
        diameter is closest to the sampled one.
    """

    diameter: float
    is_metallic: bool
    chirality: Chirality


def sample_tubes(
    distribution: ChiralityDistribution,
    n_tubes: int,
    seed: int | None = 0,
    family: str = "zigzag",
) -> list[SampledTube]:
    """Sample a population of tubes from a chirality distribution.

    Parameters
    ----------
    distribution:
        Population statistics.
    n_tubes:
        Number of tubes to draw.
    seed:
        Random seed (None for non-reproducible sampling).
    family:
        Chirality family used for the representative (n, m) assignment.

    Returns
    -------
    list of SampledTube
    """
    if n_tubes < 1:
        raise ValueError("need at least one tube")
    rng = np.random.default_rng(seed)

    if distribution.diameter_sigma > 0:
        diameters = rng.lognormal(
            mean=np.log(distribution.mean_diameter),
            sigma=distribution.diameter_sigma,
            size=n_tubes,
        )
    else:
        diameters = np.full(n_tubes, distribution.mean_diameter)
    metallic_flags = rng.random(n_tubes) < distribution.metallic_fraction

    tubes = []
    for diameter, metallic in zip(diameters, metallic_flags):
        chirality = Chirality.from_diameter(float(diameter), family=family, metallic=bool(metallic))
        tubes.append(
            SampledTube(diameter=float(diameter), is_metallic=bool(metallic), chirality=chirality)
        )
    return tubes


def metallic_fraction_of(tubes: list[SampledTube]) -> float:
    """Observed metallic fraction of a sampled population."""
    if not tubes:
        raise ValueError("empty population")
    return sum(tube.is_metallic for tube in tubes) / len(tubes)


def diameter_statistics(tubes: list[SampledTube]) -> dict[str, float]:
    """Mean / standard deviation / coefficient of variation of the diameters."""
    if not tubes:
        raise ValueError("empty population")
    diameters = np.array([tube.diameter for tube in tubes])
    mean = float(diameters.mean())
    std = float(diameters.std())
    return {"mean": mean, "std": std, "cv": std / mean if mean > 0 else float("nan")}
