"""Defect density versus growth conditions and its electrical consequence.

Section II.A names the "presence of defects due to low-temperature growth
compared to the Arc-discharged method" as a main source of resistance
variation.  The model below maps growth quality (from
:mod:`repro.process.growth`) to a linear defect density along the tube and
from there to a defect-limited electron mean free path, which plugs directly
into the ``defect_mfp`` argument of the compact models.
"""

from __future__ import annotations

import math

REFERENCE_DEFECT_SPACING = 4.0e-6
"""Mean distance between scattering defects of a high-quality (quality = 1)
CVD tube, in metre (arc-discharge material would be better still)."""

DEFECT_SCATTERING_CROSS_SECTION = 1.0
"""Scattering effectiveness per defect (1 = every defect scatters)."""


def defect_density(quality: float) -> float:
    """Linear defect density in defects per metre for a growth quality.

    Quality 1 corresponds to the reference spacing; lower quality increases
    the density super-linearly because low-temperature growth both nucleates
    more defects and heals fewer of them.

    Parameters
    ----------
    quality:
        Growth quality in (0, 1] (see :func:`repro.process.growth.growth_quality`).
    """
    if not 0.0 < quality <= 1.0:
        raise ValueError("quality must lie in (0, 1]")
    return 1.0 / (REFERENCE_DEFECT_SPACING * quality**2)


def defect_limited_mfp(quality: float) -> float:
    """Defect-limited electron mean free path in metre for a growth quality.

    This is the value to pass as ``defect_mfp`` to the compact models; it is
    combined with the phonon-limited mean free path by Matthiessen's rule
    inside those models.
    """
    return 1.0 / (defect_density(quality) * DEFECT_SCATTERING_CROSS_SECTION)


def raman_d_over_g(quality: float) -> float:
    """Raman D/G intensity ratio corresponding to a growth quality.

    The D/G ratio is the standard spectroscopic defect metric the paper's
    SEM/Raman characterisation of the Co-catalyst growth uses; it scales with
    the defect density, normalised so quality 1 gives the ~0.1 ratio of good
    CVD material.
    """
    return 0.1 * defect_density(quality) / defect_density(1.0)


def quality_from_raman(d_over_g: float) -> float:
    """Invert :func:`raman_d_over_g`: growth quality from a measured D/G ratio."""
    if d_over_g <= 0:
        raise ValueError("D/G ratio must be positive")
    quality = math.sqrt(0.1 / d_over_g)
    return min(1.0, quality)
