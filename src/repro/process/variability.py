"""Monte-Carlo resistance variability of CNT interconnect populations.

Section II.A: chirality (2/3 semiconducting), growth defects and contact
quality "lead to the variation of resistance in the CNT interconnect device.
One way to overcome the variability of resistance is by doping."  This module
quantifies exactly that: it samples a population of MWCNT interconnects with
random diameter, metallic fraction of shells, defect density and contact
resistance, evaluates each with the compact model, and reports the resistance
distribution -- pristine versus doped (experiment E10).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import MFP_DIAMETER_RATIO, QUANTUM_CONDUCTANCE
from repro.core.doping import DopingProfile
from repro.core.mwcnt import MWCNTInterconnect
from repro.process.chirality_dist import ChiralityDistribution
from repro.process.defects import (
    DEFECT_SCATTERING_CROSS_SECTION,
    REFERENCE_DEFECT_SPACING,
    defect_limited_mfp,
)


@dataclass(frozen=True)
class VariabilityInputs:
    """Population statistics for the Monte-Carlo variability run.

    Attributes
    ----------
    length:
        Interconnect length in metre.
    distribution:
        Diameter / metallicity statistics of the grown tubes.
    growth_quality_mean, growth_quality_sigma:
        Mean and spread of the growth quality (defect level) per tube.
    contact_resistance_mean, contact_resistance_sigma:
        Log-normal parameters of the per-tube contact resistance in ohm.
    doping:
        Doping profile applied to every tube (pristine by default).
    effectively_metallic_when_doped:
        When True, doped semiconducting shells also conduct (charge-transfer
        doping moves their Fermi level into a band), which is the main
        mechanism by which doping suppresses variability.
    """

    length: float = 10.0e-6
    distribution: ChiralityDistribution = field(default_factory=ChiralityDistribution)
    growth_quality_mean: float = 0.7
    growth_quality_sigma: float = 0.15
    contact_resistance_mean: float = 20.0e3
    contact_resistance_sigma: float = 0.3
    doping: DopingProfile = field(default_factory=DopingProfile.pristine)
    effectively_metallic_when_doped: bool = True

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError("length must be positive")
        if not 0.0 < self.growth_quality_mean <= 1.0:
            raise ValueError("growth quality mean must lie in (0, 1]")
        if self.growth_quality_sigma < 0 or self.contact_resistance_sigma < 0:
            raise ValueError("spreads cannot be negative")
        if self.contact_resistance_mean < 0:
            raise ValueError("contact resistance cannot be negative")


@dataclass(frozen=True)
class VariabilityResult:
    """Resistance statistics of a simulated interconnect population.

    Attributes
    ----------
    resistances:
        Per-device resistance in ohm (only conducting devices).
    open_fraction:
        Fraction of devices that ended up effectively non-conducting because
        none of their shells came out metallic (and no doping rescued them).
    """

    resistances: np.ndarray
    open_fraction: float

    @property
    def mean(self) -> float:
        """Mean resistance in ohm."""
        return float(self.resistances.mean())

    @property
    def std(self) -> float:
        """Standard deviation of the resistance in ohm."""
        return float(self.resistances.std())

    @property
    def coefficient_of_variation(self) -> float:
        """sigma / mu of the resistance distribution."""
        return self.std / self.mean if self.mean > 0 else float("nan")

    @property
    def median(self) -> float:
        """Median resistance in ohm."""
        return float(np.median(self.resistances))

    def percentile(self, q: float) -> float:
        """q-th percentile of the resistance distribution in ohm."""
        return float(np.percentile(self.resistances, q))


def _sample_population(
    inputs: VariabilityInputs, n_devices: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Draw the per-device (diameter, growth quality, contact R) samples."""
    distribution = inputs.distribution
    diameters = rng.lognormal(
        mean=np.log(distribution.mean_diameter),
        sigma=max(distribution.diameter_sigma, 1e-9),
        size=n_devices,
    )
    qualities = np.clip(
        rng.normal(inputs.growth_quality_mean, inputs.growth_quality_sigma, n_devices),
        0.05,
        1.0,
    )
    contacts = rng.lognormal(
        mean=np.log(max(inputs.contact_resistance_mean, 1.0)),
        sigma=max(inputs.contact_resistance_sigma, 1e-9),
        size=n_devices,
    )
    return diameters, qualities, contacts


def resistance_variability(
    inputs: VariabilityInputs,
    n_devices: int = 500,
    seed: int | None = 0,
    vectorized: bool = True,
) -> VariabilityResult:
    """Monte-Carlo resistance distribution of a CNT interconnect population.

    Parameters
    ----------
    inputs:
        Population statistics.
    n_devices:
        Number of devices to sample.
    seed:
        Random seed (None for non-reproducible sampling).
    vectorized:
        Evaluate the whole population with numpy array arithmetic (default);
        ``False`` falls back to instantiating one
        :class:`~repro.core.mwcnt.MWCNTInterconnect` per device, the slow
        reference path the vectorised statistics are parity-tested against.
        Both paths consume the random stream identically, so they produce
        the same resistances for the same seed.

    Returns
    -------
    VariabilityResult
    """
    if n_devices < 2:
        raise ValueError("need at least two devices for statistics")
    rng = np.random.default_rng(seed)
    if vectorized:
        return _resistance_variability_vectorized(inputs, n_devices, rng)
    return _resistance_variability_objects(inputs, n_devices, rng)


def _resistance_variability_vectorized(
    inputs: VariabilityInputs, n_devices: int, rng: np.random.Generator
) -> VariabilityResult:
    """Whole-population evaluation of the compact model in numpy.

    Mirrors :func:`_resistance_variability_objects` expression by
    expression -- same shell-count rule, same Matthiessen combination, same
    conducting-shell rescale -- so the two paths agree to floating-point
    round-off.  The compact-model identities it relies on (all shells share
    the outer-diameter mean free path because ``per_shell_mfp=False``, so
    the intrinsic resistance collapses to ``1 / (Ns * g_shell)``) hold for
    the default :class:`~repro.core.mwcnt.MWCNTInterconnect` configuration
    the object path instantiates.
    """
    distribution = inputs.distribution
    diameters, qualities, contacts = _sample_population(inputs, n_devices, rng)

    # Shell count: the paper's simplified rule, Ns = diameter(nm) - 1.
    total_shells = np.maximum(1, np.rint(diameters * 1.0e9).astype(np.int64) - 1)

    doped = inputs.doping.is_doped and inputs.effectively_metallic_when_doped
    if doped:
        conducting_shells = total_shells
    else:
        # Identical stream to per-device scalar draws (numpy's Generator
        # consumes bits element-wise in order for array arguments).
        conducting_shells = rng.binomial(total_shells, distribution.metallic_fraction)

    # Defect-limited mean free path (repro.process.defects formulas, kept in
    # the same double-reciprocal form for bit-level agreement).
    defect_density = 1.0 / (REFERENCE_DEFECT_SPACING * qualities**2)
    defect_mfp = 1.0 / (defect_density * DEFECT_SCATTERING_CROSS_SECTION)
    phonon_mfp = MFP_DIAMETER_RATIO * diameters  # room temperature: ratio term is 1
    mfp = 1.0 / (1.0 / phonon_mfp + 1.0 / defect_mfp)

    # Per-shell conductance; with the shared mean free path the parallel
    # stack is Ns identical shells, so intrinsic R = 1 / (Ns * g_shell).
    per_channel = QUANTUM_CONDUCTANCE / (1.0 + inputs.length / mfp)
    shell_conductance = inputs.doping.channels_per_shell * per_channel
    intrinsic = 1.0 / (total_shells * shell_conductance)

    conducting = conducting_shells > 0
    open_devices = int(n_devices - np.count_nonzero(conducting))
    if open_devices == n_devices:
        raise RuntimeError("no conducting devices in the population")
    resistances = (
        contacts[conducting]
        + intrinsic[conducting] * total_shells[conducting] / conducting_shells[conducting]
    )
    return VariabilityResult(
        resistances=resistances, open_fraction=open_devices / n_devices
    )


def _resistance_variability_objects(
    inputs: VariabilityInputs, n_devices: int, rng: np.random.Generator
) -> VariabilityResult:
    """Reference implementation: one compact-model object per device."""
    distribution = inputs.distribution
    diameters, qualities, contacts = _sample_population(inputs, n_devices, rng)

    doped = inputs.doping.is_doped and inputs.effectively_metallic_when_doped
    resistances = []
    open_devices = 0
    for diameter, quality, contact in zip(diameters, qualities, contacts):
        device = MWCNTInterconnect(
            outer_diameter=float(diameter),
            length=inputs.length,
            doping=inputs.doping,
            contact_resistance=float(contact),
            defect_mfp=defect_limited_mfp(float(quality)),
        )
        total_shells = device.shell_count
        if doped:
            # Charge-transfer doping makes every shell conduct with Nc channels.
            conducting_shells = total_shells
        else:
            # Pristine: each shell is independently metallic with the given
            # probability -- the chirality lottery of CVD growth.
            conducting_shells = int(rng.binomial(total_shells, distribution.metallic_fraction))
        if conducting_shells == 0:
            open_devices += 1
            continue
        # The compact model assumes all shells conduct; rescale its intrinsic
        # (shell-parallel) part by the fraction that actually does.
        intrinsic = device.intrinsic_resistance * total_shells / conducting_shells
        resistances.append(float(contact) + intrinsic)

    if not resistances:
        raise RuntimeError("no conducting devices in the population")
    return VariabilityResult(
        resistances=np.asarray(resistances), open_fraction=open_devices / n_devices
    )


def doping_variability_comparison(
    length: float = 10.0e-6,
    doped_channels: float = 6.0,
    n_devices: int = 500,
    seed: int | None = 0,
    vectorized: bool = True,
) -> dict[str, VariabilityResult]:
    """Pristine versus doped variability, the paper's Section II.A argument.

    Returns a dictionary with ``"pristine"`` and ``"doped"`` results; the
    doped population should show both a lower mean resistance and a lower
    coefficient of variation, plus no open (semiconducting-only) devices.
    """
    pristine_inputs = VariabilityInputs(length=length)
    doped_inputs = VariabilityInputs(
        length=length, doping=DopingProfile.from_channels(doped_channels)
    )
    return {
        "pristine": resistance_variability(
            pristine_inputs, n_devices=n_devices, seed=seed, vectorized=vectorized
        ),
        "doped": resistance_variability(
            doped_inputs, n_devices=n_devices, seed=seed, vectorized=vectorized
        ),
    }
