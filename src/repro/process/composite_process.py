"""Cu-CNT composite fill process models (ELD versus ECD, paper Section II.C).

Two routes to impregnating CNT bundles with copper are studied in the paper:
electroless deposition (ELD -- low equipment effort, many chemicals, CMOS
compatibility questions) and electrochemical deposition (ECD -- needs a
conductive substrate, many control knobs).  Both were demonstrated for
vertically (VA) and horizontally aligned (HA) CNTs, with void-free filling
shown in Figs. 6-7.  The model below predicts the fill quality (void
fraction) of a process run as a function of bundle density and process
parameters, and hands the result to the electrical composite model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

from repro.core.composite import CuCNTComposite


class FillMethod(Enum):
    """Copper impregnation route."""

    ELECTROLESS = "ELD"
    ELECTROCHEMICAL = "ECD"


class BundleOrientation(Enum):
    """CNT bundle orientation relative to the substrate."""

    VERTICAL = "VA"
    HORIZONTAL = "HA"


@dataclass(frozen=True)
class FillProcess:
    """Parameters of a Cu impregnation run.

    Attributes
    ----------
    method:
        ELD or ECD.
    orientation:
        Vertically or horizontally aligned CNTs (HA bundles need the special
        CEA preparation step the paper mentions; without it the fill quality
        is degraded).
    cnt_volume_fraction:
        Volume fraction of CNTs in the bundle to be filled.
    deposition_time:
        Deposition time in second.
    ha_preparation:
        Whether the HA-CNT preparation step was applied (ignored for VA).
    conductive_seed:
        Whether a conductive seed/substrate is present (required by ECD).
    """

    method: FillMethod = FillMethod.ELECTROCHEMICAL
    orientation: BundleOrientation = BundleOrientation.VERTICAL
    cnt_volume_fraction: float = 0.3
    deposition_time: float = 1800.0
    ha_preparation: bool = True
    conductive_seed: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.cnt_volume_fraction < 1.0:
            raise ValueError("CNT volume fraction must lie in [0, 1)")
        if self.deposition_time <= 0:
            raise ValueError("deposition time must be positive")


@dataclass(frozen=True)
class FillResult:
    """Outcome of a fill simulation.

    Attributes
    ----------
    fill_quality:
        Fraction of the copper phase that is void-free, in (0, 1].
    void_fraction:
        ``1 - fill_quality``.
    cmos_compatibility_concern:
        True when the route raises the CMOS-compatibility question the paper
        flags (ELD chemistry).
    feasible:
        Whether the run is physically possible (ECD without a conductive
        seed is not).
    """

    fill_quality: float
    void_fraction: float
    cmos_compatibility_concern: bool
    feasible: bool


# Characteristic fill time constants in second; denser bundles fill more slowly.
_FILL_TIME_CONSTANT = {
    FillMethod.ELECTROLESS: 1200.0,
    FillMethod.ELECTROCHEMICAL: 700.0,
}


def simulate_fill(process: FillProcess) -> FillResult:
    """Predict the fill quality of a Cu impregnation run.

    The fill quality saturates exponentially with deposition time; dense
    bundles (high CNT volume fraction) and unprepared HA bundles fill less
    completely.  ECD without a conductive seed cannot deposit at all.
    """
    if process.method is FillMethod.ELECTROCHEMICAL and not process.conductive_seed:
        return FillResult(
            fill_quality=0.0,
            void_fraction=1.0,
            cmos_compatibility_concern=False,
            feasible=False,
        )

    time_constant = _FILL_TIME_CONSTANT[process.method]
    # Denser CNT networks slow the copper in-diffusion.
    time_constant *= 1.0 + 2.0 * process.cnt_volume_fraction
    saturation = 1.0 - math.exp(-process.deposition_time / time_constant)

    ceiling = 0.995
    if process.orientation is BundleOrientation.HORIZONTAL and not process.ha_preparation:
        ceiling = 0.80  # unprepared HA carpets trap voids

    fill_quality = max(1e-3, ceiling * saturation)
    return FillResult(
        fill_quality=fill_quality,
        void_fraction=1.0 - fill_quality,
        cmos_compatibility_concern=process.method is FillMethod.ELECTROLESS,
        feasible=True,
    )


def composite_from_process(
    process: FillProcess,
    width: float,
    height: float,
    length: float,
    **composite_kwargs,
) -> CuCNTComposite:
    """Build the electrical composite model corresponding to a fill run.

    Raises
    ------
    ValueError
        If the process is infeasible (e.g. ECD without a conductive seed).
    """
    result = simulate_fill(process)
    if not result.feasible:
        raise ValueError("the fill process is infeasible; no composite is formed")
    return CuCNTComposite(
        width=width,
        height=height,
        length=length,
        cnt_volume_fraction=process.cnt_volume_fraction,
        fill_quality=result.fill_quality,
        **composite_kwargs,
    )
