"""CVD growth model: yield, length, diameter and quality versus conditions.

The growth experiments of Section II (single MWCNT in 30 nm via holes from a
1 nm Fe film; cobalt-catalyst growth at reduced temperature; full 300 mm
wafer growth) are replaced by a compact stochastic model.  Growth rate
follows an Arrhenius law in temperature, growth quality peaks at the
catalyst's optimal temperature and falls off at the reduced CMOS-compatible
temperatures (the paper's Fig. 4 observation that lower temperature still
gives "good CNT growth" but with more defects), and via-hole nucleation yield
saturates with catalyst thickness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.constants import BOLTZMANN_EV
from repro.process.catalyst import CO_CATALYST, Catalyst
from repro.units import celsius_to_kelvin


@dataclass(frozen=True)
class GrowthRecipe:
    """A CVD growth recipe.

    Attributes
    ----------
    catalyst:
        Catalyst description.
    temperature:
        Growth temperature in kelvin.
    duration:
        Growth time in second.
    catalyst_thickness:
        Catalyst film thickness in metre (the paper uses ~1 nm).
    via_diameter:
        Via-hole diameter in metre for via growth (30 nm in the paper).
    """

    catalyst: Catalyst = CO_CATALYST
    temperature: float = celsius_to_kelvin(400.0)
    duration: float = 600.0
    catalyst_thickness: float = 1.0e-9
    via_diameter: float = 30.0e-9

    def __post_init__(self) -> None:
        if self.temperature <= 0:
            raise ValueError("temperature must be positive")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.catalyst_thickness <= 0:
            raise ValueError("catalyst thickness must be positive")
        if self.via_diameter <= 0:
            raise ValueError("via diameter must be positive")


@dataclass(frozen=True)
class GrowthResult:
    """Outcome of a growth simulation.

    Attributes
    ----------
    mean_length:
        Average CNT length grown in metre.
    mean_diameter:
        Average (outer) tube diameter in metre.
    quality:
        Growth quality in (0, 1]: 1 means defect-free, lower values mean more
        defects (shorter defect-limited mean free path).
    nucleation_yield:
        Fraction of via holes / catalyst sites that nucleated a tube.
    walls:
        Typical number of MWCNT walls.
    cmos_compatible:
        Whether the recipe satisfies the CMOS BEOL constraints.
    """

    mean_length: float
    mean_diameter: float
    quality: float
    nucleation_yield: float
    walls: int
    cmos_compatible: bool


def growth_rate(recipe: GrowthRecipe) -> float:
    """Arrhenius growth rate in metre per second for a recipe."""
    catalyst = recipe.catalyst
    return catalyst.rate_prefactor * math.exp(
        -catalyst.activation_energy_ev / (BOLTZMANN_EV * recipe.temperature)
    )


def growth_quality(recipe: GrowthRecipe) -> float:
    """Growth quality in (0, 1] -- a Gaussian window around the catalyst optimum.

    Quality never drops below a floor of 0.05 so that downstream models
    (defect-limited mean free path) stay finite even for very cold growth.
    """
    catalyst = recipe.catalyst
    deviation = (recipe.temperature - catalyst.optimal_temperature) / catalyst.quality_width
    return max(0.05, math.exp(-0.5 * deviation**2))


def nucleation_yield(recipe: GrowthRecipe) -> float:
    """Fraction of catalyst sites that nucleate a tube.

    Saturating in catalyst thickness (a ~1 nm film is near optimal) and
    reduced at low temperature where the catalyst does not fully dewet.
    """
    thickness_nm = recipe.catalyst_thickness * 1e9
    thickness_term = thickness_nm / (thickness_nm + 0.5)
    temperature_term = 1.0 / (
        1.0 + math.exp(-(recipe.temperature - celsius_to_kelvin(330.0)) / 40.0)
    )
    return min(1.0, thickness_term * temperature_term)


def expected_diameter(recipe: GrowthRecipe) -> float:
    """Mean outer diameter of tubes grown from a catalyst film (metre).

    Empirically the tube diameter tracks the catalyst nanoparticle size,
    which itself is several times the film thickness after dewetting; the
    paper's 1 nm film in a 30 nm via yields ~7.5 nm MWCNTs with 4-5 walls.
    """
    diameter = 7.5 * recipe.catalyst_thickness
    return min(diameter, recipe.via_diameter / 2.0)


def expected_walls(recipe: GrowthRecipe) -> int:
    """Typical number of MWCNT walls for the recipe (the paper reports 4-5)."""
    diameter_nm = expected_diameter(recipe) * 1e9
    return max(1, int(round(diameter_nm * 0.6)))


def simulate_growth(recipe: GrowthRecipe) -> GrowthResult:
    """Run the compact growth model for a recipe.

    Returns
    -------
    GrowthResult
        Deterministic expectations; per-tube randomness is the job of
        :mod:`repro.process.chirality_dist` and
        :mod:`repro.process.variability`.
    """
    from repro.process.catalyst import cmos_compatible

    rate = growth_rate(recipe)
    return GrowthResult(
        mean_length=rate * recipe.duration,
        mean_diameter=expected_diameter(recipe),
        quality=growth_quality(recipe),
        nucleation_yield=nucleation_yield(recipe),
        walls=expected_walls(recipe),
        cmos_compatible=cmos_compatible(recipe.catalyst, recipe.temperature),
    )


def growth_temperature_sweep(
    temperatures: list[float], catalyst: Catalyst = CO_CATALYST, duration: float = 600.0
) -> list[GrowthResult]:
    """Growth outcome versus temperature (the paper's Fig. 4 experiment)."""
    return [
        simulate_growth(GrowthRecipe(catalyst=catalyst, temperature=t, duration=duration))
        for t in temperatures
    ]
