"""Process & growth substrate: CVD growth, doping stability and variability.

Section II of the paper covers the process side of CNT interconnects: CVD
growth of single MWCNTs in via holes, the variability caused by chirality and
defects, internal versus external charge-transfer doping, CMOS-compatible
cobalt-catalyst growth below 400 C, 300 mm wafer-scale uniformity and Cu-CNT
composite formation.  These are physical experiments; the reproduction
replaces them with calibrated stochastic models that feed the same
downstream analyses (variability of resistance, doping stability, growth
windows, wafer maps):

* :mod:`repro.process.growth` -- CVD growth kinetics versus temperature and catalyst,
* :mod:`repro.process.catalyst` -- Fe / Co catalyst models and the CMOS budget check,
* :mod:`repro.process.chirality_dist` -- chirality and diameter sampling,
* :mod:`repro.process.defects` -- defect density versus growth temperature,
* :mod:`repro.process.doping_process` -- internal vs external doping stability,
* :mod:`repro.process.variability` -- Monte-Carlo resistance variability,
* :mod:`repro.process.wafer` -- 300 mm wafer uniformity maps,
* :mod:`repro.process.composite_process` -- ELD/ECD Cu fill of CNT bundles.
"""

from repro.process.growth import GrowthRecipe, GrowthResult, simulate_growth
from repro.process.catalyst import Catalyst, FE_CATALYST, CO_CATALYST, cmos_compatible
from repro.process.chirality_dist import ChiralityDistribution, sample_tubes
from repro.process.defects import defect_density, defect_limited_mfp
from repro.process.doping_process import DopingStabilityModel, doping_retention
from repro.process.variability import VariabilityResult, resistance_variability
from repro.process.wafer import WaferMap, simulate_wafer_growth
from repro.process.composite_process import FillProcess, simulate_fill

__all__ = [
    "GrowthRecipe",
    "GrowthResult",
    "simulate_growth",
    "Catalyst",
    "FE_CATALYST",
    "CO_CATALYST",
    "cmos_compatible",
    "ChiralityDistribution",
    "sample_tubes",
    "defect_density",
    "defect_limited_mfp",
    "DopingStabilityModel",
    "doping_retention",
    "VariabilityResult",
    "resistance_variability",
    "WaferMap",
    "simulate_wafer_growth",
    "FillProcess",
    "simulate_fill",
]
