"""Energy-efficiency design-space exploration (extension experiment E12).

The paper's abstract frames CNT interconnects as an enabler for "designing
energy efficient integrated circuits" and its conclusion asks for design
space exploration on top of the models.  This driver quantifies that: for a
sweep of interconnect lengths it finds the delay-optimal repeatered design of
copper, pristine MWCNT, doped MWCNT and Cu-CNT composite lines and reports
delay, switching energy and the energy-delay product, so the "who should wire
what length" question can be answered from the reproduction's models.
"""

from __future__ import annotations

from repro.circuit.repeaters import compare_repeated_lines, optimal_repeater_design
from repro.circuit.technology import NODE_45NM, TechnologyNode
from repro.core.composite import CuCNTComposite
from repro.core.copper import CopperInterconnect
from repro.core.doping import DopingProfile
from repro.core.line import InterconnectLine
from repro.core.mwcnt import MWCNTInterconnect

DEFAULT_LENGTHS_UM = (100.0, 200.0, 500.0, 1000.0, 2000.0)
DEFAULT_CONTACT_RESISTANCE = 20.0e3
"""Contact resistance assumed for the (optimistic, contact-engineered) CNT lines."""


def candidate_lines(
    length_um: float,
    technology: TechnologyNode = NODE_45NM,
    mwcnt_diameter_nm: float = 14.0,
    doped_channels: float = 10.0,
    contact_resistance: float = DEFAULT_CONTACT_RESISTANCE,
) -> dict[str, InterconnectLine]:
    """The four wiring candidates of the design-space study at one length."""
    length = length_um * 1e-6
    width = technology.wire_pitch / 2.0
    height = technology.metal_thickness

    copper = CopperInterconnect(width=width, height=height, length=length)
    pristine = MWCNTInterconnect(
        outer_diameter=mwcnt_diameter_nm * 1e-9,
        length=length,
        contact_resistance=contact_resistance,
    )
    doped = pristine.with_doping(DopingProfile.from_channels(doped_channels))
    composite = CuCNTComposite(
        width=width, height=height, length=length, cnt_volume_fraction=0.3
    )
    return {
        "Cu": InterconnectLine(copper),
        "MWCNT pristine": InterconnectLine(pristine),
        "MWCNT doped": InterconnectLine(doped),
        "Cu-CNT composite": InterconnectLine(composite),
    }


def run_energy_study(
    lengths_um: tuple[float, ...] = DEFAULT_LENGTHS_UM,
    technology: TechnologyNode = NODE_45NM,
    **candidate_kwargs,
) -> list[dict]:
    """Delay / energy / EDP of optimally repeated lines versus length and material.

    Returns one record per (length, material) with the optimal repeater
    design's figures of merit.
    """
    records: list[dict] = []
    for length_um in lengths_um:
        lines = candidate_lines(length_um, technology=technology, **candidate_kwargs)
        records.extend(compare_repeated_lines(lines, technology=technology))
    return records


def best_material_per_length(records: list[dict], metric: str = "edp_fJ_ns") -> dict[float, str]:
    """Winning material per length for a chosen metric (delay, energy or EDP)."""
    winners: dict[float, tuple[str, float]] = {}
    for record in records:
        length = record["length_um"]
        value = record[metric]
        if length not in winners or value < winners[length][1]:
            winners[length] = (record["line"], value)
    return {length: name for length, (name, _) in sorted(winners.items())}


def doping_energy_benefit(
    length_um: float = 500.0,
    technology: TechnologyNode = NODE_45NM,
    **candidate_kwargs,
) -> dict[str, float]:
    """Energy-delay comparison of pristine versus doped MWCNT at one length.

    Returns the ratios doped/pristine of delay, energy and EDP; doping should
    reduce delay and EDP at (essentially) unchanged switching energy, which is
    the energy-efficiency argument the paper's abstract gestures at.
    """
    lines = candidate_lines(length_um, technology=technology, **candidate_kwargs)
    pristine = optimal_repeater_design(lines["MWCNT pristine"], technology=technology)
    doped = optimal_repeater_design(lines["MWCNT doped"], technology=technology)
    return {
        "delay_ratio": doped.total_delay / pristine.total_delay,
        "energy_ratio": doped.total_energy / pristine.total_energy,
        "edp_ratio": doped.energy_delay_product / pristine.energy_delay_product,
    }
