"""Plain-text table rendering for benchmark and example output.

matplotlib is deliberately not a dependency of this reproduction; every
figure is regenerated as the underlying data series and rendered as an
aligned text table (or written to CSV by the caller).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def _format_value(value: object, precision: int) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e4 or magnitude < 1e-3:
            return f"{value:.{precision}e}"
        return f"{value:.{precision}g}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    precision: int = 4,
    title: str | None = None,
) -> str:
    """Render a list of dictionaries as an aligned text table.

    Parameters
    ----------
    rows:
        Records to print; all values are formatted with ``precision``
        significant digits.
    columns:
        Column order; defaults to the keys of the first row.
    precision:
        Significant digits for floating-point values.
    title:
        Optional title printed above the table.

    Returns
    -------
    str
        The rendered table (no trailing newline).
    """
    if not rows:
        return title or "(no data)"
    if columns is None:
        columns = list(rows[0].keys())

    header = [str(c) for c in columns]
    body = [[_format_value(row.get(c, ""), precision) for c in columns] for row in rows]
    widths = [
        max(len(header[i]), *(len(line[i]) for line in body)) for i in range(len(columns))
    ]

    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for line in body:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(line, widths)))
    return "\n".join(lines)


def format_comparison(
    label: str, measured: float, reference: object, unit: str = ""
) -> str:
    """One-line paper-vs-measured comparison for benchmark output."""
    if isinstance(reference, tuple) and len(reference) == 2:
        ref_text = f"{reference[0]:g}-{reference[1]:g}"
    else:
        ref_text = f"{reference:g}" if isinstance(reference, (int, float)) else str(reference)
    unit_text = f" {unit}" if unit else ""
    return f"{label}: measured {measured:.4g}{unit_text} (paper: {ref_text}{unit_text})"


def write_csv(rows: Iterable[Mapping[str, object]], path: str, columns: Sequence[str] | None = None) -> None:
    """Write records to a CSV file (header from ``columns`` or the first row)."""
    import csv

    rows = list(rows)
    if not rows:
        raise ValueError("no rows to write")
    if columns is None:
        columns = list(rows[0].keys())
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(columns), extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
