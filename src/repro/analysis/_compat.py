"""Deprecation plumbing for the legacy ``run_figX`` driver surface.

The experiment engine (:mod:`repro.api`) replaced the per-figure driver
functions as the public entry point.  The old names keep working -- every
benchmark and example written against them still runs -- but they emit a
:class:`DeprecationWarning` pointing at the engine equivalent.
"""

from __future__ import annotations

import warnings


def warn_legacy(old_name: str, experiment_name: str) -> None:
    """Emit the standard deprecation warning for a legacy driver function."""
    warnings.warn(
        f"{old_name}() is deprecated; use repro.api.Engine.run({experiment_name!r}) "
        f"or `python -m repro run {experiment_name}` instead",
        DeprecationWarning,
        stacklevel=3,
    )
