"""Experiment drivers that regenerate the paper's figures and tables.

Each module corresponds to one experiment of the DESIGN.md index (E1-E11)
and produces plain data structures (lists of dictionaries / dataclasses) that
the benchmarks print and the examples consume.  No plotting library is used;
:mod:`repro.analysis.report` renders results as text tables.
"""

from repro.analysis.paper_reference import PAPER_REFERENCE
from repro.analysis.report import format_table
from repro.analysis.fig8_conductance import run_fig8a, run_fig8c
from repro.analysis.fig9_conductivity import run_fig9
from repro.analysis.fig10_tcad import run_fig10_capacitance, run_fig10_resistance
from repro.analysis.fig12_delay_ratio import DelayRatioStudy, run_fig12, summarize_at_length
from repro.analysis.tables import ampacity_table, thermal_table, density_table

__all__ = [
    "PAPER_REFERENCE",
    "format_table",
    "run_fig8a",
    "run_fig8c",
    "run_fig9",
    "run_fig10_capacitance",
    "run_fig10_resistance",
    "DelayRatioStudy",
    "run_fig12",
    "summarize_at_length",
    "ampacity_table",
    "thermal_table",
    "density_table",
]
