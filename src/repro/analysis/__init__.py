"""Experiment drivers that regenerate the paper's figures and tables.

Each module corresponds to one experiment of the DESIGN.md index (E1-E11).
The drivers are registered into the experiment engine (:mod:`repro.api`):
figure/table registrations live in :mod:`repro.analysis.experiments`, the
extension studies (crosstalk, EM lifetime, variability, growth window,
composite trade-off, TLM, self-heating) in :mod:`repro.analysis.studies`.
All of them are normally executed through the engine::

    from repro.api import Engine

    records = Engine().run("table_ampacity").to_records()
    print(len(records))

The generated catalog of every registered experiment is
``docs/EXPERIMENTS.md`` (regenerate with ``python -m repro docs``).  The
historic ``run_figX`` entry points remain importable as thin
deprecation-shimmed wrappers around the registered implementations.  No
plotting library is used; :mod:`repro.analysis.report` renders results as
text tables.
"""

from repro.analysis.paper_reference import PAPER_REFERENCE
from repro.analysis.report import format_table
from repro.analysis.fig8_conductance import (
    fig8a_records,
    fig8c_result,
    run_fig8a,
    run_fig8c,
)
from repro.analysis.fig9_conductivity import fig9_records, run_fig9
from repro.analysis.fig10_tcad import (
    fig10_capacitance_summary,
    fig10_m1_m2_summary,
    fig10_resistance_summary,
    run_fig10_capacitance,
    run_fig10_resistance,
)
from repro.analysis.fig12_delay_ratio import (
    DelayRatioStudy,
    fig12_records,
    run_fig12,
    summarize_at_length,
)
from repro.analysis.tables import ampacity_table, thermal_table, density_table

__all__ = [
    "PAPER_REFERENCE",
    "format_table",
    "fig8a_records",
    "fig8c_result",
    "fig9_records",
    "fig10_capacitance_summary",
    "fig10_m1_m2_summary",
    "fig10_resistance_summary",
    "fig12_records",
    "run_fig8a",
    "run_fig8c",
    "run_fig9",
    "run_fig10_capacitance",
    "run_fig10_resistance",
    "DelayRatioStudy",
    "run_fig12",
    "summarize_at_length",
    "ampacity_table",
    "thermal_table",
    "density_table",
]
