"""Experiment E5 driver: the delay-ratio benchmark of Figs. 11-12.

The paper's headline circuit-level result: CMOS 45 nm inverters drive doped
MWCNT interconnects of outer diameter 10 / 14 / 22 nm and lengths up to
hundreds of micrometres; the propagation delay is compared between doped
(Nc = 3..10 channels per shell) and pristine (Nc = 2) lines.  Findings the
reproduction must match in shape:

* doping reduces delay, and the reduction grows with interconnect length;
* the reduction shrinks as the outer diameter grows (more shells means more
  channels even without doping), giving roughly 10 / 5 / 2 % at L = 500 um
  for D = 10 / 14 / 22 nm.

Calibration note: the paper's absolute percentages are only obtained when the
doping-independent series resistance (driver plus metal-CNT contact) is large
compared to the doped line resistance.  Measured MWCNT contact resistances
are in the 100 kOhm-1 MOhm range; the default here (250 kOhm per line, both
contacts combined) sits in that range and reproduces the paper's levels.  The
contact resistance is an explicit parameter so its effect can be ablated
(``benchmarks/bench_ablation_contact_resistance.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis._compat import warn_legacy
from repro.circuit.delay import (
    measure_inverter_line_delay,
    measure_inverter_line_delay_batch,
)
from repro.circuit.technology import NODE_45NM, TechnologyNode
from repro.core.doping import DopingProfile
from repro.core.line import InterconnectLine
from repro.core.mwcnt import MWCNTInterconnect

DEFAULT_CONTACT_RESISTANCE = 250.0e3
"""Default metal-CNT contact resistance per line in ohm (both contacts)."""


@dataclass(frozen=True)
class DelayRatioStudy:
    """Parameters of the Fig. 12 study.

    Attributes
    ----------
    diameters_nm:
        MWCNT outer diameters in nanometre (paper: 10, 14, 22).
    lengths_um:
        Interconnect lengths in micrometre.
    channel_counts:
        Channels per shell ``Nc`` (2 = pristine, paper sweeps up to 10).
    contact_resistance:
        Metal-CNT contact resistance per line in ohm.
    technology:
        Driver/receiver technology node (45 nm in the paper).
    use_transient:
        When True the delays come from the full MNA transient benchmark;
        when False the Elmore estimate is used (fast mode for sweeps and an
        ablation of the delay metric).
    n_segments:
        RC-ladder segments per line in transient mode.
    """

    diameters_nm: tuple[float, ...] = (10.0, 14.0, 22.0)
    lengths_um: tuple[float, ...] = (10.0, 50.0, 100.0, 200.0, 500.0, 1000.0)
    channel_counts: tuple[float, ...] = (2.0, 4.0, 6.0, 8.0, 10.0)
    contact_resistance: float = DEFAULT_CONTACT_RESISTANCE
    technology: TechnologyNode = field(default=NODE_45NM)
    use_transient: bool = True
    n_segments: int = 20

    def __post_init__(self) -> None:
        if 2.0 not in self.channel_counts:
            raise ValueError("the channel sweep must include the pristine value 2")
        if self.contact_resistance < 0:
            raise ValueError("contact resistance cannot be negative")


def _line(study: DelayRatioStudy, diameter_nm: float, length_um: float, channels: float) -> InterconnectLine:
    doping = DopingProfile.pristine() if channels == 2.0 else DopingProfile.from_channels(channels)
    tube = MWCNTInterconnect(
        outer_diameter=diameter_nm * 1e-9,
        length=length_um * 1e-6,
        doping=doping,
        contact_resistance=study.contact_resistance,
    )
    return InterconnectLine(tube, n_segments=study.n_segments)


def _delay(study: DelayRatioStudy, line: InterconnectLine) -> float:
    if study.use_transient:
        measurement = measure_inverter_line_delay(line, technology=study.technology)
        return measurement.propagation_delay
    from repro.circuit.inverter import Inverter

    driver = Inverter("drv", "a", "b", technology=study.technology)
    receiver = Inverter("rcv", "b", "c", technology=study.technology)
    return line.elmore_delay(
        driver_resistance=driver.output_resistance(),
        load_capacitance=receiver.input_capacitance,
    )


def fig12_records(study: DelayRatioStudy | None = None) -> list[dict]:
    """Run the Fig. 12 delay-ratio sweep.

    Returns one record per (diameter, length, Nc) with the absolute delay and
    the delay ratio relative to the pristine (Nc = 2) line of the same
    diameter and length.
    """
    study = study or DelayRatioStudy()
    records: list[dict] = []
    for diameter in study.diameters_nm:
        for length in study.lengths_um:
            pristine_delay = _delay(study, _line(study, diameter, length, 2.0))
            for channels in study.channel_counts:
                if channels == 2.0:
                    delay = pristine_delay
                else:
                    delay = _delay(study, _line(study, diameter, length, channels))
                records.append(
                    {
                        "diameter_nm": diameter,
                        "length_um": length,
                        "channels_per_shell": channels,
                        "delay_ps": delay * 1e12,
                        "delay_ratio": delay / pristine_delay,
                        "delay_reduction_percent": 100.0 * (1.0 - delay / pristine_delay),
                    }
                )
    return records


def fig12_records_batch(studies: list[DelayRatioStudy]) -> list[list[dict]]:
    """Run several Fig. 12 studies with their transients batched together.

    The records of each study are float-identical to :func:`fig12_records`
    of the same study: the exact set of lines the serial loop would simulate
    is enumerated first (one pristine line per (diameter, length) -- reused
    for ``Nc = 2`` exactly like the serial loop reuses it -- plus one line
    per doped channel count), all transients are evaluated through
    :func:`repro.circuit.delay.measure_inverter_line_delay_batch` (grouped
    by technology, since the driver/receiver cells depend on it), and the
    record arithmetic is then replayed from the measured delays.  This is
    what the engine's ``batch`` executor calls when several ``fig12`` sweep
    points are pending at once.
    """
    requests: dict[tuple, None] = {}
    for study_index, study in enumerate(studies):
        for diameter in study.diameters_nm:
            for length in study.lengths_um:
                requests.setdefault((study_index, diameter, length, 2.0))
                for channels in study.channel_counts:
                    if channels != 2.0:
                        requests.setdefault((study_index, diameter, length, channels))

    delays: dict[tuple, float] = {}
    transient_keys: dict[TechnologyNode, list[tuple]] = {}
    for key in requests:
        study = studies[key[0]]
        if study.use_transient:
            transient_keys.setdefault(study.technology, []).append(key)
        else:
            delays[key] = _delay(study, _line(study, *key[1:]))
    for technology, keys in transient_keys.items():
        lines = [
            _line(studies[study_index], diameter, length, channels)
            for study_index, diameter, length, channels in keys
        ]
        measurements = measure_inverter_line_delay_batch(lines, technology=technology)
        for key, measurement in zip(keys, measurements):
            delays[key] = measurement.propagation_delay

    all_records: list[list[dict]] = []
    for study_index, study in enumerate(studies):
        records: list[dict] = []
        for diameter in study.diameters_nm:
            for length in study.lengths_um:
                pristine_delay = delays[(study_index, diameter, length, 2.0)]
                for channels in study.channel_counts:
                    if channels == 2.0:
                        delay = pristine_delay
                    else:
                        delay = delays[(study_index, diameter, length, channels)]
                    records.append(
                        {
                            "diameter_nm": diameter,
                            "length_um": length,
                            "channels_per_shell": channels,
                            "delay_ps": delay * 1e12,
                            "delay_ratio": delay / pristine_delay,
                            "delay_reduction_percent": 100.0 * (1.0 - delay / pristine_delay),
                        }
                    )
        all_records.append(records)
    return all_records


def summarize_at_length(
    records: list[dict], length_um: float = 500.0, channels: float = 10.0
) -> dict[float, float]:
    """Delay reduction (fraction) per diameter at one length and doping level.

    This is the scalar the paper quotes: "dopants in MWCNT interconnects with
    DmaxCNT of 10, 14, and 22 nm reduce the propagation delay by 10, 5 and
    2 %, respectively, when L = 500 um".
    """
    summary: dict[float, float] = {}
    for record in records:
        if record["length_um"] == length_um and record["channels_per_shell"] == channels:
            summary[record["diameter_nm"]] = 1.0 - record["delay_ratio"]
    return summary


def doping_benefit_vs_length(
    records: list[dict], diameter_nm: float, channels: float = 10.0
) -> list[tuple[float, float]]:
    """(length_um, delay reduction) series for one diameter and doping level.

    The paper's observation "as L increases, doping becomes more effective in
    reducing delay" corresponds to this series being (weakly) increasing.
    """
    series = [
        (record["length_um"], 1.0 - record["delay_ratio"])
        for record in records
        if record["diameter_nm"] == diameter_nm and record["channels_per_shell"] == channels
    ]
    return sorted(series)


def run_fig12(study: DelayRatioStudy | None = None) -> list[dict]:
    """Deprecated driver entry point; use ``Engine.run("fig12")`` instead."""
    warn_legacy("run_fig12", "fig12")
    return fig12_records(study)
