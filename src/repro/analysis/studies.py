"""Registry definitions: the paper's extension studies as Experiments.

:mod:`repro.analysis.experiments` registers the figure and table drivers;
this module registers the *extension studies* the paper motivates in prose
-- crosstalk signal integrity, electromigration lifetime, growth and
variability, the Cu-CNT composite trade-off, TLM extraction and
self-heating.  They used to exist only as ad-hoc ``benchmarks/bench_*.py``
scripts; registering them makes every workload visible to
``python -m repro list``, sweepable, and memoised through the engine cache
(the benchmarks are now thin wrappers over these registrations).

Like the figure registrations, each experiment exposes a flat
JSON-serialisable parameter surface; composite driver arguments (material
objects, catalyst records, unit conversions) are assembled inside the
adapter functions.

Quick start::

    from repro.api import Engine

    lifetime = Engine().run("em_lifetime")
    print(lifetime.filter(material="cnt").column("lifetime_years"))

========================  ====================================================
``crosstalk``             TCAD-coupled victim/aggressor noise + delay push-out
``em_lifetime``           Black's-equation EM lifetime: Cu vs CNT vs composite
``variability``           pristine vs doped MWCNT resistance variability
``growth_window``         catalyst growth window vs temperature (Co or Fe)
``wafer_uniformity``      300 mm wafer CNT-growth uniformity map
``composite_tradeoff``    Cu-CNT composite resistivity/ampacity trade-off
``tlm``                   TLM contact/line-resistance extraction round trip
``self_heating``          self-consistent Joule heating of a CNT line
========================  ====================================================
"""

from __future__ import annotations

from repro.analysis.fig10_tcad import fig10_capacitance_summary
from repro.api.experiment import ParamSpec, register_experiment
from repro.characterization.electromigration import em_stress_test
from repro.characterization.tlm import tlm_round_trip
from repro.circuit.crosstalk import analyze_crosstalk
from repro.circuit.technology import node_by_name
from repro.constants import COPPER_EM_CURRENT_DENSITY_LIMIT
from repro.core import InterconnectLine, MWCNTInterconnect
from repro.core.composite import tradeoff_sweep
from repro.process.catalyst import CO_CATALYST, FE_CATALYST
from repro.process.growth import growth_temperature_sweep
from repro.process.variability import doping_variability_comparison
from repro.process.wafer import simulate_wafer_growth
from repro.thermal import self_heating_analysis
from repro.units import celsius_to_kelvin, nm, um

_TECHNOLOGIES = ("14nm", "45nm")


# --- crosstalk: circuit consequence of the Fig. 10a coupling ----------------


@register_experiment(
    "crosstalk",
    params=(
        ParamSpec("line_length_um", "float", 50.0, "coupled line length in um"),
        ParamSpec("outer_diameter_nm", "float", 10.0, "MWCNT outer diameter in nm"),
        ParamSpec("contact_resistance", "float", 100.0e3, "per-line contact resistance in ohm"),
        ParamSpec("n_segments", "int", 8, "RC-ladder segments per line"),
        ParamSpec("technology", "str", "14nm", "TCAD extraction node", choices=_TECHNOLOGIES),
        ParamSpec("resolution", "int", 3, "TCAD grid cells per feature"),
        ParamSpec("n_time_steps", "int", 400, "transient steps per simulation"),
    ),
    description="Victim/aggressor crosstalk noise from the TCAD-extracted coupling",
    tags=("extension", "circuit", "tcad"),
)
def _crosstalk(
    line_length_um: float,
    outer_diameter_nm: float,
    contact_resistance: float,
    n_segments: int,
    technology: str,
    resolution: int,
    n_time_steps: int,
) -> list[dict]:
    extraction = fig10_capacitance_summary(
        technology=node_by_name(technology), resolution=resolution
    )
    coupling_per_length = extraction["victim_coupling_af_per_um"] * 1e-18 / 1e-6
    coupling = coupling_per_length * um(line_length_um)
    line = InterconnectLine(
        MWCNTInterconnect(
            outer_diameter=nm(outer_diameter_nm),
            length=um(line_length_um),
            contact_resistance=contact_resistance,
        ),
        n_segments=n_segments,
    )
    result = analyze_crosstalk(line, coupling, n_time_steps=n_time_steps)
    return [
        {
            "coupling_af_per_um": extraction["victim_coupling_af_per_um"],
            "coupling_ff": coupling * 1e15,
            "noise_peak_fraction": result.noise_peak_fraction,
            "victim_delay_quiet_ps": result.victim_delay_quiet * 1e12,
            "victim_delay_opposite_ps": result.victim_delay_opposite_switching * 1e12,
            "delay_pushout": result.delay_pushout,
        }
    ]


# --- electromigration lifetime ----------------------------------------------


@register_experiment(
    "em_lifetime",
    params=(
        ParamSpec(
            "current_density",
            "float",
            COPPER_EM_CURRENT_DENSITY_LIMIT,
            "stress current density in A/m^2",
        ),
        ParamSpec("temperature", "float", 378.0, "stress temperature in kelvin"),
        ParamSpec("cnt_fraction", "float", 0.3, "CNT volume fraction of the composite"),
    ),
    description="Electromigration lifetimes (Black's equation): Cu vs CNT vs composite",
    tags=("extension", "reliability"),
)
def _em_lifetime(
    current_density: float, temperature: float, cnt_fraction: float
) -> list[dict]:
    records = []
    for material in ("copper", "cnt", "composite"):
        result = em_stress_test(
            material, current_density, temperature, cnt_fraction=cnt_fraction
        )
        records.append(
            {
                "material": material,
                "lifetime_years": result.lifetime_years,
                "immediate_failure": result.immediate_failure,
            }
        )
    copper_years = records[0]["lifetime_years"]
    for record in records:
        if copper_years > 0:
            gain = record["lifetime_years"] / copper_years
        elif record["lifetime_years"] > 0:
            gain = float("inf")  # finite lifetime vs instantly-failing copper
        else:
            gain = float("nan")  # 0/0: both failed immediately
        record["gain_over_copper"] = gain
    return records


# --- resistance variability --------------------------------------------------


@register_experiment(
    "variability",
    params=(
        ParamSpec("length_um", "float", 10.0, "interconnect length in um"),
        ParamSpec("doped_channels", "float", 6.0, "channels per shell of the doped population"),
        ParamSpec("n_devices", "int", 400, "Monte-Carlo population size"),
        ParamSpec("seed", "int", 0, "random seed"),
    ),
    description="Pristine vs doped MWCNT resistance variability (Section II.A)",
    tags=("extension", "process"),
)
def _variability(
    length_um: float, doped_channels: float, n_devices: int, seed: int
) -> list[dict]:
    comparison = doping_variability_comparison(
        length=um(length_um),
        doped_channels=doped_channels,
        n_devices=n_devices,
        seed=seed,
    )
    return [
        {
            "population": name,
            "mean_kohm": result.mean / 1e3,
            "std_kohm": result.std / 1e3,
            "median_kohm": result.median / 1e3,
            "coefficient_of_variation": result.coefficient_of_variation,
            "open_fraction": result.open_fraction,
        }
        for name, result in comparison.items()
    ]


# --- growth window and wafer scale -------------------------------------------

_CATALYSTS = {"Co": CO_CATALYST, "Fe": FE_CATALYST}


@register_experiment(
    "growth_window",
    params=(
        ParamSpec(
            "temperatures_c",
            "floats",
            (300.0, 350.0, 400.0, 450.0, 500.0, 600.0),
            "growth temperatures in Celsius",
        ),
        ParamSpec("catalyst", "str", "Co", "catalyst metal", choices=tuple(_CATALYSTS)),
        ParamSpec("duration_s", "float", 600.0, "growth duration in seconds"),
    ),
    description="Catalyst growth window vs temperature (Section II.B)",
    tags=("extension", "process"),
)
def _growth_window(
    temperatures_c: tuple[float, ...], catalyst: str, duration_s: float
) -> list[dict]:
    temperatures_k = [celsius_to_kelvin(t) for t in temperatures_c]
    results = growth_temperature_sweep(
        temperatures_k, catalyst=_CATALYSTS[catalyst], duration=duration_s
    )
    return [
        {
            "temperature_c": t_c,
            "mean_length_um": result.mean_length * 1e6,
            "quality": result.quality,
            "nucleation_yield": result.nucleation_yield,
            "walls": result.walls,
            "cmos_compatible": result.cmos_compatible,
        }
        for t_c, result in zip(temperatures_c, results)
    ]


@register_experiment(
    "wafer_uniformity",
    params=(
        ParamSpec("die_pitch_mm", "float", 20.0, "die spacing in mm"),
        ParamSpec("edge_drop", "float", 0.1, "fractional growth drop at the wafer edge"),
        ParamSpec("noise", "float", 0.02, "relative within-wafer noise (1-sigma)"),
        ParamSpec("seed", "int", 0, "random seed"),
    ),
    description="300 mm wafer CNT-growth uniformity map (Section II.B)",
    tags=("extension", "process"),
)
def _wafer_uniformity(
    die_pitch_mm: float, edge_drop: float, noise: float, seed: int
) -> list[dict]:
    wafer = simulate_wafer_growth(
        die_pitch=die_pitch_mm * 1e-3, edge_drop=edge_drop, noise=noise, seed=seed
    )
    return [
        {
            "n_dies": wafer.n_dies,
            "mean": wafer.mean,
            "uniformity": wafer.uniformity,
            "coefficient_of_variation": wafer.coefficient_of_variation,
        }
    ]


# --- Cu-CNT composite trade-off ----------------------------------------------


@register_experiment(
    "composite_tradeoff",
    params=(
        ParamSpec("width_nm", "float", 100.0, "line width in nm"),
        ParamSpec("height_nm", "float", 50.0, "line height in nm"),
        ParamSpec("length_um", "float", 10.0, "line length in um"),
        ParamSpec(
            "fractions",
            "floats",
            (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.7),
            "CNT volume fractions to sweep",
        ),
    ),
    description="Cu-CNT composite resistivity/ampacity trade-off (Section II.C)",
    tags=("extension", "compact-model"),
)
def _composite_tradeoff(
    width_nm: float, height_nm: float, length_um: float, fractions: tuple[float, ...]
) -> list[dict]:
    return tradeoff_sweep(nm(width_nm), nm(height_nm), um(length_um), list(fractions))


# --- TLM extraction round trip -----------------------------------------------


@register_experiment(
    "tlm",
    params=(
        ParamSpec("outer_diameter_nm", "float", 7.5, "MWCNT outer diameter in nm"),
        ParamSpec(
            "lengths_um",
            "floats",
            (1.0, 2.0, 5.0, 10.0, 20.0, 50.0),
            "TLM structure lengths in um",
        ),
        ParamSpec("contact_resistance", "float", 30.0e3, "true extrinsic contact resistance in ohm"),
        ParamSpec("noise_fraction", "float", 0.02, "relative measurement noise (1-sigma)"),
        ParamSpec("seed", "int", 0, "random seed"),
    ),
    description="TLM contact/line-resistance extraction round trip (Section IV.B)",
    tags=("extension", "characterization"),
)
def _tlm(
    outer_diameter_nm: float,
    lengths_um: tuple[float, ...],
    contact_resistance: float,
    noise_fraction: float,
    seed: int,
) -> list[dict]:
    device = MWCNTInterconnect(outer_diameter=nm(outer_diameter_nm), length=um(2.0))
    extraction, true_contact, true_slope = tlm_round_trip(
        device,
        [um(length) for length in lengths_um],
        contact_resistance,
        noise_fraction,
        seed,
    )
    return [
        {
            "contact_resistance_kohm": extraction.contact_resistance / 1e3,
            "true_contact_resistance_kohm": true_contact / 1e3,
            "resistance_per_length_kohm_per_um": extraction.resistance_per_length / 1e9,
            "true_resistance_per_length_kohm_per_um": true_slope / 1e9,
            "r_squared": extraction.r_squared,
            "transfer_length_um": extraction.transfer_length() * 1e6,
        }
    ]


# --- self-heating -------------------------------------------------------------


@register_experiment(
    "self_heating",
    params=(
        ParamSpec("outer_diameter_nm", "float", 10.0, "MWCNT outer diameter in nm"),
        ParamSpec("length_um", "float", 2.0, "line length in um"),
        ParamSpec("current_ua", "float", 50.0, "drive current in uA"),
        ParamSpec("substrate_coupling", "float", 0.05, "substrate heat-sinking fraction"),
    ),
    description="Self-consistent Joule heating of a current-carrying CNT line",
    tags=("extension", "thermal"),
)
def _self_heating(
    outer_diameter_nm: float,
    length_um: float,
    current_ua: float,
    substrate_coupling: float,
) -> list[dict]:
    result = self_heating_analysis(
        MWCNTInterconnect(outer_diameter=nm(outer_diameter_nm), length=um(length_um)),
        current_ua * 1e-6,
        substrate_coupling,
    )
    return [
        {
            "peak_temperature_k": result.peak_temperature,
            "average_temperature_k": result.average_temperature,
            "resistance_ohm": result.resistance,
            "dissipated_power_uw": result.dissipated_power * 1e6,
            "iterations": result.iterations,
            "converged": result.converged,
        }
    ]
