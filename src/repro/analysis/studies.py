"""Registry definitions: the paper's extension studies as Experiments.

:mod:`repro.analysis.experiments` registers the figure and table drivers;
this module registers the *extension studies* the paper motivates in prose
-- crosstalk signal integrity, electromigration lifetime, growth and
variability, the Cu-CNT composite trade-off, TLM extraction and
self-heating.  They used to exist only as ad-hoc ``benchmarks/bench_*.py``
scripts; registering them makes every workload visible to
``python -m repro list``, sweepable, and memoised through the engine cache
(the benchmarks are now thin wrappers over these registrations).

Like the figure registrations, each experiment exposes a flat
JSON-serialisable parameter surface; composite driver arguments (material
objects, catalyst records, unit conversions) are assembled inside the
adapter functions.

Quick start::

    from repro.api import Engine

    lifetime = Engine().run("em_lifetime")
    print(lifetime.filter(material="cnt").column("lifetime_years"))

========================  ====================================================
``crosstalk``             TCAD-coupled victim/aggressor noise + delay push-out
``em_lifetime``           Black's-equation EM lifetime: Cu vs CNT vs composite
``variability``           pristine vs doped MWCNT resistance variability
``growth_window``         catalyst growth window vs temperature (Co or Fe)
``wafer_uniformity``      300 mm wafer CNT-growth uniformity map
``composite_tradeoff``    Cu-CNT composite resistivity/ampacity trade-off
``tlm``                   TLM contact/line-resistance extraction round trip
``self_heating``          self-consistent Joule heating of a CNT line
========================  ====================================================

The paper's workloads chain -- process variability feeds device resistance,
which feeds circuit delay; the growth window feeds wafer-scale uniformity;
the composite trade-off is weighted by electromigration lifetime.  Those
links are modelled as *composite experiments* (``consumes=`` declarations
injecting the upstream ResultSet) and registered as named studies
(:func:`repro.api.study.register_study`, ``python -m repro study list``):

==========================  ==================================================
``variability_delay``       variability stats -> RC corner delay per population
``wafer_window``            growth window -> wafer uniformity at the optimum
``composite_fom``           trade-off x EM lifetime -> figure of merit
==========================  ==================================================
"""

from __future__ import annotations

import math

from repro.analysis.fig10_tcad import fig10_capacitance_summary
from repro.api.experiment import Consumes, OutputSpec, ParamSpec, register_experiment
from repro.api.study import register_study
from repro.api.sweep import SweepSpec
from repro.circuit.delay import measure_inverter_line_delay
from repro.core.line import DistributedRC
from repro.characterization.electromigration import em_stress_test
from repro.characterization.tlm import tlm_round_trip
from repro.circuit.crosstalk import analyze_crosstalk
from repro.circuit.technology import node_by_name
from repro.constants import COPPER_EM_CURRENT_DENSITY_LIMIT
from repro.core import InterconnectLine, MWCNTInterconnect
from repro.core.composite import tradeoff_sweep
from repro.process.catalyst import CO_CATALYST, FE_CATALYST
from repro.process.growth import growth_temperature_sweep
from repro.process.variability import doping_variability_comparison
from repro.process.wafer import simulate_wafer_growth
from repro.thermal import self_heating_analysis
from repro.units import celsius_to_kelvin, nm, um

_TECHNOLOGIES = ("14nm", "45nm")


# --- crosstalk: circuit consequence of the Fig. 10a coupling ----------------


@register_experiment(
    "crosstalk",
    params=(
        ParamSpec("line_length_um", "float", 50.0, "coupled line length in um"),
        ParamSpec("outer_diameter_nm", "float", 10.0, "MWCNT outer diameter in nm"),
        ParamSpec("contact_resistance", "float", 100.0e3, "per-line contact resistance in ohm"),
        ParamSpec("n_segments", "int", 8, "RC-ladder segments per line"),
        ParamSpec("technology", "str", "14nm", "TCAD extraction node", choices=_TECHNOLOGIES),
        ParamSpec("resolution", "int", 3, "TCAD grid cells per feature"),
        ParamSpec("n_time_steps", "int", 400, "transient steps per simulation"),
    ),
    description="Victim/aggressor crosstalk noise from the TCAD-extracted coupling",
    tags=("extension", "circuit", "tcad"),
)
def _crosstalk(
    line_length_um: float,
    outer_diameter_nm: float,
    contact_resistance: float,
    n_segments: int,
    technology: str,
    resolution: int,
    n_time_steps: int,
) -> list[dict]:
    extraction = fig10_capacitance_summary(
        technology=node_by_name(technology), resolution=resolution
    )
    coupling_per_length = extraction["victim_coupling_af_per_um"] * 1e-18 / 1e-6
    coupling = coupling_per_length * um(line_length_um)
    line = InterconnectLine(
        MWCNTInterconnect(
            outer_diameter=nm(outer_diameter_nm),
            length=um(line_length_um),
            contact_resistance=contact_resistance,
        ),
        n_segments=n_segments,
    )
    result = analyze_crosstalk(line, coupling, n_time_steps=n_time_steps)
    return [
        {
            "coupling_af_per_um": extraction["victim_coupling_af_per_um"],
            "coupling_ff": coupling * 1e15,
            "noise_peak_fraction": result.noise_peak_fraction,
            "victim_delay_quiet_ps": result.victim_delay_quiet * 1e12,
            "victim_delay_opposite_ps": result.victim_delay_opposite_switching * 1e12,
            "delay_pushout": result.delay_pushout,
        }
    ]


# --- electromigration lifetime ----------------------------------------------


@register_experiment(
    "em_lifetime",
    params=(
        ParamSpec(
            "current_density",
            "float",
            COPPER_EM_CURRENT_DENSITY_LIMIT,
            "stress current density in A/m^2",
        ),
        ParamSpec("temperature", "float", 378.0, "stress temperature in kelvin"),
        ParamSpec("cnt_fraction", "float", 0.3, "CNT volume fraction of the composite"),
    ),
    description="Electromigration lifetimes (Black's equation): Cu vs CNT vs composite",
    tags=("extension", "reliability"),
    outputs=(
        OutputSpec("material", "str", "stressed material (copper / cnt / composite)"),
        OutputSpec("lifetime_years", "float", "Black's-equation median lifetime"),
        OutputSpec("immediate_failure", "bool", "stress exceeds the ampacity limit"),
        OutputSpec("gain_over_copper", "float", "lifetime ratio over the Cu reference"),
    ),
)
def _em_lifetime(
    current_density: float, temperature: float, cnt_fraction: float
) -> list[dict]:
    records = []
    for material in ("copper", "cnt", "composite"):
        result = em_stress_test(
            material, current_density, temperature, cnt_fraction=cnt_fraction
        )
        records.append(
            {
                "material": material,
                "lifetime_years": result.lifetime_years,
                "immediate_failure": result.immediate_failure,
            }
        )
    copper_years = records[0]["lifetime_years"]
    for record in records:
        if copper_years > 0:
            gain = record["lifetime_years"] / copper_years
        elif record["lifetime_years"] > 0:
            gain = float("inf")  # finite lifetime vs instantly-failing copper
        else:
            gain = float("nan")  # 0/0: both failed immediately
        record["gain_over_copper"] = gain
    return records


# --- resistance variability --------------------------------------------------


@register_experiment(
    "variability",
    params=(
        ParamSpec("length_um", "float", 10.0, "interconnect length in um"),
        ParamSpec("doped_channels", "float", 6.0, "channels per shell of the doped population"),
        ParamSpec("n_devices", "int", 400, "Monte-Carlo population size"),
        ParamSpec("seed", "int", 0, "random seed"),
    ),
    description="Pristine vs doped MWCNT resistance variability (Section II.A)",
    tags=("extension", "process"),
    outputs=(
        OutputSpec("population", "str", "population label (pristine / doped)"),
        OutputSpec("mean_kohm", "float", "mean resistance in kohm"),
        OutputSpec("std_kohm", "float", "resistance standard deviation in kohm"),
        OutputSpec("median_kohm", "float", "median resistance in kohm"),
        OutputSpec("coefficient_of_variation", "float", "sigma/mu of the population"),
        OutputSpec("open_fraction", "float", "fraction of open (unusable) devices"),
    ),
)
def _variability(
    length_um: float, doped_channels: float, n_devices: int, seed: int
) -> list[dict]:
    comparison = doping_variability_comparison(
        length=um(length_um),
        doped_channels=doped_channels,
        n_devices=n_devices,
        seed=seed,
    )
    return [
        {
            "population": name,
            "mean_kohm": result.mean / 1e3,
            "std_kohm": result.std / 1e3,
            "median_kohm": result.median / 1e3,
            "coefficient_of_variation": result.coefficient_of_variation,
            "open_fraction": result.open_fraction,
        }
        for name, result in comparison.items()
    ]


# --- growth window and wafer scale -------------------------------------------

_CATALYSTS = {"Co": CO_CATALYST, "Fe": FE_CATALYST}


@register_experiment(
    "growth_window",
    params=(
        ParamSpec(
            "temperatures_c",
            "floats",
            (300.0, 350.0, 400.0, 450.0, 500.0, 600.0),
            "growth temperatures in Celsius",
        ),
        ParamSpec("catalyst", "str", "Co", "catalyst metal", choices=tuple(_CATALYSTS)),
        ParamSpec("duration_s", "float", 600.0, "growth duration in seconds"),
    ),
    description="Catalyst growth window vs temperature (Section II.B)",
    tags=("extension", "process"),
    outputs=(
        OutputSpec("temperature_c", "float", "growth temperature in Celsius"),
        OutputSpec("mean_length_um", "float", "mean CNT length in um"),
        OutputSpec("quality", "float", "growth quality score in [0, 1]"),
        OutputSpec("nucleation_yield", "float", "nucleated-catalyst fraction"),
        OutputSpec("walls", "int", "expected CNT wall count"),
        OutputSpec("cmos_compatible", "bool", "within the BEOL thermal budget"),
    ),
)
def _growth_window(
    temperatures_c: tuple[float, ...], catalyst: str, duration_s: float
) -> list[dict]:
    temperatures_k = [celsius_to_kelvin(t) for t in temperatures_c]
    results = growth_temperature_sweep(
        temperatures_k, catalyst=_CATALYSTS[catalyst], duration=duration_s
    )
    return [
        {
            "temperature_c": t_c,
            "mean_length_um": result.mean_length * 1e6,
            "quality": result.quality,
            "nucleation_yield": result.nucleation_yield,
            "walls": result.walls,
            "cmos_compatible": result.cmos_compatible,
        }
        for t_c, result in zip(temperatures_c, results)
    ]


@register_experiment(
    "wafer_uniformity",
    params=(
        ParamSpec("die_pitch_mm", "float", 20.0, "die spacing in mm"),
        ParamSpec("edge_drop", "float", 0.1, "fractional growth drop at the wafer edge"),
        ParamSpec("noise", "float", 0.02, "relative within-wafer noise (1-sigma)"),
        ParamSpec("seed", "int", 0, "random seed"),
    ),
    description="300 mm wafer CNT-growth uniformity map (Section II.B)",
    tags=("extension", "process"),
)
def _wafer_uniformity(
    die_pitch_mm: float, edge_drop: float, noise: float, seed: int
) -> list[dict]:
    wafer = simulate_wafer_growth(
        die_pitch=die_pitch_mm * 1e-3, edge_drop=edge_drop, noise=noise, seed=seed
    )
    return [
        {
            "n_dies": wafer.n_dies,
            "mean": wafer.mean,
            "uniformity": wafer.uniformity,
            "coefficient_of_variation": wafer.coefficient_of_variation,
        }
    ]


# --- Cu-CNT composite trade-off ----------------------------------------------


@register_experiment(
    "composite_tradeoff",
    params=(
        ParamSpec("width_nm", "float", 100.0, "line width in nm"),
        ParamSpec("height_nm", "float", 50.0, "line height in nm"),
        ParamSpec("length_um", "float", 10.0, "line length in um"),
        ParamSpec(
            "fractions",
            "floats",
            (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.7),
            "CNT volume fractions to sweep",
        ),
    ),
    description="Cu-CNT composite resistivity/ampacity trade-off (Section II.C)",
    tags=("extension", "compact-model"),
    outputs=(
        OutputSpec("cnt_volume_fraction", "float", "CNT volume fraction"),
        OutputSpec("effective_resistivity", "float", "composite resistivity in ohm m"),
        OutputSpec("resistivity_penalty", "float", "resistivity ratio over pure Cu"),
        OutputSpec("ampacity_gain", "float", "max-current-density gain over pure Cu"),
        OutputSpec("max_current_density", "float", "composite ampacity in A/m^2"),
    ),
)
def _composite_tradeoff(
    width_nm: float, height_nm: float, length_um: float, fractions: tuple[float, ...]
) -> list[dict]:
    return tradeoff_sweep(nm(width_nm), nm(height_nm), um(length_um), list(fractions))


# --- TLM extraction round trip -----------------------------------------------


@register_experiment(
    "tlm",
    params=(
        ParamSpec("outer_diameter_nm", "float", 7.5, "MWCNT outer diameter in nm"),
        ParamSpec(
            "lengths_um",
            "floats",
            (1.0, 2.0, 5.0, 10.0, 20.0, 50.0),
            "TLM structure lengths in um",
        ),
        ParamSpec("contact_resistance", "float", 30.0e3, "true extrinsic contact resistance in ohm"),
        ParamSpec("noise_fraction", "float", 0.02, "relative measurement noise (1-sigma)"),
        ParamSpec("seed", "int", 0, "random seed"),
    ),
    description="TLM contact/line-resistance extraction round trip (Section IV.B)",
    tags=("extension", "characterization"),
)
def _tlm(
    outer_diameter_nm: float,
    lengths_um: tuple[float, ...],
    contact_resistance: float,
    noise_fraction: float,
    seed: int,
) -> list[dict]:
    device = MWCNTInterconnect(outer_diameter=nm(outer_diameter_nm), length=um(2.0))
    extraction, true_contact, true_slope = tlm_round_trip(
        device,
        [um(length) for length in lengths_um],
        contact_resistance,
        noise_fraction,
        seed,
    )
    return [
        {
            "contact_resistance_kohm": extraction.contact_resistance / 1e3,
            "true_contact_resistance_kohm": true_contact / 1e3,
            "resistance_per_length_kohm_per_um": extraction.resistance_per_length / 1e9,
            "true_resistance_per_length_kohm_per_um": true_slope / 1e9,
            "r_squared": extraction.r_squared,
            "transfer_length_um": extraction.transfer_length() * 1e6,
        }
    ]


# --- self-heating -------------------------------------------------------------


@register_experiment(
    "self_heating",
    params=(
        ParamSpec("outer_diameter_nm", "float", 10.0, "MWCNT outer diameter in nm"),
        ParamSpec("length_um", "float", 2.0, "line length in um"),
        ParamSpec("current_ua", "float", 50.0, "drive current in uA"),
        ParamSpec("substrate_coupling", "float", 0.05, "substrate heat-sinking fraction"),
    ),
    description="Self-consistent Joule heating of a current-carrying CNT line",
    tags=("extension", "thermal"),
)
def _self_heating(
    outer_diameter_nm: float,
    length_um: float,
    current_ua: float,
    substrate_coupling: float,
) -> list[dict]:
    result = self_heating_analysis(
        MWCNTInterconnect(outer_diameter=nm(outer_diameter_nm), length=um(length_um)),
        current_ua * 1e-6,
        substrate_coupling,
    )
    return [
        {
            "peak_temperature_k": result.peak_temperature,
            "average_temperature_k": result.average_temperature,
            "resistance_ohm": result.resistance,
            "dissipated_power_uw": result.dissipated_power * 1e6,
            "iterations": result.iterations,
            "converged": result.converged,
        }
    ]


# --- composite pipelines ------------------------------------------------------
#
# The experiments below consume upstream experiments' ResultSets instead of
# re-deriving them inline: the engine runs the upstream stage first (cached,
# shared between sweep points through the parameter bindings) and injects the
# artifact.  Each is registered as a named Study with a default sweep, so
# `python -m repro study run <name>` executes the whole DAG.


@register_experiment(
    "variability_delay",
    params=(
        ParamSpec("length_um", "float", 10.0, "interconnect length in um"),
        ParamSpec("outer_diameter_nm", "float", 10.0, "MWCNT outer diameter in nm"),
        ParamSpec("n_sigma", "float", 1.0, "variability corner in population sigmas"),
        ParamSpec("n_segments", "int", 8, "RC-ladder segments of the delay line"),
        ParamSpec("n_time_steps", "int", 300, "transient steps per delay simulation"),
    ),
    description="Circuit delay corners from the upstream variability population",
    tags=("study", "process", "circuit"),
    outputs=(
        OutputSpec("population", "str", "upstream population (pristine / doped)"),
        OutputSpec("corner", "str", "variability corner (fast / mean / slow)"),
        OutputSpec("resistance_kohm", "float", "corner line resistance in kohm"),
        OutputSpec("delay_ps", "float", "propagation delay at the corner in ps"),
        OutputSpec("delay_spread", "float", "corner delay / mean-corner delay"),
    ),
    consumes=(
        Consumes(
            "variability",
            inject="variability_result",
            bind={"length_um": "length_um"},
        ),
    ),
)
def _variability_delay(
    variability_result,
    length_um: float,
    outer_diameter_nm: float,
    n_sigma: float,
    n_segments: int,
    n_time_steps: int,
) -> list[dict]:
    """Circuit consequence of process variability: delay corners per population.

    The upstream ``variability`` experiment characterises the resistance
    distribution of a device population; this stage turns each population's
    mean +/- ``n_sigma`` corners into distributed-RC lines (capacitance from
    the MWCNT compact model) and measures the Fig. 11 inverter-line-inverter
    propagation delay at each corner.
    """
    device = MWCNTInterconnect(
        outer_diameter=nm(outer_diameter_nm), length=um(length_um)
    )
    capacitance = device.capacitance_per_length * um(length_um)
    records: list[dict] = []
    for row in variability_result.require_columns(
        "population", "mean_kohm", "std_kohm"
    ).to_records():
        mean_ohm = row["mean_kohm"] * 1e3
        sigma_ohm = row["std_kohm"] * 1e3
        corners = {
            "fast": max(mean_ohm - n_sigma * sigma_ohm, 0.05 * mean_ohm),
            "mean": mean_ohm,
            "slow": mean_ohm + n_sigma * sigma_ohm,
        }
        delays = {
            corner: measure_inverter_line_delay(
                DistributedRC(
                    total_resistance=resistance,
                    total_capacitance=capacitance,
                    n_segments=n_segments,
                ),
                n_time_steps=n_time_steps,
            ).propagation_delay
            for corner, resistance in corners.items()
        }
        for corner in ("fast", "mean", "slow"):
            records.append(
                {
                    "population": row["population"],
                    "corner": corner,
                    "resistance_kohm": corners[corner] / 1e3,
                    "delay_ps": delays[corner] * 1e12,
                    "delay_spread": delays[corner] / delays["mean"],
                }
            )
    return records


@register_experiment(
    "wafer_window",
    params=(
        ParamSpec("catalyst", "str", "Co", "catalyst metal", choices=tuple(_CATALYSTS)),
        ParamSpec("die_pitch_mm", "float", 20.0, "die spacing in mm"),
        ParamSpec("base_edge_drop", "float", 0.05, "edge drop at perfect nucleation"),
        ParamSpec("noise_floor", "float", 0.005, "wafer noise floor at quality 1"),
        ParamSpec("seed", "int", 0, "random seed of the wafer map"),
    ),
    description="Wafer-scale uniformity at the upstream growth window's optimum",
    tags=("study", "process"),
    outputs=(
        OutputSpec("temperature_c", "float", "selected growth temperature in Celsius"),
        OutputSpec("quality", "float", "growth quality at the selected temperature"),
        OutputSpec("nucleation_yield", "float", "nucleation yield at the optimum"),
        OutputSpec("cmos_compatible", "bool", "selected point is BEOL compatible"),
        OutputSpec("n_dies", "int", "dies on the 300 mm wafer map"),
        OutputSpec("uniformity", "float", "within-wafer uniformity (1 = perfect)"),
        OutputSpec("coefficient_of_variation", "float", "wafer-map sigma/mu"),
    ),
    consumes=(
        Consumes(
            "growth_window",
            inject="growth_result",
            bind={"catalyst": "catalyst"},
        ),
    ),
)
def _wafer_window(
    growth_result,
    catalyst: str,
    die_pitch_mm: float,
    base_edge_drop: float,
    noise_floor: float,
    seed: int,
) -> list[dict]:
    """Wafer uniformity evaluated at the best point of the growth window.

    Selects the highest-quality CMOS-compatible temperature from the upstream
    ``growth_window`` sweep (falling back to the overall best when nothing is
    BEOL compatible) and simulates the 300 mm wafer map there: the radial
    edge drop grows with the nucleation shortfall and the within-wafer noise
    with the quality shortfall, so a poor window shows up as a poor wafer.
    """
    rows = growth_result.require_columns(
        "temperature_c", "quality", "nucleation_yield", "cmos_compatible"
    ).to_records()
    compatible = [row for row in rows if row["cmos_compatible"]]
    best = max(compatible or rows, key=lambda row: row["quality"])
    edge_drop = base_edge_drop * (1.0 + (1.0 - best["nucleation_yield"]))
    noise = noise_floor + 0.08 * (1.0 - best["quality"])
    wafer = simulate_wafer_growth(
        die_pitch=die_pitch_mm * 1e-3, edge_drop=edge_drop, noise=noise, seed=seed
    )
    return [
        {
            "temperature_c": best["temperature_c"],
            "quality": best["quality"],
            "nucleation_yield": best["nucleation_yield"],
            "cmos_compatible": bool(best["cmos_compatible"]),
            "n_dies": wafer.n_dies,
            "uniformity": wafer.uniformity,
            "coefficient_of_variation": wafer.coefficient_of_variation,
        }
    ]


@register_experiment(
    "composite_fom",
    params=(
        ParamSpec("width_nm", "float", 100.0, "line width in nm"),
        ParamSpec("height_nm", "float", 50.0, "line height in nm"),
        ParamSpec("length_um", "float", 10.0, "line length in um"),
        ParamSpec(
            "fractions",
            "floats",
            (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.7),
            "CNT volume fractions to evaluate",
        ),
        ParamSpec("lifetime_weight", "float", 0.5, "EM-lifetime exponent of the FoM"),
    ),
    description="EM-lifetime-weighted figure of merit over the composite trade-off",
    tags=("study", "compact-model", "reliability"),
    outputs=(
        OutputSpec("cnt_volume_fraction", "float", "CNT volume fraction"),
        OutputSpec("resistivity_penalty", "float", "resistivity ratio over pure Cu"),
        OutputSpec("ampacity_gain", "float", "ampacity gain over pure Cu"),
        OutputSpec("lifetime_gain", "float", "interpolated EM lifetime gain over Cu"),
        OutputSpec("figure_of_merit", "float", "ampacity x lifetime^w / resistivity"),
    ),
    consumes=(
        Consumes(
            "composite_tradeoff",
            inject="tradeoff_result",
            bind={
                "width_nm": "width_nm",
                "height_nm": "height_nm",
                "length_um": "length_um",
                "fractions": "fractions",
            },
        ),
        Consumes("em_lifetime", inject="lifetime_result"),
    ),
)
def _composite_fom(
    tradeoff_result,
    lifetime_result,
    width_nm: float,
    height_nm: float,
    length_um: float,
    fractions: tuple[float, ...],
    lifetime_weight: float,
) -> list[dict]:
    """Composite trade-off re-scored with the upstream EM-lifetime gains.

    Consumes two artifacts: the resistivity/ampacity trade-off curve and the
    Cu/CNT electromigration lifetimes.  The lifetime gain at each volume
    fraction is log-interpolated between the pure-Cu and pure-CNT endpoints
    (both materials follow Black's equation, so lifetime is exponential in
    composition) and folded into a single figure of merit
    ``ampacity_gain * lifetime_gain**w / resistivity_penalty``.
    """
    lifetimes = {
        row["material"]: row["lifetime_years"]
        for row in lifetime_result.require_columns(
            "material", "lifetime_years"
        ).to_records()
    }
    copper_years = lifetimes.get("copper", 0.0)
    cnt_years = lifetimes.get("cnt", 0.0)
    records: list[dict] = []
    for row in tradeoff_result.require_columns(
        "cnt_volume_fraction", "resistivity_penalty", "ampacity_gain"
    ).to_records():
        fraction = row["cnt_volume_fraction"]
        if copper_years > 0 and cnt_years > 0:
            # Log-linear in composition between the Cu (gain 1) and CNT ends.
            lifetime_gain = math.exp(fraction * math.log(cnt_years / copper_years))
        elif cnt_years > 0:
            lifetime_gain = float("inf") if fraction > 0 else 1.0
        else:
            lifetime_gain = float("nan")
        penalty = row["resistivity_penalty"]
        figure_of_merit = (
            row["ampacity_gain"] * lifetime_gain**lifetime_weight / penalty
            if penalty > 0
            else float("nan")
        )
        records.append(
            {
                "cnt_volume_fraction": fraction,
                "resistivity_penalty": penalty,
                "ampacity_gain": row["ampacity_gain"],
                "lifetime_gain": lifetime_gain,
                "figure_of_merit": figure_of_merit,
            }
        )
    return records


# --- registered studies -------------------------------------------------------

register_study(
    "variability_to_delay",
    target="variability_delay",
    description="Process variability -> device resistance -> circuit delay corners",
    params={"variability": {"n_devices": 200}},
    sweep=SweepSpec.grid(length_um=[5.0, 10.0, 20.0]),
    tags=("pipeline", "process", "circuit"),
)

register_study(
    "growth_to_wafer",
    target="wafer_window",
    description="Catalyst growth window -> 300 mm wafer uniformity at the optimum",
    sweep=SweepSpec.grid(seed=[0, 1, 2, 3], catalyst=["Co", "Fe"]),
    tags=("pipeline", "process"),
)

register_study(
    "composite_tradeoff_fom",
    target="composite_fom",
    description="Cu-CNT trade-off x EM lifetime -> composite figure of merit",
    sweep=SweepSpec.grid(length_um=[5.0, 10.0, 20.0], width_nm=[50.0, 100.0]),
    tags=("pipeline", "compact-model", "reliability"),
)
