"""Experiment E7/E8 drivers: the paper's text-level comparison tables.

A progress paper carries several quantitative claims in prose rather than
figures; these drivers regenerate them as tables so the benchmarks can print
paper-versus-measured rows:

* ampacity: Cu EM limit vs CNT breakdown current density, the 50 uA reference
  Cu line vs the 20-25 uA single tube, and how many tubes match the Cu line;
* thermal: CNT vs Cu thermal conductivity and the resulting via advantage;
* density: the minimum CNT density (0.096 nm^-2) needed for pure CNT
  interconnects to compete on resistance.
"""

from __future__ import annotations

from repro.analysis.paper_reference import PAPER_REFERENCE
from repro.core.ampacity import ampacity_comparison, cnts_needed_to_match_copper
from repro.core.bundle import SWCNTBundle, max_packing_density
from repro.core.copper import paper_reference_copper_line
from repro.core.mwcnt import MWCNTInterconnect
from repro.thermal.conductivity import cnt_thermal_conductivity, copper_thermal_conductivity
from repro.thermal.via import cnt_via_advantage


def ampacity_table() -> list[dict]:
    """The Section-I ampacity comparison as printable rows (experiment E7)."""
    rows = []
    for entry in ampacity_comparison():
        rows.append(
            {
                "structure": entry.label,
                "max_current_uA": entry.max_current_ua,
                "max_current_density_A_per_cm2": entry.max_current_density_a_per_cm2,
            }
        )
    rows.append(
        {
            "structure": "tubes needed to match the Cu line",
            "max_current_uA": cnts_needed_to_match_copper() * 25.0,
            "max_current_density_A_per_cm2": float("nan"),
        }
    )
    return rows


def thermal_table(via_diameter_nm: float = 100.0, via_height_nm: float = 200.0) -> list[dict]:
    """CNT versus Cu thermal conductivity and via advantage (experiment E8)."""
    length = via_height_nm * 1e-9
    return [
        {
            "quantity": "thermal conductivity W/(m K)",
            "cnt": cnt_thermal_conductivity(length=10e-6),
            "copper": copper_thermal_conductivity(),
            "paper_cnt": f"{PAPER_REFERENCE['cnt_thermal_conductivity_w_per_mk'][0]:g}-"
            f"{PAPER_REFERENCE['cnt_thermal_conductivity_w_per_mk'][1]:g}",
            "paper_copper": PAPER_REFERENCE["copper_thermal_conductivity_w_per_mk"],
        },
        {
            "quantity": f"via temperature-rise ratio (Cu/CNT, d={via_diameter_nm:g} nm)",
            "cnt": cnt_via_advantage(via_diameter_nm * 1e-9, via_height_nm * 1e-9),
            "copper": 1.0,
            "paper_cnt": "> 1 (CNT vias run cooler)",
            "paper_copper": 1.0,
        },
    ]


def density_table(length_um: float = 10.0) -> list[dict]:
    """Minimum-density argument of Section I (experiment E7 companion).

    Compares the resistance of the reference Cu line with CNT bundles of the
    paper's minimum density (0.096 nm^-2) and of the ideal close-packed
    density, at the same cross-section.
    """
    length = length_um * 1e-6
    copper = paper_reference_copper_line(length)
    minimum_density = PAPER_REFERENCE["minimum_cnt_density_per_nm2"] * 1e18

    at_minimum = SWCNTBundle(
        width=copper.width,
        height=copper.height,
        length=length,
        density=minimum_density,
        metallic_fraction=1.0,
    )
    close_packed = SWCNTBundle(
        width=copper.width, height=copper.height, length=length, metallic_fraction=1.0
    )
    return [
        {
            "structure": "Cu 100x50 nm",
            "density_per_nm2": float("nan"),
            "resistance_ohm": copper.resistance,
        },
        {
            "structure": "CNT bundle at paper minimum density",
            "density_per_nm2": at_minimum.effective_density / 1e18,
            "resistance_ohm": at_minimum.resistance,
        },
        {
            "structure": "CNT bundle close-packed",
            "density_per_nm2": close_packed.effective_density / 1e18,
            "resistance_ohm": close_packed.resistance,
        },
        {
            "structure": "ideal packing limit (1 nm tubes)",
            "density_per_nm2": max_packing_density(1e-9) / 1e18,
            "resistance_ohm": float("nan"),
        },
    ]


def doping_resistance_table(lengths_um: tuple[float, ...] = (1.0, 10.0, 100.0, 500.0)) -> list[dict]:
    """Pristine versus doped MWCNT resistance versus length (compact-model table)."""
    from repro.core.doping import DopingProfile

    rows = []
    for length_um in lengths_um:
        pristine = MWCNTInterconnect(outer_diameter=10e-9, length=length_um * 1e-6)
        doped = pristine.with_doping(DopingProfile.from_channels(10))
        rows.append(
            {
                "length_um": length_um,
                "pristine_kohm": pristine.resistance / 1e3,
                "doped_kohm": doped.resistance / 1e3,
                "improvement": pristine.resistance / doped.resistance,
            }
        )
    return rows
