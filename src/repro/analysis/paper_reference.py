"""Reference values quoted in the paper, used as acceptance targets.

These numbers are transcribed from the paper's text (there are no tabulated
datasets in a progress paper); every benchmark prints its measured value next
to the corresponding reference so EXPERIMENTS.md can record paper-vs-measured
for each experiment.
"""

from __future__ import annotations

PAPER_REFERENCE: dict[str, object] = {
    # --- Section I (motivation) -----------------------------------------------------
    "copper_em_limit_a_per_cm2": 1.0e6,
    "cnt_breakdown_a_per_cm2": 1.0e9,
    "copper_reference_line_max_current_ua": 50.0,
    "cnt_per_tube_current_ua": (20.0, 25.0),
    "minimum_cnt_density_per_nm2": 0.096,
    "cnt_thermal_conductivity_w_per_mk": (3000.0, 10000.0),
    "copper_thermal_conductivity_w_per_mk": 385.0,
    # --- Section II (process) ---------------------------------------------------------
    "mwcnt_typical_diameter_nm": 7.5,
    "mwcnt_typical_walls": (4, 5),
    "via_hole_diameter_nm": 30.0,
    "catalyst_film_thickness_nm": 1.0,
    "cmos_max_temperature_c": 400.0,
    "semiconducting_fraction": 2.0 / 3.0,
    "wafer_diameter_mm": 300.0,
    # --- Section III (modeling) ----------------------------------------------------------
    "quantum_conductance_ms": 0.077,
    "quantum_resistance_kohm": 12.9,
    "quantum_capacitance_af_per_um": 96.5,
    "pristine_swcnt77_conductance_ms": 0.155,
    "doped_swcnt77_conductance_ms": 0.387,
    "iodine_fermi_shift_ev": -0.6,
    "pristine_channels_per_shell": 2,
    "doping_channel_sweep": (2, 10),
    "benchmark_technology": "45nm",
    "tcad_technology": "14nm",
    "mwcnt_diameters_nm": (10.0, 14.0, 22.0),
    "delay_reduction_at_500um": {10.0: 0.10, 14.0: 0.05, 22.0: 0.02},
    "benchmark_length_um": 500.0,
}
"""Reference values keyed by a short descriptive name."""


def reference(key: str) -> object:
    """Look up a reference value, raising a helpful error for unknown keys."""
    try:
        return PAPER_REFERENCE[key]
    except KeyError:
        raise KeyError(
            f"unknown paper reference {key!r}; known keys: {sorted(PAPER_REFERENCE)}"
        ) from None
