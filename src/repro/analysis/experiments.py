"""Registry definitions: every figure and table of the paper as an Experiment.

This module ports the driver functions of :mod:`repro.analysis` into the
experiment engine (:mod:`repro.api`).  Each registration declares a flat,
JSON-serialisable parameter surface (scalars and numeric tuples only) so that
sweeps, the on-disk cache and the CLI can manipulate parameters generically;
composite arguments of the underlying drivers -- ``TechnologyNode`` objects,
the ``DelayRatioStudy`` dataclass, diameter ranges -- are assembled inside
thin adapter functions.

Importing this module populates the global registry; ``repro.api`` does that
lazily via :func:`repro.api.experiment.ensure_registered`, so user code never
needs to import it explicitly.  The experiment names follow the paper:

========================  =====================================================
``fig8a``                 ballistic conductance vs diameter
``fig8c``                 pristine vs doped SWCNT(7,7) conductance
``fig9``                  conductivity of CNT vs Cu lines vs length
``fig10_capacitance``     TCAD crosstalk capacitance extraction
``fig10_m1_m2``           TCAD M1/M2 crossing extraction
``fig10_resistance``      TCAD via resistance / current crowding
``fig12``                 doped-vs-pristine delay-ratio benchmark
``energy``                repeatered delay/energy/EDP design space (ext.)
``table_ampacity``        Section-I ampacity comparison
``table_thermal``         CNT vs Cu thermal conductivity / via advantage
``table_density``         minimum CNT density argument
``table_doping_resistance``  pristine vs doped MWCNT resistance table
========================  =====================================================

The extension studies the paper motivates in prose (crosstalk, EM lifetime,
variability, growth window, composite trade-off, TLM, self-heating) are
registered in :mod:`repro.analysis.studies`; the generated catalog of every
registered experiment is ``docs/EXPERIMENTS.md``.
"""

from __future__ import annotations

from repro.analysis.energy import run_energy_study
from repro.analysis.fig8_conductance import fig8a_records, fig8c_result
from repro.analysis.fig9_conductivity import DEFAULT_LENGTHS_UM, fig9_records
from repro.analysis.fig10_tcad import (
    fig10_capacitance_summary,
    fig10_m1_m2_summary,
    fig10_resistance_summary,
)
from repro.analysis.fig12_delay_ratio import (
    DEFAULT_CONTACT_RESISTANCE,
    DelayRatioStudy,
    fig12_records,
    fig12_records_batch,
)
from repro.analysis.tables import (
    ampacity_table,
    density_table,
    doping_resistance_table,
    thermal_table,
)
from repro.api.experiment import ParamSpec, register_experiment
from repro.circuit.technology import node_by_name

_TECHNOLOGIES = ("14nm", "45nm")


# --- Fig. 8: atomistic conductance ------------------------------------------


@register_experiment(
    "fig8a",
    params=(
        ParamSpec("diameter_min_nm", "float", 0.5, "lower end of the diameter sweep"),
        ParamSpec("diameter_max_nm", "float", 3.0, "upper end of the diameter sweep"),
        ParamSpec("metallic_only", "bool", True, "restrict to metallic tubes"),
        ParamSpec("temperature", "float", 300.0, "temperature in kelvin"),
        ParamSpec("n_k", "int", 151, "k-points of the band-structure sampling"),
    ),
    description="Ballistic conductance vs diameter for SWCNT families (Fig. 8a)",
    tags=("figure", "atomistic"),
)
def _fig8a(
    diameter_min_nm: float,
    diameter_max_nm: float,
    metallic_only: bool,
    temperature: float,
    n_k: int,
) -> list[dict]:
    return fig8a_records(
        diameter_range_nm=(diameter_min_nm, diameter_max_nm),
        metallic_only=metallic_only,
        temperature=temperature,
        n_k=n_k,
    )


@register_experiment(
    "fig8c",
    params=(
        ParamSpec("n_k", "int", 301, "k-points of the band-structure sampling"),
        ParamSpec("temperature", "float", 300.0, "temperature in kelvin"),
    ),
    description="Pristine vs doped SWCNT(7,7) conductance (Fig. 8b/c, scalar summary)",
    tags=("figure", "atomistic"),
)
def _fig8c(n_k: int, temperature: float) -> list[dict]:
    result = fig8c_result(n_k=n_k, temperature=temperature)
    # Scalar projection of the rich legacy result: the staircase arrays stay
    # available through repro.analysis.fig8_conductance.fig8c_result().
    return [
        {
            "pristine_conductance_ms": result.pristine_conductance_ms,
            "doped_conductance_ms": result.doped_conductance_ms,
            "conductance_gain": result.doped_conductance_ms
            / result.pristine_conductance_ms,
            "fermi_shift_ev": result.fermi_shift_ev,
            "band_gap_ev": result.band_gap_ev,
        }
    ]


# --- Fig. 9: conductivity comparison ----------------------------------------


register_experiment(
    "fig9",
    params=(
        ParamSpec(
            "lengths_um",
            "floats",
            tuple(float(v) for v in DEFAULT_LENGTHS_UM),
            "line lengths in um",
        ),
        ParamSpec("swcnt_diameter_nm", "float", 1.0, "SWCNT diameter in nm"),
        ParamSpec("mwcnt_diameters_nm", "floats", (10.0, 22.0), "MWCNT outer diameters in nm"),
        ParamSpec("copper_widths_nm", "floats", (20.0, 100.0), "Cu line widths in nm"),
        ParamSpec("include_cu_size_effects", "bool", True, "model Cu size effects"),
    ),
    description="Conductivity of SWCNT / MWCNT / Cu lines vs length (Fig. 9)",
    tags=("figure", "compact-model"),
)(fig9_records)


# --- Fig. 10: TCAD extraction -----------------------------------------------


@register_experiment(
    "fig10_capacitance",
    params=(
        ParamSpec("technology", "str", "14nm", "technology node", choices=_TECHNOLOGIES),
        ParamSpec("n_lines", "int", 3, "number of parallel lines"),
        ParamSpec("resolution", "int", 4, "grid cells per feature"),
    ),
    description="TCAD crosstalk capacitance extraction of parallel lines (Fig. 10a)",
    tags=("figure", "tcad"),
)
def _fig10_capacitance(technology: str, n_lines: int, resolution: int) -> list[dict]:
    summary = fig10_capacitance_summary(
        technology=node_by_name(technology), n_lines=n_lines, resolution=resolution
    )
    # Keep the scalar extraction results; the matrix, conductor handles and
    # SPICE netlist stay on the legacy driver for callers that need them.
    return [
        {
            "technology": summary["technology"],
            "victim_total_af_per_um": summary["victim_total_af_per_um"],
            "victim_coupling_af_per_um": summary["victim_coupling_af_per_um"],
            "coupling_fraction": summary["coupling_fraction"],
            "is_physical": summary["is_physical"],
        }
    ]


@register_experiment(
    "fig10_m1_m2",
    params=(
        ParamSpec("technology", "str", "14nm", "technology node", choices=_TECHNOLOGIES),
        ParamSpec("resolution", "int", 3, "grid cells per feature"),
    ),
    description="TCAD M1/M2 crossing capacitance extraction (Fig. 10a, 3-D)",
    tags=("figure", "tcad"),
)
def _fig10_m1_m2(technology: str, resolution: int) -> list[dict]:
    return [fig10_m1_m2_summary(technology=node_by_name(technology), resolution=resolution)]


register_experiment(
    "fig10_resistance",
    params=(
        ParamSpec("via_width_nm", "float", 30.0, "via hole width in nm"),
        ParamSpec("via_height_nm", "float", 60.0, "via height in nm"),
        ParamSpec("resolution_nm", "float", 7.5, "grid resolution in nm"),
    ),
    description="TCAD via resistance extraction with current crowding (Fig. 10b)",
    tags=("figure", "tcad"),
)(fig10_resistance_summary)


# --- Fig. 12: circuit-level delay-ratio benchmark ---------------------------


def _fig12_study(
    diameters_nm: tuple[float, ...],
    lengths_um: tuple[float, ...],
    channel_counts: tuple[float, ...],
    contact_resistance: float,
    technology: str,
    use_transient: bool,
    n_segments: int,
) -> DelayRatioStudy:
    return DelayRatioStudy(
        diameters_nm=tuple(diameters_nm),
        lengths_um=tuple(lengths_um),
        channel_counts=tuple(channel_counts),
        contact_resistance=contact_resistance,
        technology=node_by_name(technology),
        use_transient=use_transient,
        n_segments=n_segments,
    )


def _fig12_batch(params_list: list[dict]) -> list[list[dict]]:
    """Batched fig12 evaluator: stacked transients across sweep points."""
    return fig12_records_batch([_fig12_study(**params) for params in params_list])


@register_experiment(
    "fig12",
    params=(
        ParamSpec("diameters_nm", "floats", (10.0, 14.0, 22.0), "MWCNT outer diameters in nm"),
        ParamSpec(
            "lengths_um",
            "floats",
            (10.0, 50.0, 100.0, 200.0, 500.0, 1000.0),
            "interconnect lengths in um",
        ),
        ParamSpec(
            "channel_counts",
            "floats",
            (2.0, 4.0, 6.0, 8.0, 10.0),
            "channels per shell Nc (must include the pristine value 2)",
        ),
        ParamSpec(
            "contact_resistance",
            "float",
            DEFAULT_CONTACT_RESISTANCE,
            "metal-CNT contact resistance per line in ohm",
        ),
        ParamSpec("technology", "str", "45nm", "driver technology node", choices=_TECHNOLOGIES),
        ParamSpec("use_transient", "bool", True, "MNA transient (True) or Elmore (False)"),
        ParamSpec("n_segments", "int", 20, "RC-ladder segments per line"),
    ),
    description="Doped vs pristine MWCNT delay-ratio benchmark (Figs. 11-12)",
    tags=("figure", "circuit"),
    batch_fn=_fig12_batch,
)
def _fig12(
    diameters_nm: tuple[float, ...],
    lengths_um: tuple[float, ...],
    channel_counts: tuple[float, ...],
    contact_resistance: float,
    technology: str,
    use_transient: bool,
    n_segments: int,
) -> list[dict]:
    return fig12_records(
        _fig12_study(
            diameters_nm,
            lengths_um,
            channel_counts,
            contact_resistance,
            technology,
            use_transient,
            n_segments,
        )
    )


# --- extension: energy design space -----------------------------------------


@register_experiment(
    "energy",
    params=(
        ParamSpec(
            "lengths_um",
            "floats",
            (100.0, 200.0, 500.0, 1000.0, 2000.0),
            "wire lengths in um",
        ),
        ParamSpec("technology", "str", "45nm", "driver technology node", choices=_TECHNOLOGIES),
        ParamSpec("mwcnt_diameter_nm", "float", 14.0, "MWCNT outer diameter in nm"),
        ParamSpec("doped_channels", "float", 10.0, "channels per shell of the doped wire"),
        ParamSpec("contact_resistance", "float", 20.0e3, "engineered contact resistance in ohm"),
    ),
    description="Delay / energy / EDP of optimally repeated lines (extension E12)",
    tags=("extension", "circuit"),
)
def _energy(
    lengths_um: tuple[float, ...],
    technology: str,
    mwcnt_diameter_nm: float,
    doped_channels: float,
    contact_resistance: float,
) -> list[dict]:
    return run_energy_study(
        lengths_um=tuple(lengths_um),
        technology=node_by_name(technology),
        mwcnt_diameter_nm=mwcnt_diameter_nm,
        doped_channels=doped_channels,
        contact_resistance=contact_resistance,
    )


# --- prose tables -----------------------------------------------------------


register_experiment(
    "table_ampacity",
    description="Section-I ampacity comparison: Cu EM limit vs CNT breakdown",
    tags=("table",),
)(ampacity_table)


register_experiment(
    "table_thermal",
    params=(
        ParamSpec("via_diameter_nm", "float", 100.0, "via diameter in nm"),
        ParamSpec("via_height_nm", "float", 200.0, "via height in nm"),
    ),
    description="CNT vs Cu thermal conductivity and via advantage",
    tags=("table", "thermal"),
)(thermal_table)


register_experiment(
    "table_density",
    params=(ParamSpec("length_um", "float", 10.0, "line length in um"),),
    description="Minimum CNT density needed to compete with the Cu line",
    tags=("table",),
)(density_table)


register_experiment(
    "table_doping_resistance",
    params=(
        ParamSpec("lengths_um", "floats", (1.0, 10.0, 100.0, 500.0), "line lengths in um"),
    ),
    description="Pristine vs doped MWCNT resistance vs length",
    tags=("table", "compact-model"),
)(doping_resistance_table)
