"""Experiment E4 driver: TCAD RC extraction of an interconnect stack (Fig. 10).

Fig. 10a of the paper shows a 3-D TCAD capacitance extraction of a 14 nm
inverter up to the M2 level with electric-field streamlines highlighting
line-to-line crosstalk; Fig. 10b shows a resistance extraction whose current
density reveals hot-spots.  The drivers below run the reproduction's
finite-difference solver on the equivalent parametric structures and return
the quantities those figures communicate: the capacitance matrix / coupling
fractions, and the extracted resistance / current-crowding factor.
"""

from __future__ import annotations

from repro.analysis._compat import warn_legacy
from repro.circuit.technology import NODE_14NM, TechnologyNode
from repro.tcad.capacitance import capacitance_matrix
from repro.tcad.resistance import extract_resistance, hotspot_factor
from repro.tcad.netlist_export import rc_netlist_from_extraction
from repro.tcad.structures import (
    m1_m2_crossing_structure,
    parallel_lines_structure,
    via_structure,
)


def fig10_capacitance_summary(
    technology: TechnologyNode = NODE_14NM,
    n_lines: int = 3,
    resolution: int = 4,
) -> dict:
    """Crosstalk capacitance extraction of parallel lines at the given node.

    Returns the per-unit-length capacitance matrix (aF/um), the coupling
    fraction of the centre (victim) line and the exported SPICE netlist text.
    """
    structure = parallel_lines_structure(
        n_lines=n_lines, technology=technology, resolution=resolution
    )
    matrix = capacitance_matrix(structure.grid)

    victim = structure.conductors["line1"] if n_lines >= 3 else structure.conductors["line0"]
    aggressors = [
        conductor
        for name, conductor in structure.conductors.items()
        if name.startswith("line") and conductor != victim
    ]
    total = matrix.self_capacitance(victim)
    coupling = sum(matrix.coupling_capacitance(victim, aggressor) for aggressor in aggressors)

    circuit = rc_netlist_from_extraction(
        matrix,
        ground_conductor=structure.conductors.get("ground"),
        length=1e-6,
        title=f"{technology.name} parallel-line extraction",
    )

    def to_af_per_um(value: float) -> float:
        return value * 1e18 * 1e-6

    return {
        "technology": technology.name,
        "conductors": dict(structure.conductors),
        "matrix_af_per_um": (matrix.matrix * 1e18 * 1e-6).tolist(),
        "victim_total_af_per_um": to_af_per_um(total),
        "victim_coupling_af_per_um": to_af_per_um(coupling),
        "coupling_fraction": coupling / total if total > 0 else float("nan"),
        "is_physical": matrix.is_physical(),
        "spice_netlist": circuit.to_spice(),
    }


def fig10_m1_m2_summary(technology: TechnologyNode = NODE_14NM, resolution: int = 3) -> dict:
    """3-D M1/M2 crossing capacitance extraction (the stacked-level crosstalk case)."""
    structure = m1_m2_crossing_structure(technology=technology, resolution=resolution)
    matrix = capacitance_matrix(structure.grid)
    m1 = structure.conductors["m1"]
    m2 = structure.conductors["m2"]
    total = matrix.self_capacitance(m1)
    coupling = matrix.coupling_capacitance(m1, m2)
    return {
        "technology": technology.name,
        "m1_total_aF": total * 1e18,
        "m1_m2_coupling_aF": coupling * 1e18,
        "coupling_fraction": coupling / total if total > 0 else float("nan"),
        "is_physical": matrix.is_physical(),
    }


def fig10_resistance_summary(
    via_width_nm: float = 30.0,
    via_height_nm: float = 60.0,
    resolution_nm: float = 7.5,
) -> dict:
    """Via resistance extraction with current-crowding hot-spot metric (Fig. 10b).

    Uses the paper's 30 nm via-hole dimension as the default test structure.
    """
    structure = via_structure(
        via_width=via_width_nm * 1e-9,
        via_height=via_height_nm * 1e-9,
        resolution=resolution_nm * 1e-9,
    )
    extraction = extract_resistance(structure.grid, structure.conductors["via"], axis=2)
    return {
        "via_width_nm": via_width_nm,
        "via_height_nm": via_height_nm,
        "resistance_ohm": extraction.resistance,
        "current_a_at_1v": extraction.current,
        "hotspot_factor": hotspot_factor(extraction),
    }


def run_fig10_capacitance(
    technology: TechnologyNode = NODE_14NM,
    n_lines: int = 3,
    resolution: int = 4,
) -> dict:
    """Deprecated driver entry point; use ``Engine.run("fig10_capacitance")``."""
    warn_legacy("run_fig10_capacitance", "fig10_capacitance")
    return fig10_capacitance_summary(
        technology=technology, n_lines=n_lines, resolution=resolution
    )


def run_fig10_m1_m2(technology: TechnologyNode = NODE_14NM, resolution: int = 3) -> dict:
    """Deprecated driver entry point; use ``Engine.run("fig10_m1_m2")``."""
    warn_legacy("run_fig10_m1_m2", "fig10_m1_m2")
    return fig10_m1_m2_summary(technology=technology, resolution=resolution)


def run_fig10_resistance(
    via_width_nm: float = 30.0,
    via_height_nm: float = 60.0,
    resolution_nm: float = 7.5,
) -> dict:
    """Deprecated driver entry point; use ``Engine.run("fig10_resistance")``."""
    warn_legacy("run_fig10_resistance", "fig10_resistance")
    return fig10_resistance_summary(
        via_width_nm=via_width_nm,
        via_height_nm=via_height_nm,
        resolution_nm=resolution_nm,
    )
