"""Experiment E3 driver: conductivity of CNT versus Cu lines (paper Fig. 9).

Fig. 9 compares the electrical conductivity of SWCNT and MWCNT lines of
different lengths and diameters against copper lines.  The characteristic
shape: CNT effective conductivity rises with length (the fixed quantum /
contact resistance is amortised) and eventually exceeds that of narrow
copper lines, whose conductivity is length independent but degraded by size
effects; larger-diameter MWCNTs reach higher conductivities because more
shells conduct in parallel.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.analysis._compat import warn_legacy
from repro.core.copper import CopperInterconnect
from repro.core.line import Conductor
from repro.core.mwcnt import MWCNTInterconnect
from repro.core.swcnt import SWCNTInterconnect


DEFAULT_LENGTHS_UM = tuple(np.logspace(-2, 2, 17))
"""Default length sweep from 10 nm to 100 um."""


def _line_factories(
    swcnt_diameter_nm: float,
    mwcnt_diameters_nm: tuple[float, ...],
    copper_widths_nm: tuple[float, ...],
    include_cu_size_effects: bool,
) -> list[tuple[str, str, Callable[[float], Conductor]]]:
    """(label, kind, length -> Conductor) for every line of the comparison.

    Every material is handled through the shared :class:`Conductor` protocol,
    so adding a line type to Fig. 9 is one more factory entry.
    """
    factories: list[tuple[str, str, Callable[[float], Conductor]]] = [
        (
            f"SWCNT d={swcnt_diameter_nm:g}nm",
            "SWCNT",
            lambda length, d=swcnt_diameter_nm: SWCNTInterconnect(
                diameter=d * 1e-9, length=length
            ),
        )
    ]
    for diameter_nm in mwcnt_diameters_nm:
        factories.append(
            (
                f"MWCNT D={diameter_nm:g}nm",
                "MWCNT",
                lambda length, d=diameter_nm: MWCNTInterconnect(
                    outer_diameter=d * 1e-9, length=length
                ),
            )
        )
    for width_nm in copper_widths_nm:
        factories.append(
            (
                f"Cu w={width_nm:g}nm",
                "Cu",
                lambda length, w=width_nm: CopperInterconnect(
                    width=w * 1e-9,
                    height=w * 1e-9,
                    length=length,
                    include_size_effects=include_cu_size_effects,
                ),
            )
        )
    return factories


def fig9_records(
    lengths_um: tuple[float, ...] = DEFAULT_LENGTHS_UM,
    swcnt_diameter_nm: float = 1.0,
    mwcnt_diameters_nm: tuple[float, ...] = (10.0, 22.0),
    copper_widths_nm: tuple[float, ...] = (20.0, 100.0),
    include_cu_size_effects: bool = True,
) -> list[dict]:
    """Conductivity of SWCNT / MWCNT / Cu lines versus length (Fig. 9).

    Returns one record per (line type, length) with the effective
    conductivity in MS/m referred to the line cross-section, which is the
    quantity Fig. 9 plots.

    Parameters
    ----------
    lengths_um:
        Line lengths in micrometre.
    swcnt_diameter_nm:
        SWCNT diameter in nanometre.
    mwcnt_diameters_nm:
        MWCNT outer diameters in nanometre.
    copper_widths_nm:
        Copper line widths in nanometre (height = width for the comparison).
    include_cu_size_effects:
        Ablation knob: disable to compare against bulk-resistivity copper.
    """
    factories = _line_factories(
        swcnt_diameter_nm,
        tuple(mwcnt_diameters_nm),
        tuple(copper_widths_nm),
        include_cu_size_effects,
    )
    records: list[dict] = []
    for length_um in lengths_um:
        length = float(length_um) * 1e-6
        for label, kind, factory in factories:
            records.append(
                {
                    "line": label,
                    "kind": kind,
                    "length_um": float(length_um),
                    "conductivity_ms_per_m": factory(length).effective_conductivity / 1e6,
                }
            )
    return records


def run_fig9(
    lengths_um: tuple[float, ...] = DEFAULT_LENGTHS_UM,
    swcnt_diameter_nm: float = 1.0,
    mwcnt_diameters_nm: tuple[float, ...] = (10.0, 22.0),
    copper_widths_nm: tuple[float, ...] = (20.0, 100.0),
    include_cu_size_effects: bool = True,
) -> list[dict]:
    """Deprecated driver entry point; use ``Engine.run("fig9")`` instead."""
    warn_legacy("run_fig9", "fig9")
    return fig9_records(
        lengths_um=lengths_um,
        swcnt_diameter_nm=swcnt_diameter_nm,
        mwcnt_diameters_nm=mwcnt_diameters_nm,
        copper_widths_nm=copper_widths_nm,
        include_cu_size_effects=include_cu_size_effects,
    )


def crossover_length_um(
    records: list[dict], cnt_line: str, copper_line: str
) -> float | None:
    """Length (um) above which a CNT line out-conducts a copper line.

    Returns None if the CNT line never overtakes the copper line within the
    swept range -- the Fig. 9 message is that it does for long lines.
    """
    cnt = sorted(
        (r for r in records if r["line"] == cnt_line), key=lambda r: r["length_um"]
    )
    copper = {r["length_um"]: r for r in records if r["line"] == copper_line}
    for record in cnt:
        reference = copper.get(record["length_um"])
        if reference is None:
            continue
        if record["conductivity_ms_per_m"] >= reference["conductivity_ms_per_m"]:
            return float(record["length_um"])
    return None
