"""Experiment E3 driver: conductivity of CNT versus Cu lines (paper Fig. 9).

Fig. 9 compares the electrical conductivity of SWCNT and MWCNT lines of
different lengths and diameters against copper lines.  The characteristic
shape: CNT effective conductivity rises with length (the fixed quantum /
contact resistance is amortised) and eventually exceeds that of narrow
copper lines, whose conductivity is length independent but degraded by size
effects; larger-diameter MWCNTs reach higher conductivities because more
shells conduct in parallel.
"""

from __future__ import annotations

import numpy as np

from repro.core.copper import CopperInterconnect
from repro.core.mwcnt import MWCNTInterconnect
from repro.core.swcnt import SWCNTInterconnect


DEFAULT_LENGTHS_UM = tuple(np.logspace(-2, 2, 17))
"""Default length sweep from 10 nm to 100 um."""


def run_fig9(
    lengths_um: tuple[float, ...] = DEFAULT_LENGTHS_UM,
    swcnt_diameter_nm: float = 1.0,
    mwcnt_diameters_nm: tuple[float, ...] = (10.0, 22.0),
    copper_widths_nm: tuple[float, ...] = (20.0, 100.0),
    include_cu_size_effects: bool = True,
) -> list[dict]:
    """Conductivity of SWCNT / MWCNT / Cu lines versus length (Fig. 9).

    Returns one record per (line type, length) with the effective
    conductivity in MS/m referred to the line cross-section, which is the
    quantity Fig. 9 plots.

    Parameters
    ----------
    lengths_um:
        Line lengths in micrometre.
    swcnt_diameter_nm:
        SWCNT diameter in nanometre.
    mwcnt_diameters_nm:
        MWCNT outer diameters in nanometre.
    copper_widths_nm:
        Copper line widths in nanometre (height = width for the comparison).
    include_cu_size_effects:
        Ablation knob: disable to compare against bulk-resistivity copper.
    """
    records: list[dict] = []
    for length_um in lengths_um:
        length = float(length_um) * 1e-6

        tube = SWCNTInterconnect(diameter=swcnt_diameter_nm * 1e-9, length=length)
        records.append(
            {
                "line": f"SWCNT d={swcnt_diameter_nm:g}nm",
                "kind": "SWCNT",
                "length_um": float(length_um),
                "conductivity_ms_per_m": tube.effective_conductivity / 1e6,
            }
        )

        for diameter_nm in mwcnt_diameters_nm:
            mwcnt = MWCNTInterconnect(outer_diameter=diameter_nm * 1e-9, length=length)
            records.append(
                {
                    "line": f"MWCNT D={diameter_nm:g}nm",
                    "kind": "MWCNT",
                    "length_um": float(length_um),
                    "conductivity_ms_per_m": mwcnt.effective_conductivity / 1e6,
                }
            )

        for width_nm in copper_widths_nm:
            copper = CopperInterconnect(
                width=width_nm * 1e-9,
                height=width_nm * 1e-9,
                length=length,
                include_size_effects=include_cu_size_effects,
            )
            records.append(
                {
                    "line": f"Cu w={width_nm:g}nm",
                    "kind": "Cu",
                    "length_um": float(length_um),
                    "conductivity_ms_per_m": copper.effective_conductivity / 1e6,
                }
            )
    return records


def crossover_length_um(
    records: list[dict], cnt_line: str, copper_line: str
) -> float | None:
    """Length (um) above which a CNT line out-conducts a copper line.

    Returns None if the CNT line never overtakes the copper line within the
    swept range -- the Fig. 9 message is that it does for long lines.
    """
    cnt = sorted(
        (r for r in records if r["line"] == cnt_line), key=lambda r: r["length_um"]
    )
    copper = {r["length_um"]: r for r in records if r["line"] == copper_line}
    for record in cnt:
        reference = copper.get(record["length_um"])
        if reference is None:
            continue
        if record["conductivity_ms_per_m"] >= reference["conductivity_ms_per_m"]:
            return float(record["length_um"])
    return None
