"""Experiment E1/E2 drivers: ballistic conductance and doping (paper Fig. 8).

``run_fig8a`` regenerates the conductance-versus-diameter sweep of Fig. 8a
for zigzag and armchair SWCNTs at 300 K; ``run_fig8c`` regenerates the
pristine-versus-doped SWCNT(7,7) comparison of Fig. 8b/c (band structure,
transmission staircase and the conductance values 0.155 mS / 0.387 mS).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis._compat import warn_legacy
from repro.atomistic import (
    Chirality,
    ballistic_conductance,
    compute_band_structure,
    conductance_vs_diameter,
    transmission_function,
)
from repro.atomistic.doping import fermi_shift_for_target_conductance
from repro.constants import QUANTUM_CONDUCTANCE
from repro.analysis.paper_reference import PAPER_REFERENCE


def fig8a_records(
    diameter_range_nm: tuple[float, float] = (0.5, 3.0),
    metallic_only: bool = True,
    temperature: float = 300.0,
    n_k: int = 151,
) -> list[dict]:
    """Ballistic conductance versus diameter (Fig. 8a).

    Returns one record per tube with the family, chirality, diameter (nm),
    conductance (mS) and channel count; metallic tubes cluster at ~2 channels
    (0.155 mS) regardless of diameter, which is the figure's message.
    """
    points = conductance_vs_diameter(
        families=("armchair", "zigzag"),
        diameter_range_m=(diameter_range_nm[0] * 1e-9, diameter_range_nm[1] * 1e-9),
        temperature=temperature,
        metallic_only=metallic_only,
        n_k=n_k,
    )
    return [
        {
            "family": point.family,
            "chirality": str(point.chirality),
            "diameter_nm": point.diameter * 1e9,
            "conductance_ms": point.conductance * 1e3,
            "channels": point.channels,
        }
        for point in points
    ]


@dataclass(frozen=True)
class Fig8cResult:
    """Pristine-versus-doped SWCNT(7,7) comparison (Fig. 8b/c).

    Attributes
    ----------
    pristine_conductance_ms, doped_conductance_ms:
        Ballistic conductance of the pristine and doped tube in mS.
    fermi_shift_ev:
        Rigid-band Fermi shift used for the doped tube in eV (negative,
        p-type).  Note: the tight-binding rigid-band substitute needs a larger
        shift (~-1.2 eV) than the paper's DFT value (-0.6 eV) to open the next
        subbands, because the DFT calculation also adds dopant-induced states;
        the conductance staircase itself is reproduced.
    energies_ev, pristine_transmission, doped_transmission:
        Transmission staircases versus energy for both cases.
    band_gap_ev:
        Band gap of the pristine tube (0: metallic armchair tube).
    """

    pristine_conductance_ms: float
    doped_conductance_ms: float
    fermi_shift_ev: float
    energies_ev: np.ndarray
    pristine_transmission: np.ndarray
    doped_transmission: np.ndarray
    band_gap_ev: float


def fig8c_result(n_k: int = 301, temperature: float = 300.0) -> Fig8cResult:
    """Regenerate the doped SWCNT(7,7) experiment of Fig. 8b/c."""
    tube = Chirality(7, 7)
    bands = compute_band_structure(tube, n_k=n_k)

    pristine = ballistic_conductance(bands, temperature=temperature)
    target = PAPER_REFERENCE["doped_swcnt77_conductance_ms"] * 1e-3
    shift = fermi_shift_for_target_conductance(tube, target, temperature=temperature, n_k=n_k)
    doped = ballistic_conductance(bands, temperature=temperature, fermi_level_ev=shift)

    energies, transmission = transmission_function(bands, n_points=601)
    # The doped staircase is the same transmission function read relative to
    # the shifted Fermi level.
    doped_transmission = np.interp(energies + shift, energies, transmission)

    return Fig8cResult(
        pristine_conductance_ms=pristine * 1e3,
        doped_conductance_ms=doped * 1e3,
        fermi_shift_ev=shift,
        energies_ev=energies,
        pristine_transmission=transmission,
        doped_transmission=doped_transmission,
        band_gap_ev=bands.band_gap(),
    )


def fig8_summary() -> dict[str, float]:
    """Scalar summary used by the benchmark printout and EXPERIMENTS.md."""
    result = fig8c_result()
    sweep = fig8a_records()
    channels = np.array([record["channels"] for record in sweep])
    return {
        "metallic_channels_mean": float(channels.mean()),
        "metallic_channels_spread": float(channels.max() - channels.min()),
        "pristine_conductance_ms": result.pristine_conductance_ms,
        "doped_conductance_ms": result.doped_conductance_ms,
        "fermi_shift_ev": result.fermi_shift_ev,
        "paper_pristine_ms": float(PAPER_REFERENCE["pristine_swcnt77_conductance_ms"]),
        "paper_doped_ms": float(PAPER_REFERENCE["doped_swcnt77_conductance_ms"]),
    }


def run_fig8a(
    diameter_range_nm: tuple[float, float] = (0.5, 3.0),
    metallic_only: bool = True,
    temperature: float = 300.0,
    n_k: int = 151,
) -> list[dict]:
    """Deprecated driver entry point; use ``Engine.run("fig8a")`` instead."""
    warn_legacy("run_fig8a", "fig8a")
    return fig8a_records(
        diameter_range_nm=diameter_range_nm,
        metallic_only=metallic_only,
        temperature=temperature,
        n_k=n_k,
    )


def run_fig8c(n_k: int = 301, temperature: float = 300.0) -> Fig8cResult:
    """Deprecated driver entry point; use ``Engine.run("fig8c")`` instead.

    Unlike the registered "fig8c" experiment (scalar records), this keeps the
    legacy rich return with the transmission staircases as numpy arrays.
    """
    warn_legacy("run_fig8c", "fig8c")
    return fig8c_result(n_k=n_k, temperature=temperature)
