"""Current-carrying-capacity (ampacity) comparisons between CNTs and copper.

Section I of the paper motivates CNT interconnects with a reliability
argument: metallic SWCNT bundles sustain ~1e9 A/cm^2 whereas electromigration
limits copper to ~1e6 A/cm^2; a 100 nm x 50 nm Cu line is limited to about
50 uA, while each 1 nm CNT can carry 20-25 uA -- so "a few CNTs are enough to
match the current carrying capacity of a typical Cu interconnect".  The
functions below express exactly those comparisons so they can be regenerated
as a table (experiment E7 in DESIGN.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.constants import (
    CNT_MAX_CURRENT_DENSITY,
    CNT_MAX_CURRENT_PER_TUBE,
    COPPER_EM_CURRENT_DENSITY_LIMIT,
    CU_REFERENCE_LINE_MAX_CURRENT,
)


def max_current_copper_line(width: float, height: float) -> float:
    """Electromigration-limited current of a Cu line of given cross-section (A).

    Parameters
    ----------
    width, height:
        Cross-section in metre.
    """
    if width <= 0 or height <= 0:
        raise ValueError("width and height must be positive")
    return COPPER_EM_CURRENT_DENSITY_LIMIT * width * height


def max_current_cnt(diameter: float = 1.0e-9, per_tube_limit: float | None = None) -> float:
    """Maximum current of a single CNT in ampere.

    By default the paper's per-tube figure (20-25 uA for a ~1 nm tube) is
    used; tubes of other diameters scale with their circumference (current is
    carried by the wall), capped by the bundle-level breakdown current
    density.

    Parameters
    ----------
    diameter:
        Tube diameter in metre.
    per_tube_limit:
        Override for the 1 nm per-tube current in ampere.
    """
    if diameter <= 0:
        raise ValueError("diameter must be positive")
    base = per_tube_limit if per_tube_limit is not None else CNT_MAX_CURRENT_PER_TUBE
    return base * (diameter / 1.0e-9)


def cnts_needed_to_match_copper(
    copper_width: float = 100.0e-9,
    copper_height: float = 50.0e-9,
    tube_diameter: float = 1.0e-9,
) -> int:
    """How many CNTs match the EM-limited current of a Cu line.

    For the paper's reference line (100 nm x 50 nm, ~50 uA) and 1 nm tubes
    (20-25 uA each) the answer is 2-3 tubes, backing the "a few CNTs are
    enough" statement.
    """
    copper_current = max_current_copper_line(copper_width, copper_height)
    tube_current = max_current_cnt(tube_diameter)
    return int(math.ceil(copper_current / tube_current))


@dataclass(frozen=True)
class AmpacityComparison:
    """One row of the ampacity comparison table (experiment E7)."""

    label: str
    cross_section_area: float
    """Cross-section in square metre."""
    max_current: float
    """Maximum sustainable current in ampere."""
    max_current_density: float
    """Maximum current density in ampere per square metre."""

    @property
    def max_current_density_a_per_cm2(self) -> float:
        """Current density in the paper's unit, A/cm^2."""
        return self.max_current_density * 1.0e-4

    @property
    def max_current_ua(self) -> float:
        """Maximum current in micro-ampere."""
        return self.max_current * 1.0e6


def ampacity_comparison(
    copper_width: float = 100.0e-9,
    copper_height: float = 50.0e-9,
    tube_diameter: float = 1.0e-9,
) -> list[AmpacityComparison]:
    """The paper's Section-I ampacity comparison as structured rows.

    Returns rows for the reference Cu line, a single CNT and an ideal CNT
    bundle filling the same cross-section as the Cu line.
    """
    from repro.core.bundle import SWCNTBundle

    copper_area = copper_width * copper_height
    copper_row = AmpacityComparison(
        label=f"Cu line {copper_width*1e9:.0f}x{copper_height*1e9:.0f} nm",
        cross_section_area=copper_area,
        max_current=max_current_copper_line(copper_width, copper_height),
        max_current_density=COPPER_EM_CURRENT_DENSITY_LIMIT,
    )

    tube_area = math.pi * tube_diameter**2 / 4.0
    tube_current = max_current_cnt(tube_diameter)
    cnt_row = AmpacityComparison(
        label=f"single CNT d={tube_diameter*1e9:.0f} nm",
        cross_section_area=tube_area,
        max_current=tube_current,
        max_current_density=min(tube_current / tube_area, CNT_MAX_CURRENT_DENSITY),
    )

    bundle = SWCNTBundle(
        width=copper_width,
        height=copper_height,
        length=1.0e-6,
        tube_diameter=tube_diameter,
        metallic_fraction=1.0,
    )
    bundle_row = AmpacityComparison(
        label="dense SWCNT bundle (same cross-section)",
        cross_section_area=copper_area,
        max_current=bundle.max_current,
        max_current_density=bundle.max_current_density,
    )
    return [copper_row, cnt_row, bundle_row]


def reference_figures_consistent(tolerance: float = 0.5) -> bool:
    """Cross-check the constants against the paper's quoted reference numbers.

    Verifies that the EM-limited current of the 100 nm x 50 nm Cu line derived
    from the 1e6 A/cm^2 density limit agrees with the directly quoted 50 uA
    within ``tolerance`` (relative).
    """
    derived = max_current_copper_line(100.0e-9, 50.0e-9)
    return abs(derived - CU_REFERENCE_LINE_MAX_CURRENT) <= tolerance * CU_REFERENCE_LINE_MAX_CURRENT
