"""Multi-wall CNT interconnect compact model (paper Eqs. 4-5).

A MWCNT of outer diameter ``D`` is a set of nested shells separated by the
van der Waals distance.  The paper's doped compact model treats every shell
as contributing ``Nc`` conducting channels (the doping enhancement factor)
and sums the shell conductances:

    R_MW = 1 / (Nc * Ns * G_1channel)                       (Eq. 4)
    G_1channel = G0 / (1 + L / L_mfp)
    C_MW = (Nc Ns C_Q * C_E) / (Nc Ns C_Q + C_E) ~ C_E       (Eq. 5)

Two shell-filling rules are provided: the paper's simplified
``Ns = diameter(nm) - 1`` and the physical van-der-Waals filling (shells
spaced by 0.34 nm down to an inner diameter of ``D/2``), which DESIGN.md
flags as an ablation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from enum import Enum

from repro.constants import (
    KINETIC_INDUCTANCE_PER_CHANNEL,
    MFP_DIAMETER_RATIO,
    QUANTUM_CAPACITANCE_PER_CHANNEL,
    QUANTUM_CONDUCTANCE,
    ROOM_TEMPERATURE,
    VDW_SHELL_PITCH,
)
from repro.core.doping import DopingProfile
from repro.core.electrostatics import (
    DEFAULT_OXIDE_PERMITTIVITY,
    series_capacitance,
    wire_over_plane_capacitance,
)


class ShellFillingRule(Enum):
    """How the number of shells of a MWCNT is derived from its outer diameter."""

    PAPER_SIMPLIFIED = "paper"
    """The paper's rule below Eq. (5): ``Ns = diameter(nm) - 1``, shells spread
    evenly between ``D`` and ``D/2``."""

    VAN_DER_WAALS = "vdw"
    """Physical filling: shell diameters ``D, D - 2*0.34 nm, ...`` down to
    ``D/2`` (the paper's stated inner-diameter cut-off)."""


def shell_diameters(
    outer_diameter: float,
    rule: ShellFillingRule = ShellFillingRule.PAPER_SIMPLIFIED,
    inner_diameter_ratio: float = 0.5,
) -> list[float]:
    """Diameters (metre) of every shell of a MWCNT, outermost first.

    Parameters
    ----------
    outer_diameter:
        Outer shell diameter in metre.
    rule:
        Shell-filling rule (see :class:`ShellFillingRule`).
    inner_diameter_ratio:
        Innermost shell diameter as a fraction of the outer diameter; the
        paper assumes shells are present down to ``D/2``.
    """
    if outer_diameter <= 0:
        raise ValueError("outer diameter must be positive")
    if not 0.0 < inner_diameter_ratio < 1.0:
        raise ValueError("inner diameter ratio must lie in (0, 1)")

    inner_diameter = outer_diameter * inner_diameter_ratio

    if rule is ShellFillingRule.PAPER_SIMPLIFIED:
        n_shells = max(1, round(outer_diameter * 1.0e9) - 1)
        if n_shells == 1:
            return [outer_diameter]
        step = (outer_diameter - inner_diameter) / (n_shells - 1)
        return [outer_diameter - i * step for i in range(n_shells)]

    if rule is ShellFillingRule.VAN_DER_WAALS:
        diameters = []
        d = outer_diameter
        while d >= inner_diameter - 1.0e-15:
            diameters.append(d)
            d -= 2.0 * VDW_SHELL_PITCH
        return diameters

    raise ValueError(f"unknown shell filling rule {rule!r}")


@dataclass(frozen=True)
class MWCNTInterconnect:
    """Compact model of a multi-wall CNT interconnect (paper Eqs. 4-5).

    Attributes
    ----------
    outer_diameter:
        Outermost shell diameter ``D_max`` in metre (paper uses 10/14/22 nm).
    length:
        Interconnect length in metre.
    doping:
        Doping profile; ``channels_per_shell`` is the paper's ``Nc`` knob.
    filling_rule:
        How shells are counted (paper simplified rule or van der Waals).
    contact_resistance:
        Extra metal-CNT contact resistance in ohm (per tube, both contacts
        combined) added to the intrinsic term.  0 models an ideal contact.
    height_above_plane:
        Tube-axis height above the return plane in metre (sets ``C_E``).
    relative_permittivity:
        Dielectric constant of the surrounding ILD.
    temperature:
        Operating temperature in kelvin.
    per_shell_mfp:
        When True (default) each shell uses its own mean free path
        ``1000 d_shell``; when False all shells reuse the outer-shell value,
        exactly as written in Eq. (4).
    defect_mfp:
        Optional defect-limited mean free path in metre (Matthiessen).
    """

    outer_diameter: float
    length: float
    doping: DopingProfile = field(default_factory=DopingProfile.pristine)
    filling_rule: ShellFillingRule = ShellFillingRule.PAPER_SIMPLIFIED
    contact_resistance: float = 0.0
    height_above_plane: float = 60.0e-9
    relative_permittivity: float = DEFAULT_OXIDE_PERMITTIVITY
    temperature: float = ROOM_TEMPERATURE
    per_shell_mfp: bool = False
    defect_mfp: float | None = None

    def __post_init__(self) -> None:
        if self.outer_diameter <= 0:
            raise ValueError("outer diameter must be positive")
        if self.length <= 0:
            raise ValueError("length must be positive")
        if self.contact_resistance < 0:
            raise ValueError("contact resistance cannot be negative")
        if self.temperature <= 0:
            raise ValueError("temperature must be positive")

    # --- shells and channels ---------------------------------------------------

    @property
    def shells(self) -> list[float]:
        """Shell diameters in metre, outermost first."""
        return shell_diameters(self.outer_diameter, self.filling_rule)

    @property
    def shell_count(self) -> int:
        """Number of shells ``Ns``."""
        return len(self.shells)

    @property
    def channels_per_shell(self) -> float:
        """Conducting channels per shell ``Nc`` (doping knob)."""
        return self.doping.channels_per_shell

    @property
    def total_channels(self) -> float:
        """Total conducting channels ``N_tot = Ns * Nc`` (paper Section III.C)."""
        return self.shell_count * self.channels_per_shell

    def _shell_mfp(self, shell_diameter: float) -> float:
        reference = shell_diameter if self.per_shell_mfp else self.outer_diameter
        phonon = MFP_DIAMETER_RATIO * reference * (ROOM_TEMPERATURE / self.temperature)
        if self.defect_mfp is None:
            return phonon
        return 1.0 / (1.0 / phonon + 1.0 / self.defect_mfp)

    @property
    def mean_free_path(self) -> float:
        """Outer-shell mean free path in metre (the ``L_mfp`` of Eq. 4)."""
        return self._shell_mfp(self.outer_diameter)

    # --- resistance (Eq. 4) -------------------------------------------------------

    def shell_conductance(self, shell_diameter: float) -> float:
        """Conductance of one shell, ``Nc * G0 / (1 + L / L_mfp)`` in siemens."""
        mfp = self._shell_mfp(shell_diameter)
        per_channel = QUANTUM_CONDUCTANCE / (1.0 + self.length / mfp)
        return self.channels_per_shell * per_channel

    @property
    def intrinsic_resistance(self) -> float:
        """Resistance of the parallel shell stack without extra contact R (ohm)."""
        total = sum(self.shell_conductance(d) for d in self.shells)
        return 1.0 / total

    @property
    def resistance(self) -> float:
        """Total two-terminal resistance in ohm (Eq. 4 plus contact term)."""
        return self.contact_resistance + self.intrinsic_resistance

    @property
    def conductance(self) -> float:
        """Total two-terminal conductance in siemens."""
        return 1.0 / self.resistance

    @property
    def resistance_per_length(self) -> float:
        """Distributed (scattering-only) resistance in ohm per metre.

        This is the slope of ``R(L)``, used when the line is expanded into a
        distributed RC ladder for transient simulation.
        """
        per_shell = [
            self.channels_per_shell * QUANTUM_CONDUCTANCE * self._shell_mfp(d)
            for d in self.shells
        ]
        # Each shell contributes conductance Nc*G0*mfp/L in the diffusive
        # limit; the distributed resistance per length is the reciprocal sum.
        return 1.0 / sum(per_shell)

    @property
    def lumped_contact_resistance(self) -> float:
        """Length-independent part of the resistance (quantum + imperfect contacts)."""
        total_quantum = sum(
            self.channels_per_shell * QUANTUM_CONDUCTANCE for _ in self.shells
        )
        return self.contact_resistance + 1.0 / total_quantum

    # --- capacitance (Eq. 5) ---------------------------------------------------------

    @property
    def quantum_capacitance_per_length(self) -> float:
        """``Nc * Ns * C_Q`` in farad per metre."""
        return self.total_channels * QUANTUM_CAPACITANCE_PER_CHANNEL

    @property
    def electrostatic_capacitance_per_length(self) -> float:
        """Electrostatic capacitance ``C_E`` in farad per metre (doping independent)."""
        return wire_over_plane_capacitance(
            self.outer_diameter, self.height_above_plane, self.relative_permittivity
        )

    @property
    def capacitance_per_length(self) -> float:
        """Series combination of Eq. (5) in farad per metre (~ ``C_E``)."""
        return series_capacitance(
            self.quantum_capacitance_per_length, self.electrostatic_capacitance_per_length
        )

    @property
    def capacitance(self) -> float:
        """Total line capacitance in farad."""
        return self.capacitance_per_length * self.length

    # --- inductance ---------------------------------------------------------------------

    @property
    def kinetic_inductance_per_length(self) -> float:
        """Kinetic inductance of the parallel channel stack in henry per metre."""
        return KINETIC_INDUCTANCE_PER_CHANNEL / self.total_channels

    @property
    def inductance(self) -> float:
        """Total (kinetic) inductance in henry."""
        return self.kinetic_inductance_per_length * self.length

    # --- derived figures of merit -----------------------------------------------------------

    @property
    def cross_section_area(self) -> float:
        """Geometric cross-section ``pi D^2 / 4`` in square metre."""
        return math.pi * self.outer_diameter**2 / 4.0

    @property
    def effective_conductivity(self) -> float:
        """Effective conductivity ``L / (R A)`` in siemens per metre (Fig. 9)."""
        return self.length / (self.resistance * self.cross_section_area)

    @property
    def effective_resistivity(self) -> float:
        """Effective resistivity ``R A / L`` in ohm metre."""
        return 1.0 / self.effective_conductivity

    # --- convenience ----------------------------------------------------------------------------

    def with_length(self, length: float) -> "MWCNTInterconnect":
        """Copy of this interconnect with a different length."""
        return replace(self, length=length)

    def with_doping(self, doping: DopingProfile) -> "MWCNTInterconnect":
        """Copy of this interconnect with a different doping profile."""
        return replace(self, doping=doping)

    def rc_delay_estimate(self) -> float:
        """Distributed-RC (Elmore) delay estimate ``0.5 R C`` in second."""
        return 0.5 * self.resistance * self.capacitance
