"""Unified interconnect-line front end.

:class:`InterconnectLine` wraps any of the material models (SWCNT, MWCNT,
copper, bundle, composite) behind one interface that the circuit-level
benchmark of Figs. 11-12 consumes: total resistance and capacitance, a
length-independent contact term, a distributed-RC ladder expansion and an
Elmore delay estimate.  This is the hand-off point between the compact models
(Section III.C) and circuit simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Protocol, runtime_checkable


@runtime_checkable
class Conductor(Protocol):
    """Anything that exposes the resistance/capacitance interface of a line.

    Satisfied by :class:`~repro.core.swcnt.SWCNTInterconnect`,
    :class:`~repro.core.mwcnt.MWCNTInterconnect`,
    :class:`~repro.core.copper.CopperInterconnect`,
    :class:`~repro.core.bundle.SWCNTBundle` and
    :class:`~repro.core.composite.CuCNTComposite`.

    This is the contract the experiment engine sweeps over: any material
    satisfying it can be compared uniformly (see :func:`conductor_record`),
    wrapped into an :class:`InterconnectLine` and driven by the circuit
    benchmarks.  Optional extras (``effective_conductivity``,
    ``max_current``, contact-resistance terms) are picked up dynamically
    when present.
    """

    length: float

    @property
    def resistance(self) -> float: ...

    @property
    def capacitance(self) -> float: ...


#: Backwards-compatible alias; the protocol was named ``LineMaterial`` before
#: the experiment-engine redesign promoted it to the shared sweep contract.
LineMaterial = Conductor


def conductor_record(conductor: Conductor, label: str | None = None) -> dict[str, Any]:
    """Uniform comparison record of any :class:`Conductor`.

    Core columns (always present): ``label``, ``kind`` (the material class
    name), ``length_um``, ``resistance_ohm`` and ``capacitance_f``.  Optional
    material properties are added when the object exposes them:
    ``conductivity_ms_per_m`` (from ``effective_conductivity``) and
    ``max_current_ua`` (from ``max_current``).  This is what lets engines
    sweep heterogeneous materials and still produce one columnar table.
    """
    record: dict[str, Any] = {
        "label": label or type(conductor).__name__,
        "kind": type(conductor).__name__,
        "length_um": conductor.length * 1e6,
        "resistance_ohm": float(conductor.resistance),
        "capacitance_f": float(conductor.capacitance),
    }
    conductivity = getattr(conductor, "effective_conductivity", None)
    if conductivity is not None:
        record["conductivity_ms_per_m"] = float(conductivity) / 1e6
    max_current = getattr(conductor, "max_current", None)
    if max_current is not None:
        record["max_current_ua"] = float(max_current) * 1e6
    return record


@dataclass(frozen=True)
class DistributedRC:
    """A distributed RC description of an interconnect line.

    Attributes
    ----------
    total_resistance:
        Distributed (length-proportional) resistance in ohm.
    total_capacitance:
        Total line capacitance in farad.
    contact_resistance:
        Length-independent lumped resistance in ohm, split equally between the
        two ends when the ladder is built (quantum/imperfect contact terms of
        a CNT, zero for copper).
    n_segments:
        Number of RC segments the ladder is divided into.
    """

    total_resistance: float
    total_capacitance: float
    contact_resistance: float = 0.0
    n_segments: int = 20

    def __post_init__(self) -> None:
        if self.total_resistance < 0 or self.total_capacitance < 0:
            raise ValueError("resistance and capacitance must be non-negative")
        if self.contact_resistance < 0:
            raise ValueError("contact resistance cannot be negative")
        if self.n_segments < 1:
            raise ValueError("need at least one segment")

    @property
    def segment_resistance(self) -> float:
        """Resistance of one ladder segment in ohm."""
        return self.total_resistance / self.n_segments

    @property
    def segment_capacitance(self) -> float:
        """Capacitance of one ladder segment in farad."""
        return self.total_capacitance / self.n_segments

    @property
    def end_resistance(self) -> float:
        """Lumped resistance placed at each end of the ladder in ohm."""
        return self.contact_resistance / 2.0

    def segments(self) -> list[tuple[float, float]]:
        """(resistance, capacitance) of every ladder segment, near end first."""
        return [(self.segment_resistance, self.segment_capacitance)] * self.n_segments

    def elmore_delay(self, driver_resistance: float = 0.0, load_capacitance: float = 0.0) -> float:
        """Elmore delay of driver + distributed line + load in second.

        Uses the closed form for a uniformly distributed line:

            tau = R_drv (C_line + C_load) + R_line (C_line / 2 + C_load)

        with the lumped contact resistance folded into the driver-side and
        load-side terms.
        """
        if driver_resistance < 0 or load_capacitance < 0:
            raise ValueError("driver resistance and load capacitance must be non-negative")
        r_drv = driver_resistance + self.end_resistance
        r_line = self.total_resistance
        r_far = self.end_resistance
        c_line = self.total_capacitance
        c_load = load_capacitance
        return (
            r_drv * (c_line + c_load)
            + r_line * (c_line / 2.0 + c_load)
            + r_far * c_load
        )

    def resized(self, n_segments: int) -> "DistributedRC":
        """Copy with a different segment count (ablation knob)."""
        return DistributedRC(
            total_resistance=self.total_resistance,
            total_capacitance=self.total_capacitance,
            contact_resistance=self.contact_resistance,
            n_segments=n_segments,
        )


@dataclass(frozen=True)
class InterconnectLine:
    """Material-agnostic interconnect line for circuit-level benchmarking.

    Attributes
    ----------
    material:
        Any object satisfying :class:`Conductor`.
    n_segments:
        Number of RC segments used when the line is expanded into a ladder.
    """

    material: Conductor
    n_segments: int = 20

    def __post_init__(self) -> None:
        if self.n_segments < 1:
            raise ValueError("need at least one segment")

    @property
    def length(self) -> float:
        """Line length in metre."""
        return self.material.length

    @property
    def total_resistance(self) -> float:
        """Total end-to-end resistance in ohm (including contact terms)."""
        return self.material.resistance

    @property
    def total_capacitance(self) -> float:
        """Total line capacitance in farad."""
        return self.material.capacitance

    @property
    def contact_resistance(self) -> float:
        """Length-independent lumped resistance in ohm.

        CNT materials expose it as ``lumped_contact_resistance`` (MWCNT) or
        through their quantum contact term (SWCNT); copper-like materials have
        none.
        """
        lumped = getattr(self.material, "lumped_contact_resistance", None)
        if lumped is not None:
            return float(lumped)
        quantum = getattr(self.material, "quantum_contact_resistance", None)
        extra = getattr(self.material, "contact_resistance", 0.0)
        if quantum is not None:
            return float(quantum) + float(extra)
        return float(extra)

    @property
    def distributed_resistance(self) -> float:
        """Length-proportional part of the resistance in ohm."""
        return max(self.total_resistance - self.contact_resistance, 0.0)

    def distributed(self) -> DistributedRC:
        """Expand the line into a :class:`DistributedRC` ladder description."""
        return DistributedRC(
            total_resistance=self.distributed_resistance,
            total_capacitance=self.total_capacitance,
            contact_resistance=self.contact_resistance,
            n_segments=self.n_segments,
        )

    def elmore_delay(self, driver_resistance: float = 0.0, load_capacitance: float = 0.0) -> float:
        """Elmore delay estimate of driver + line + load in second."""
        return self.distributed().elmore_delay(driver_resistance, load_capacitance)

    def time_constant(self) -> float:
        """Intrinsic RC time constant ``R_total C_total`` in second."""
        return self.total_resistance * self.total_capacitance
