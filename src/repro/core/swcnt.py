"""Single-wall CNT interconnect compact model.

A metallic SWCNT of diameter ``d`` behaves as a quantum wire with ``Nc``
conducting channels (2 when pristine).  Its two-terminal resistance follows
the standard ballistic-to-diffusive interpolation used by the paper's
compact models (references [19]-[21]):

    R(L) = R_contact + (R_Q / Nc) * (1 + L / lambda_mfp)

with the quantum resistance ``R_Q = h / 2 e^2 ~ 12.9 kOhm`` and a mean free
path ``lambda_mfp ~ 1000 d`` at room temperature.  Capacitance is the series
combination of the quantum capacitance (``Nc`` channels in parallel) and the
geometry-dependent electrostatic capacitance; inductance is dominated by the
kinetic term.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.constants import (
    KINETIC_INDUCTANCE_PER_CHANNEL,
    MFP_DIAMETER_RATIO,
    QUANTUM_CAPACITANCE_PER_CHANNEL,
    QUANTUM_RESISTANCE,
    ROOM_TEMPERATURE,
)
from repro.core.doping import DopingProfile
from repro.core.electrostatics import (
    DEFAULT_OXIDE_PERMITTIVITY,
    series_capacitance,
    wire_over_plane_capacitance,
)


@dataclass(frozen=True)
class SWCNTInterconnect:
    """Compact model of a single-wall CNT interconnect.

    Attributes
    ----------
    diameter:
        Tube diameter in metre (typical local-interconnect CNTs: ~1 nm).
    length:
        Interconnect length in metre.
    doping:
        Doping profile; controls the number of conducting channels.
    contact_resistance:
        *Extra* (imperfect) metal-CNT contact resistance in ohm, added on top
        of the intrinsic quantum resistance.  0 models an ideal contact.
    height_above_plane:
        Distance of the tube axis above the return plane in metre; sets the
        electrostatic capacitance.
    relative_permittivity:
        Dielectric constant of the surrounding inter-layer dielectric.
    temperature:
        Operating temperature in kelvin (scales the mean free path as 1/T
        relative to room temperature, the usual acoustic-phonon limit).
    defect_mfp:
        Optional defect-limited mean free path in metre; combined with the
        phonon mean free path by Matthiessen's rule.  ``None`` means an
        undamaged tube.
    """

    diameter: float
    length: float
    doping: DopingProfile = field(default_factory=DopingProfile.pristine)
    contact_resistance: float = 0.0
    height_above_plane: float = 60.0e-9
    relative_permittivity: float = DEFAULT_OXIDE_PERMITTIVITY
    temperature: float = ROOM_TEMPERATURE
    defect_mfp: float | None = None

    def __post_init__(self) -> None:
        if self.diameter <= 0:
            raise ValueError("diameter must be positive")
        if self.length <= 0:
            raise ValueError("length must be positive")
        if self.contact_resistance < 0:
            raise ValueError("contact resistance cannot be negative")
        if self.temperature <= 0:
            raise ValueError("temperature must be positive")
        if self.defect_mfp is not None and self.defect_mfp <= 0:
            raise ValueError("defect mean free path must be positive when given")

    # --- channels and scattering ------------------------------------------------

    @property
    def channels(self) -> float:
        """Number of conducting channels ``Nc`` of the tube."""
        return self.doping.channels_per_shell

    @property
    def mean_free_path(self) -> float:
        """Effective electron mean free path in metre.

        The phonon-limited mean free path ``1000 d`` at 300 K scales inversely
        with temperature; a defect-limited mean free path, when present, is
        combined through Matthiessen's rule.
        """
        phonon = MFP_DIAMETER_RATIO * self.diameter * (ROOM_TEMPERATURE / self.temperature)
        if self.defect_mfp is None:
            return phonon
        return 1.0 / (1.0 / phonon + 1.0 / self.defect_mfp)

    # --- resistance ---------------------------------------------------------------

    @property
    def quantum_contact_resistance(self) -> float:
        """Intrinsic (unavoidable) contact resistance ``R_Q / Nc`` in ohm."""
        return QUANTUM_RESISTANCE / self.channels

    @property
    def resistance_per_length(self) -> float:
        """Distributed (scattering) resistance in ohm per metre."""
        return QUANTUM_RESISTANCE / (self.channels * self.mean_free_path)

    @property
    def resistance(self) -> float:
        """Total two-terminal resistance in ohm (Eq. 4 specialised to one shell)."""
        intrinsic = self.quantum_contact_resistance * (1.0 + self.length / self.mean_free_path)
        return self.contact_resistance + intrinsic

    @property
    def conductance(self) -> float:
        """Total two-terminal conductance in siemens."""
        return 1.0 / self.resistance

    # --- capacitance ----------------------------------------------------------------

    @property
    def quantum_capacitance_per_length(self) -> float:
        """Quantum capacitance ``Nc * C_Q`` in farad per metre."""
        return self.channels * QUANTUM_CAPACITANCE_PER_CHANNEL

    @property
    def electrostatic_capacitance_per_length(self) -> float:
        """Electrostatic capacitance ``C_E`` in farad per metre (geometry only)."""
        return wire_over_plane_capacitance(
            self.diameter, self.height_above_plane, self.relative_permittivity
        )

    @property
    def capacitance_per_length(self) -> float:
        """Series combination of quantum and electrostatic capacitance (F/m)."""
        return series_capacitance(
            self.quantum_capacitance_per_length, self.electrostatic_capacitance_per_length
        )

    @property
    def capacitance(self) -> float:
        """Total line capacitance in farad."""
        return self.capacitance_per_length * self.length

    # --- inductance -----------------------------------------------------------------

    @property
    def kinetic_inductance_per_length(self) -> float:
        """Kinetic inductance ``L_K / Nc`` in henry per metre."""
        return KINETIC_INDUCTANCE_PER_CHANNEL / self.channels

    @property
    def inductance(self) -> float:
        """Total (kinetic) inductance in henry."""
        return self.kinetic_inductance_per_length * self.length

    # --- derived figures of merit ------------------------------------------------------

    @property
    def cross_section_area(self) -> float:
        """Geometric cross-section ``pi d^2 / 4`` in square metre."""
        return math.pi * self.diameter**2 / 4.0

    @property
    def effective_conductivity(self) -> float:
        """Effective conductivity ``L / (R A)`` in siemens per metre.

        This is the quantity plotted against Cu in Fig. 9: for short lengths
        the ballistic (length-independent) resistance makes the effective
        conductivity rise linearly with length before it saturates at the
        diffusive value.
        """
        return self.length / (self.resistance * self.cross_section_area)

    @property
    def effective_resistivity(self) -> float:
        """Effective resistivity ``R A / L`` in ohm metre."""
        return 1.0 / self.effective_conductivity

    # --- convenience -------------------------------------------------------------------

    def with_length(self, length: float) -> "SWCNTInterconnect":
        """Copy of this interconnect with a different length."""
        return replace(self, length=length)

    def with_doping(self, doping: DopingProfile) -> "SWCNTInterconnect":
        """Copy of this interconnect with a different doping profile."""
        return replace(self, doping=doping)

    def rc_delay_estimate(self) -> float:
        """Distributed-RC (Elmore) delay estimate ``0.5 R C`` in second."""
        return 0.5 * self.resistance * self.capacitance
