"""Geometry-dependent electrostatic capacitance models.

The compact model of Eq. (5) needs the electrostatic capacitance ``C_E`` of
the interconnect, which depends only on the surrounding geometry and the
dielectric, not on doping.  The expressions below are the standard
closed-form results used in CNT interconnect compact modelling (paper
references [19]-[21]): an isolated cylinder over a ground plane, a cylinder
between two planes, parallel-plate capacitance for wide copper lines, and
the coupling capacitance between neighbouring cylinders.
"""

from __future__ import annotations

import math

from repro.constants import VACUUM_PERMITTIVITY

DEFAULT_OXIDE_PERMITTIVITY = 2.2
"""Relative permittivity of a typical BEOL low-k inter-layer dielectric."""


def wire_over_plane_capacitance(
    diameter: float, height_above_plane: float, relative_permittivity: float = DEFAULT_OXIDE_PERMITTIVITY
) -> float:
    """Per-unit-length capacitance of a cylindrical wire over a ground plane.

    Uses the exact image-charge result
    ``C_E = 2 pi epsilon / arccosh(2 h / d)`` where ``h`` is the distance from
    the wire *axis* to the plane.

    Parameters
    ----------
    diameter:
        Wire diameter in metre.
    height_above_plane:
        Distance between the wire axis and the ground plane in metre; must be
        larger than the wire radius.
    relative_permittivity:
        Relative permittivity of the surrounding dielectric.

    Returns
    -------
    float
        Capacitance per unit length in farad per metre.
    """
    if diameter <= 0:
        raise ValueError("diameter must be positive")
    if height_above_plane <= diameter / 2.0:
        raise ValueError("wire axis must be above the plane by more than its radius")
    epsilon = relative_permittivity * VACUUM_PERMITTIVITY
    return 2.0 * math.pi * epsilon / math.acosh(2.0 * height_above_plane / diameter)


def wire_between_planes_capacitance(
    diameter: float, plane_separation: float, relative_permittivity: float = DEFAULT_OXIDE_PERMITTIVITY
) -> float:
    """Per-unit-length capacitance of a wire centred between two ground planes.

    Approximates the two plane contributions as independent image problems
    (each plane at half the separation), which is accurate when the wire
    diameter is small compared to the separation -- the regime of CNT
    interconnects between adjacent metal levels.

    Parameters
    ----------
    diameter:
        Wire diameter in metre.
    plane_separation:
        Distance between the two planes in metre; the wire sits midway.
    relative_permittivity:
        Relative permittivity of the surrounding dielectric.
    """
    if plane_separation <= diameter:
        raise ValueError("plane separation must exceed the wire diameter")
    half = plane_separation / 2.0
    single = wire_over_plane_capacitance(diameter, half, relative_permittivity)
    return 2.0 * single


def coupled_line_capacitance(
    diameter: float, centre_spacing: float, relative_permittivity: float = DEFAULT_OXIDE_PERMITTIVITY
) -> float:
    """Per-unit-length coupling capacitance between two parallel cylinders.

    Exact two-cylinder result ``C = pi epsilon / arccosh(s / d)`` with ``s``
    the centre-to-centre spacing.  This is the line-to-line crosstalk term
    highlighted by the TCAD extraction of Fig. 10a.

    Parameters
    ----------
    diameter:
        Wire diameter in metre (both wires identical).
    centre_spacing:
        Centre-to-centre spacing in metre; must exceed the diameter.
    relative_permittivity:
        Relative permittivity of the surrounding dielectric.
    """
    if centre_spacing <= diameter:
        raise ValueError("centre spacing must exceed the wire diameter")
    epsilon = relative_permittivity * VACUUM_PERMITTIVITY
    return math.pi * epsilon / math.acosh(centre_spacing / diameter)


def parallel_plate_capacitance(
    width: float,
    dielectric_thickness: float,
    relative_permittivity: float = DEFAULT_OXIDE_PERMITTIVITY,
    fringe_factor: float = 1.15,
) -> float:
    """Per-unit-length capacitance of a wide (copper) line over a plane.

    ``C = fringe_factor * epsilon * w / t`` -- the plate term with a simple
    multiplicative allowance for fringing fields, adequate for the aspect
    ratios of the Cu reference lines in the paper's benchmark.

    Parameters
    ----------
    width:
        Line width in metre.
    dielectric_thickness:
        Dielectric thickness between line bottom and ground plane in metre.
    relative_permittivity:
        Relative permittivity of the dielectric.
    fringe_factor:
        Multiplier accounting for fringing fields (>= 1).
    """
    if width <= 0 or dielectric_thickness <= 0:
        raise ValueError("width and dielectric thickness must be positive")
    if fringe_factor < 1.0:
        raise ValueError("fringe factor must be >= 1")
    epsilon = relative_permittivity * VACUUM_PERMITTIVITY
    return fringe_factor * epsilon * width / dielectric_thickness


def series_capacitance(c1: float, c2: float) -> float:
    """Series combination of two per-unit-length capacitances.

    Used for the quantum/electrostatic series combination of Eq. (5);
    degenerate inputs (either capacitance zero) return 0.
    """
    if c1 < 0 or c2 < 0:
        raise ValueError("capacitances must be non-negative")
    if c1 == 0.0 or c2 == 0.0:
        return 0.0
    return c1 * c2 / (c1 + c2)
