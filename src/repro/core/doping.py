"""Doping enhancement model for CNT interconnect compact models.

Section III.C of the paper introduces doping through a single knob: the number
of conducting channels per shell ``Nc``.  A pristine metallic shell has
``Nc = 2``; charge-transfer doping (iodine or PtCl4) shifts the Fermi level
into regions of higher subband density, opening additional channels, and the
paper sweeps ``Nc`` from 2 to 10 to represent different doping concentrations.

This module provides:

* :class:`DopingProfile` -- a declarative description of a doping state
  (dopant species, site, Fermi shift and/or explicit ``Nc``),
* :func:`channels_per_shell_from_fermi_shift` -- the bridge from the
  atomistic rigid-band picture to the compact-model ``Nc`` knob,
* convenience constructors for the paper's pristine / iodine / PtCl4 cases.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.constants import ROOM_TEMPERATURE

PRISTINE_CHANNELS_PER_SHELL = 2.0
"""Conducting channels of an undoped metallic shell (paper Eq. 1 discussion)."""

MAX_CHANNELS_PER_SHELL = 10.0
"""Upper end of the paper's doping sweep (Fig. 12)."""


class DopantSite(Enum):
    """Where the dopant sits relative to the tube.

    The paper distinguishes *external* doping (PtCl4 solution applied to the
    outside, Fig. 2d) from *internal* doping (dopants inserted through opened
    tube ends, Fig. 3) and reports from simulation that internal doping is
    more stable.  The stability consequences are modelled in
    :mod:`repro.process.doping_process`; here the site is carried as metadata.
    """

    NONE = "none"
    EXTERNAL = "external"
    INTERNAL = "internal"


@dataclass(frozen=True)
class DopingProfile:
    """Doping state of a CNT interconnect for compact modelling.

    Attributes
    ----------
    channels_per_shell:
        Conducting channels per shell ``Nc`` (2 for pristine, up to ~10 for
        heavy doping in the paper's sweep).
    dopant:
        Dopant species label ("iodine", "PtCl4", ...).
    site:
        Dopant site (:class:`DopantSite`).
    fermi_shift_ev:
        Rigid-band Fermi shift in eV associated with this doping level
        (negative for p-type); informational unless the profile was built
        from a shift.
    """

    channels_per_shell: float = PRISTINE_CHANNELS_PER_SHELL
    dopant: str = "none"
    site: DopantSite = DopantSite.NONE
    fermi_shift_ev: float = 0.0

    def __post_init__(self) -> None:
        if self.channels_per_shell < PRISTINE_CHANNELS_PER_SHELL:
            raise ValueError(
                "channels per shell cannot drop below the pristine value of "
                f"{PRISTINE_CHANNELS_PER_SHELL}"
            )

    @property
    def is_doped(self) -> bool:
        """True when the profile increases the channel count above pristine."""
        return self.channels_per_shell > PRISTINE_CHANNELS_PER_SHELL

    @property
    def enhancement_factor(self) -> float:
        """Channel-count ratio doped / pristine (resistance reduction factor)."""
        return self.channels_per_shell / PRISTINE_CHANNELS_PER_SHELL

    # --- constructors ---------------------------------------------------------

    @classmethod
    def pristine(cls) -> "DopingProfile":
        """Undoped metallic CNT (Nc = 2)."""
        return cls()

    @classmethod
    def from_channels(
        cls, channels_per_shell: float, dopant: str = "generic", site: DopantSite = DopantSite.INTERNAL
    ) -> "DopingProfile":
        """Profile specified directly by the compact-model knob ``Nc``."""
        return cls(channels_per_shell=channels_per_shell, dopant=dopant, site=site)

    @classmethod
    def iodine(cls, channels_per_shell: float = 5.0, site: DopantSite = DopantSite.INTERNAL) -> "DopingProfile":
        """Iodine charge-transfer doping.

        The default ``Nc = 5`` reproduces the paper's doped SWCNT(7,7)
        ballistic conductance of 0.387 mS (five quantum channels).
        """
        return cls(
            channels_per_shell=channels_per_shell,
            dopant="iodine",
            site=site,
            fermi_shift_ev=-0.6,
        )

    @classmethod
    def ptcl4(cls, channels_per_shell: float = 4.0, site: DopantSite = DopantSite.EXTERNAL) -> "DopingProfile":
        """PtCl4 solution doping as used for the side-contacted MWCNT of Fig. 2d."""
        return cls(
            channels_per_shell=channels_per_shell,
            dopant="PtCl4",
            site=site,
            fermi_shift_ev=-0.4,
        )

    @classmethod
    def from_fermi_shift(
        cls,
        chirality,
        fermi_shift_ev: float,
        dopant: str = "generic",
        site: DopantSite = DopantSite.INTERNAL,
        temperature: float = ROOM_TEMPERATURE,
    ) -> "DopingProfile":
        """Build a profile from an atomistic rigid-band Fermi shift.

        The channel count is evaluated with the tight-binding Landauer model
        of :mod:`repro.atomistic`; the result is clamped to at least the
        pristine value so a small shift never *reduces* the compact-model
        channel count.
        """
        channels = channels_per_shell_from_fermi_shift(
            chirality, fermi_shift_ev, temperature=temperature
        )
        return cls(
            channels_per_shell=max(channels, PRISTINE_CHANNELS_PER_SHELL),
            dopant=dopant,
            site=site,
            fermi_shift_ev=fermi_shift_ev,
        )


def channels_per_shell_from_fermi_shift(
    chirality,
    fermi_shift_ev: float,
    temperature: float = ROOM_TEMPERATURE,
    n_k: int = 201,
) -> float:
    """Conducting channels per shell for a given rigid-band Fermi shift.

    This is the quantitative bridge between the atomistic doping picture
    (Fig. 8b/c: Fermi shift) and the circuit-level compact model (Fig. 12:
    channels per shell ``Nc``).

    Parameters
    ----------
    chirality:
        :class:`repro.atomistic.Chirality` of the shell.
    fermi_shift_ev:
        Rigid Fermi-level shift in eV (negative = p-type).
    temperature:
        Temperature in kelvin.
    n_k:
        Number of k-points for the band structure.
    """
    from repro.atomistic.doping import channels_after_doping

    return channels_after_doping(chirality, fermi_shift_ev, temperature=temperature, n_k=n_k)


def doping_sweep(n_levels: int = 9) -> list[DopingProfile]:
    """The paper's Fig. 12 doping sweep: Nc from 2 (pristine) to 10.

    Parameters
    ----------
    n_levels:
        Number of evenly spaced channel counts between 2 and 10 inclusive.
    """
    if n_levels < 2:
        raise ValueError("need at least two levels (pristine and one doped)")
    step = (MAX_CHANNELS_PER_SHELL - PRISTINE_CHANNELS_PER_SHELL) / (n_levels - 1)
    profiles = []
    for i in range(n_levels):
        channels = PRISTINE_CHANNELS_PER_SHELL + i * step
        if i == 0:
            profiles.append(DopingProfile.pristine())
        else:
            profiles.append(DopingProfile.from_channels(channels))
    return profiles
