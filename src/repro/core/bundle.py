"""SWCNT bundle (via / line) compact model.

Vertically aligned SWCNT bundles are the candidate replacement for copper
vias; the paper notes that to match copper on resistance a pure CNT
interconnect needs a minimum tube density of 0.096 nm^-2 (Section I,
ITRS-derived figure).  This module models a bundle as a parallel array of
SWCNTs with a given areal density and metallic fraction, providing
resistance, ampacity and the density checks the paper quotes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.constants import (
    CNT_MAX_CURRENT_PER_TUBE,
    MIN_CNT_DENSITY_FOR_DELAY,
    ROOM_TEMPERATURE,
)
from repro.core.doping import DopingProfile
from repro.core.swcnt import SWCNTInterconnect

HEXAGONAL_PACKING_FRACTION = math.pi / (2.0 * math.sqrt(3.0))
"""Area fraction of circles in an ideal hexagonal close packing (~0.907)."""

DEFAULT_METALLIC_FRACTION = 1.0 / 3.0
"""Statistical metallic fraction of as-grown CNTs (2/3 are semiconducting)."""


def max_packing_density(diameter: float, spacing: float = 0.34e-9) -> float:
    """Maximum areal density (tubes per square metre) of a close-packed bundle.

    Tubes of diameter ``d`` separated by the van der Waals distance pack
    hexagonally with pitch ``d + spacing``.

    Parameters
    ----------
    diameter:
        Tube diameter in metre.
    spacing:
        Wall-to-wall spacing in metre (van der Waals distance by default).
    """
    if diameter <= 0:
        raise ValueError("diameter must be positive")
    pitch = diameter + spacing
    return 2.0 / (math.sqrt(3.0) * pitch**2)


@dataclass(frozen=True)
class SWCNTBundle:
    """A bundle of parallel SWCNTs filling a rectangular cross-section.

    Attributes
    ----------
    width, height:
        Cross-section of the trench or via the bundle fills, in metre.
    length:
        Bundle length in metre.
    tube_diameter:
        Individual tube diameter in metre.
    density:
        Areal tube density in tubes per square metre.  ``None`` uses the
        ideal close-packed density.
    metallic_fraction:
        Fraction of tubes that conduct (1/3 for as-grown, 1.0 for sorted or
        effectively-metallic doped tubes).
    doping:
        Doping profile applied to the conducting tubes.
    contact_resistance_per_tube:
        Extra contact resistance per tube in ohm.
    temperature:
        Operating temperature in kelvin.
    """

    width: float
    height: float
    length: float
    tube_diameter: float = 1.0e-9
    density: float | None = None
    metallic_fraction: float = DEFAULT_METALLIC_FRACTION
    doping: DopingProfile = field(default_factory=DopingProfile.pristine)
    contact_resistance_per_tube: float = 0.0
    temperature: float = ROOM_TEMPERATURE

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0 or self.length <= 0:
            raise ValueError("width, height and length must be positive")
        if self.tube_diameter <= 0:
            raise ValueError("tube diameter must be positive")
        if not 0.0 < self.metallic_fraction <= 1.0:
            raise ValueError("metallic fraction must lie in (0, 1]")
        if self.density is not None and self.density <= 0:
            raise ValueError("density must be positive when given")

    # --- geometry -------------------------------------------------------------

    @property
    def cross_section_area(self) -> float:
        """Bundle cross-section area in square metre."""
        return self.width * self.height

    @property
    def effective_density(self) -> float:
        """Areal density in tubes per square metre actually used by the model."""
        if self.density is not None:
            return min(self.density, max_packing_density(self.tube_diameter))
        return max_packing_density(self.tube_diameter)

    @property
    def tube_count(self) -> int:
        """Total number of tubes in the cross-section."""
        return max(1, int(self.effective_density * self.cross_section_area))

    @property
    def conducting_tube_count(self) -> int:
        """Number of (metallic) tubes that carry current."""
        return max(1, int(round(self.tube_count * self.metallic_fraction)))

    # --- electrical ---------------------------------------------------------------

    def _single_tube(self) -> SWCNTInterconnect:
        return SWCNTInterconnect(
            diameter=self.tube_diameter,
            length=self.length,
            doping=self.doping,
            contact_resistance=self.contact_resistance_per_tube,
            temperature=self.temperature,
        )

    @property
    def single_tube_resistance(self) -> float:
        """Resistance of one conducting tube in ohm."""
        return self._single_tube().resistance

    @property
    def resistance(self) -> float:
        """Bundle resistance in ohm (conducting tubes in parallel)."""
        return self.single_tube_resistance / self.conducting_tube_count

    @property
    def capacitance_per_length(self) -> float:
        """Ground capacitance per unit length in farad per metre.

        The bundle fills a trench of the given drawn width; its electrostatic
        capacitance is approximated by the parallel-plate (plus fringe)
        expression over a 50 nm low-k ILD, like the copper reference line.
        """
        from repro.core.electrostatics import parallel_plate_capacitance

        return parallel_plate_capacitance(self.width, 50.0e-9)

    @property
    def capacitance(self) -> float:
        """Total line capacitance in farad."""
        return self.capacitance_per_length * self.length

    @property
    def effective_conductivity(self) -> float:
        """Conductivity referred to the full cross-section in siemens per metre."""
        return self.length / (self.resistance * self.cross_section_area)

    @property
    def effective_resistivity(self) -> float:
        """Effective resistivity in ohm metre."""
        return 1.0 / self.effective_conductivity

    # --- ampacity ---------------------------------------------------------------------

    @property
    def max_current(self) -> float:
        """Maximum current of the bundle in ampere (20-25 uA per conducting tube)."""
        return self.conducting_tube_count * CNT_MAX_CURRENT_PER_TUBE

    @property
    def max_current_density(self) -> float:
        """Maximum current density referred to the full cross-section (A/m^2)."""
        return self.max_current / self.cross_section_area

    # --- paper checks -------------------------------------------------------------------

    def meets_minimum_density(self) -> bool:
        """True when the areal density reaches the paper's 0.096 nm^-2 threshold."""
        return self.effective_density >= MIN_CNT_DENSITY_FOR_DELAY

    def density_shortfall_factor(self) -> float:
        """How far below (or above) the minimum density the bundle sits.

        Values below 1 mean the bundle is too sparse for a pure-CNT
        interconnect to compete with copper on resistance.
        """
        return self.effective_density / MIN_CNT_DENSITY_FOR_DELAY

    def tubes_to_match_current(self, target_current: float) -> int:
        """Number of conducting tubes needed to carry ``target_current`` ampere.

        The paper's reliability argument: a handful of CNTs suffice to match
        the ~50 uA capability of a 100 nm x 50 nm Cu line.
        """
        if target_current <= 0:
            raise ValueError("target current must be positive")
        return int(math.ceil(target_current / CNT_MAX_CURRENT_PER_TUBE))

    # --- convenience -----------------------------------------------------------------------

    def with_density(self, density: float) -> "SWCNTBundle":
        """Copy of this bundle with a different areal density."""
        return replace(self, density=density)

    def with_length(self, length: float) -> "SWCNTBundle":
        """Copy of this bundle with a different length."""
        return replace(self, length=length)
