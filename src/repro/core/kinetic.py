"""Kinetic and magnetic inductance of CNT interconnects.

The inductance of a CNT interconnect is dominated by the kinetic term
``L_K = h / (2 e^2 v_F)`` per conducting channel (~16 nH/um), orders of
magnitude above the magnetic inductance of the same geometry.  Inductance
does not enter the paper's delay-ratio experiment directly (RC-dominated
lengths), but the compact model carries it so RLC analyses remain possible
and so the dominance of the kinetic term can be demonstrated.
"""

from __future__ import annotations

import math

from repro.constants import (
    KINETIC_INDUCTANCE_PER_CHANNEL,
    VACUUM_PERMITTIVITY,
)

VACUUM_PERMEABILITY = 4.0e-7 * math.pi
"""Vacuum permeability in henry per metre."""


def kinetic_inductance(total_channels: float) -> float:
    """Kinetic inductance per unit length of ``total_channels`` parallel channels.

    Parameters
    ----------
    total_channels:
        Total number of conducting channels (``Nc`` for a SWCNT,
        ``Nc * Ns`` for a MWCNT, tubes x channels for a bundle).

    Returns
    -------
    float
        Inductance in henry per metre.
    """
    if total_channels <= 0:
        raise ValueError("channel count must be positive")
    return KINETIC_INDUCTANCE_PER_CHANNEL / total_channels


def magnetic_inductance_over_plane(diameter: float, height_above_plane: float) -> float:
    """Magnetic (external) inductance of a wire over a ground plane (H/m).

    Dual of the image-charge capacitance formula:
    ``L_M = (mu_0 / 2 pi) arccosh(2 h / d)``.

    Parameters
    ----------
    diameter:
        Wire diameter in metre.
    height_above_plane:
        Distance from the wire axis to the return plane in metre.
    """
    if diameter <= 0:
        raise ValueError("diameter must be positive")
    if height_above_plane <= diameter / 2.0:
        raise ValueError("wire axis must be above the plane by more than its radius")
    return VACUUM_PERMEABILITY / (2.0 * math.pi) * math.acosh(2.0 * height_above_plane / diameter)


def kinetic_to_magnetic_ratio(
    total_channels: float, diameter: float, height_above_plane: float
) -> float:
    """Ratio of kinetic to magnetic inductance (>> 1 for realistic CNTs)."""
    return kinetic_inductance(total_channels) / magnetic_inductance_over_plane(
        diameter, height_above_plane
    )


def total_inductance_per_length(
    total_channels: float, diameter: float, height_above_plane: float
) -> float:
    """Series combination of kinetic and magnetic inductance in henry per metre."""
    return kinetic_inductance(total_channels) + magnetic_inductance_over_plane(
        diameter, height_above_plane
    )
