"""CNT interconnect compact models (the paper's core contribution).

This subpackage implements the resistance / capacitance / inductance compact
models of Section III.C of the paper together with the copper reference
models they are benchmarked against:

* :mod:`repro.core.swcnt` -- single-wall CNT per-unit-length RLC model,
* :mod:`repro.core.mwcnt` -- multi-wall CNT shell filling and the doped
  RC compact model of Eqs. (4)-(5),
* :mod:`repro.core.doping` -- doping enhancement factor (channels per shell),
* :mod:`repro.core.copper` -- copper resistivity with size effects and the
  electromigration-limited ampacity,
* :mod:`repro.core.electrostatics` -- geometry-dependent electrostatic
  capacitance :math:`C_E`,
* :mod:`repro.core.bundle` -- SWCNT bundle (via / line) models,
* :mod:`repro.core.composite` -- Cu-CNT composite effective-medium model,
* :mod:`repro.core.ampacity` -- current-carrying-capacity comparisons,
* :mod:`repro.core.kinetic` -- kinetic and magnetic inductance,
* :mod:`repro.core.line` -- a unified :class:`~repro.core.line.InterconnectLine`
  front end that turns any of the above materials into lumped or distributed
  RC descriptions for the circuit simulator.
"""

from repro.core.swcnt import SWCNTInterconnect
from repro.core.mwcnt import MWCNTInterconnect, ShellFillingRule
from repro.core.doping import DopingProfile, channels_per_shell_from_fermi_shift
from repro.core.copper import CopperInterconnect, copper_resistivity
from repro.core.electrostatics import (
    wire_over_plane_capacitance,
    wire_between_planes_capacitance,
    coupled_line_capacitance,
    parallel_plate_capacitance,
)
from repro.core.bundle import SWCNTBundle
from repro.core.composite import CuCNTComposite
from repro.core.ampacity import (
    max_current_cnt,
    max_current_copper_line,
    ampacity_comparison,
)
from repro.core.kinetic import kinetic_inductance, magnetic_inductance_over_plane
from repro.core.line import (
    Conductor,
    DistributedRC,
    InterconnectLine,
    LineMaterial,
    conductor_record,
)

__all__ = [
    "SWCNTInterconnect",
    "MWCNTInterconnect",
    "ShellFillingRule",
    "DopingProfile",
    "channels_per_shell_from_fermi_shift",
    "CopperInterconnect",
    "copper_resistivity",
    "wire_over_plane_capacitance",
    "wire_between_planes_capacitance",
    "coupled_line_capacitance",
    "parallel_plate_capacitance",
    "SWCNTBundle",
    "CuCNTComposite",
    "max_current_cnt",
    "max_current_copper_line",
    "ampacity_comparison",
    "kinetic_inductance",
    "magnetic_inductance_over_plane",
    "Conductor",
    "LineMaterial",
    "conductor_record",
    "InterconnectLine",
    "DistributedRC",
]
