"""Copper interconnect reference models.

The paper benchmarks CNT interconnects against state-of-the-art copper BEOL
metallization (Fig. 9 and the ampacity discussion of Section I).  At the
dimensions of interest (tens of nanometres) the copper resistivity is far
above its bulk value because of surface scattering (Fuchs-Sondheimer) and
grain-boundary scattering (Mayadas-Shatzkes).  This module implements the
standard approximate combination of both mechanisms, plus a
:class:`CopperInterconnect` convenience wrapper that mirrors the CNT model
interfaces (resistance, capacitance, effective conductivity, ampacity).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.constants import (
    COPPER_BULK_RESISTIVITY,
    COPPER_EM_CURRENT_DENSITY_LIMIT,
    COPPER_MEAN_FREE_PATH,
    ROOM_TEMPERATURE,
)
from repro.core.electrostatics import DEFAULT_OXIDE_PERMITTIVITY, parallel_plate_capacitance

DEFAULT_SURFACE_SPECULARITY = 0.2
"""Fraction of specular (non-resistive) surface scattering events."""

DEFAULT_GRAIN_REFLECTIVITY = 0.3
"""Electron reflection coefficient at grain boundaries."""

COPPER_TEMPERATURE_COEFFICIENT = 0.0039
"""Linear temperature coefficient of copper resistivity (1/K)."""


def fuchs_sondheimer_increase(
    width: float,
    height: float,
    specularity: float = DEFAULT_SURFACE_SPECULARITY,
    mean_free_path: float = COPPER_MEAN_FREE_PATH,
) -> float:
    """Additive resistivity increase factor from surface scattering.

    Uses the thin-wire approximation of the Fuchs-Sondheimer model,

        delta_rho / rho0 = (3/8) (1 - p) lambda (1/w + 1/h),

    valid when the cross-section dimensions are not much smaller than the
    mean free path -- adequate down to the ~20 nm half-pitches discussed in
    the paper.

    Parameters
    ----------
    width, height:
        Line cross-section in metre.
    specularity:
        Fraction ``p`` of specular surface scattering (0 = fully diffuse).
    mean_free_path:
        Bulk electron mean free path in metre.

    Returns
    -------
    float
        ``delta_rho / rho0`` (dimensionless, >= 0).
    """
    if width <= 0 or height <= 0:
        raise ValueError("width and height must be positive")
    if not 0.0 <= specularity <= 1.0:
        raise ValueError("specularity must lie in [0, 1]")
    return 0.375 * (1.0 - specularity) * mean_free_path * (1.0 / width + 1.0 / height)


def mayadas_shatzkes_factor(
    grain_size: float,
    reflectivity: float = DEFAULT_GRAIN_REFLECTIVITY,
    mean_free_path: float = COPPER_MEAN_FREE_PATH,
) -> float:
    """Multiplicative resistivity increase factor from grain-boundary scattering.

    Mayadas-Shatzkes:

        rho / rho0 = 1 / (3 [ 1/3 - alpha/2 + alpha^2 - alpha^3 ln(1 + 1/alpha) ])

    with ``alpha = (lambda / d_grain) * R / (1 - R)``.

    Parameters
    ----------
    grain_size:
        Average grain diameter in metre (commonly ~ the line width for damascene Cu).
    reflectivity:
        Grain-boundary reflection coefficient ``R`` in [0, 1).
    mean_free_path:
        Bulk electron mean free path in metre.

    Returns
    -------
    float
        ``rho / rho0`` (dimensionless, >= 1).
    """
    if grain_size <= 0:
        raise ValueError("grain size must be positive")
    if not 0.0 <= reflectivity < 1.0:
        raise ValueError("reflectivity must lie in [0, 1)")
    if reflectivity == 0.0:
        return 1.0
    alpha = (mean_free_path / grain_size) * reflectivity / (1.0 - reflectivity)
    bracket = 1.0 / 3.0 - alpha / 2.0 + alpha**2 - alpha**3 * math.log(1.0 + 1.0 / alpha)
    if bracket <= 0.0:
        # Extremely resistive limit (alpha -> infinity); return the asymptote.
        return 4.0 * alpha / (3.0 * 0.99999)
    return 1.0 / (3.0 * bracket)


def copper_resistivity(
    width: float,
    height: float,
    temperature: float = ROOM_TEMPERATURE,
    specularity: float = DEFAULT_SURFACE_SPECULARITY,
    grain_reflectivity: float = DEFAULT_GRAIN_REFLECTIVITY,
    grain_size: float | None = None,
    include_size_effects: bool = True,
) -> float:
    """Effective copper resistivity of a rectangular line in ohm metre.

    Combines grain-boundary (multiplicative) and surface (additive) scattering
    on top of the temperature-scaled bulk resistivity.

    Parameters
    ----------
    width, height:
        Line cross-section in metre.
    temperature:
        Temperature in kelvin.
    specularity:
        Surface specularity ``p``.
    grain_reflectivity:
        Grain-boundary reflection coefficient ``R``.
    grain_size:
        Average grain size in metre; defaults to the line width.
    include_size_effects:
        When False, return only the temperature-scaled bulk value (ablation
        knob for the Fig. 9 comparison).
    """
    if temperature <= 0:
        raise ValueError("temperature must be positive")
    bulk = COPPER_BULK_RESISTIVITY * (
        1.0 + COPPER_TEMPERATURE_COEFFICIENT * (temperature - ROOM_TEMPERATURE)
    )
    if not include_size_effects:
        return bulk
    grain = grain_size if grain_size is not None else width
    ms = mayadas_shatzkes_factor(grain, grain_reflectivity)
    fs = fuchs_sondheimer_increase(width, height, specularity)
    return bulk * (ms + fs)


@dataclass(frozen=True)
class CopperInterconnect:
    """A rectangular copper line, the reference the paper benchmarks CNTs against.

    Attributes
    ----------
    width, height:
        Cross-section in metre (the paper's reference line is 100 nm x 50 nm).
    length:
        Line length in metre.
    temperature:
        Operating temperature in kelvin.
    specularity, grain_reflectivity:
        Size-effect scattering parameters (see :func:`copper_resistivity`).
    grain_size:
        Average grain size in metre; ``None`` uses the line width.
    include_size_effects:
        Disable to model an ideal bulk-resistivity line.
    dielectric_thickness:
        ILD thickness below the line in metre (sets the capacitance).
    relative_permittivity:
        Dielectric constant of the ILD.
    barrier_thickness:
        Thickness of the resistive diffusion barrier in metre; it consumes
        cross-section area without conducting, as in real damascene lines.
    """

    width: float
    height: float
    length: float
    temperature: float = ROOM_TEMPERATURE
    specularity: float = DEFAULT_SURFACE_SPECULARITY
    grain_reflectivity: float = DEFAULT_GRAIN_REFLECTIVITY
    grain_size: float | None = None
    include_size_effects: bool = True
    dielectric_thickness: float = 50.0e-9
    relative_permittivity: float = DEFAULT_OXIDE_PERMITTIVITY
    barrier_thickness: float = 0.0

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0 or self.length <= 0:
            raise ValueError("width, height and length must be positive")
        if self.barrier_thickness < 0:
            raise ValueError("barrier thickness cannot be negative")
        if 2.0 * self.barrier_thickness >= min(self.width, self.height):
            raise ValueError("barrier consumes the whole line cross-section")

    # --- resistivity and resistance ------------------------------------------------

    @property
    def conducting_width(self) -> float:
        """Width of the copper core after subtracting the barrier (metre)."""
        return self.width - 2.0 * self.barrier_thickness

    @property
    def conducting_height(self) -> float:
        """Height of the copper core after subtracting the barrier (metre)."""
        return self.height - self.barrier_thickness

    @property
    def resistivity(self) -> float:
        """Effective resistivity in ohm metre (size effects included)."""
        return copper_resistivity(
            self.conducting_width,
            self.conducting_height,
            temperature=self.temperature,
            specularity=self.specularity,
            grain_reflectivity=self.grain_reflectivity,
            grain_size=self.grain_size,
            include_size_effects=self.include_size_effects,
        )

    @property
    def cross_section_area(self) -> float:
        """Full (drawn) cross-section area in square metre."""
        return self.width * self.height

    @property
    def conducting_area(self) -> float:
        """Copper-core cross-section area in square metre."""
        return self.conducting_width * self.conducting_height

    @property
    def resistance(self) -> float:
        """End-to-end resistance in ohm."""
        return self.resistivity * self.length / self.conducting_area

    @property
    def resistance_per_length(self) -> float:
        """Resistance per unit length in ohm per metre."""
        return self.resistivity / self.conducting_area

    # --- capacitance ------------------------------------------------------------------

    @property
    def capacitance_per_length(self) -> float:
        """Ground capacitance per unit length in farad per metre."""
        return parallel_plate_capacitance(
            self.width, self.dielectric_thickness, self.relative_permittivity
        )

    @property
    def capacitance(self) -> float:
        """Total line capacitance in farad."""
        return self.capacitance_per_length * self.length

    # --- figures of merit -----------------------------------------------------------------

    @property
    def effective_conductivity(self) -> float:
        """Conductivity referred to the drawn cross-section in siemens per metre.

        Dividing by the *drawn* area (including the barrier) makes the value
        directly comparable to the CNT effective conductivities of Fig. 9.
        """
        return self.length / (self.resistance * self.cross_section_area)

    @property
    def max_current(self) -> float:
        """Electromigration-limited current in ampere (~50 uA for 100x50 nm)."""
        return COPPER_EM_CURRENT_DENSITY_LIMIT * self.conducting_area

    @property
    def max_current_density(self) -> float:
        """Electromigration current-density limit in ampere per square metre."""
        return COPPER_EM_CURRENT_DENSITY_LIMIT

    # --- convenience --------------------------------------------------------------------------

    def with_length(self, length: float) -> "CopperInterconnect":
        """Copy of this line with a different length."""
        return replace(self, length=length)

    def rc_delay_estimate(self) -> float:
        """Distributed-RC (Elmore) delay estimate ``0.5 R C`` in second."""
        return 0.5 * self.resistance * self.capacitance


def paper_reference_copper_line(length: float = 1.0e-6) -> CopperInterconnect:
    """The paper's reference Cu cross-section: 100 nm wide, 50 nm tall."""
    return CopperInterconnect(width=100.0e-9, height=50.0e-9, length=length)
