"""CNT through-silicon vias (TSVs) for 3-D integration.

Section I of the paper notes that the same properties that make CNTs
attractive as BEOL interconnects "also make CNTs desirable as vertical
through-silicon via for three-dimensional (3D) integration".  A TSV is a much
larger object than a BEOL via (micrometre diameters, tens of micrometres
deep), so copper TSVs suffer from thermo-mechanical stress and current
crowding while a CNT-bundle TSV brings high ampacity, lower weight and a
better thermal path.  This module provides an electrical + thermal compact
model for copper, CNT-bundle and Cu-CNT composite TSVs built on the existing
bundle/composite/thermal models.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.constants import COPPER_EM_CURRENT_DENSITY_LIMIT, ROOM_TEMPERATURE
from repro.core.bundle import SWCNTBundle
from repro.core.composite import CuCNTComposite
from repro.core.copper import copper_resistivity
from repro.core.doping import DopingProfile
from repro.thermal.via import via_thermal_resistance


@dataclass(frozen=True)
class ThroughSiliconVia:
    """A vertical through-silicon via.

    Attributes
    ----------
    diameter:
        Via diameter in metre (typical TSVs: 2-10 um).
    height:
        Via depth in metre (thinned-die thickness, typically 30-100 um).
    fill:
        ``"copper"``, ``"cnt"`` (CNT bundle) or ``"composite"`` (Cu-CNT).
    cnt_fill_fraction:
        CNT volume fraction for bundle / composite fills.
    tube_diameter:
        Diameter of the individual tubes of the bundle in metre.
    metallic_fraction:
        Conducting-tube fraction of the bundle.
    doping:
        Doping applied to the CNT phase.
    liner_thickness:
        Dielectric liner thickness in metre (consumes conducting area and adds
        the liner capacitance to the substrate).
    liner_permittivity:
        Relative permittivity of the liner.
    temperature:
        Operating temperature in kelvin.
    """

    diameter: float
    height: float
    fill: str = "cnt"
    cnt_fill_fraction: float = 0.5
    tube_diameter: float = 2.0e-9
    metallic_fraction: float = 1.0 / 3.0
    doping: DopingProfile = None  # type: ignore[assignment]
    liner_thickness: float = 200.0e-9
    liner_permittivity: float = 3.9
    temperature: float = ROOM_TEMPERATURE

    def __post_init__(self) -> None:
        if self.diameter <= 0 or self.height <= 0:
            raise ValueError("diameter and height must be positive")
        if self.fill not in ("copper", "cnt", "composite"):
            raise ValueError("fill must be 'copper', 'cnt' or 'composite'")
        if not 0.0 < self.cnt_fill_fraction <= 1.0:
            raise ValueError("CNT fill fraction must lie in (0, 1]")
        if self.liner_thickness < 0 or 2.0 * self.liner_thickness >= self.diameter:
            raise ValueError("liner must be non-negative and thinner than the via radius")
        if self.doping is None:
            object.__setattr__(self, "doping", DopingProfile.pristine())

    # --- geometry ----------------------------------------------------------------

    @property
    def conducting_diameter(self) -> float:
        """Diameter of the conducting core inside the liner (metre)."""
        return self.diameter - 2.0 * self.liner_thickness

    @property
    def conducting_area(self) -> float:
        """Conducting cross-section in square metre."""
        return math.pi * self.conducting_diameter**2 / 4.0

    # --- constituent models ------------------------------------------------------------

    def _equivalent_square_side(self) -> float:
        return math.sqrt(self.conducting_area)

    def _bundle(self) -> SWCNTBundle:
        side = self._equivalent_square_side() * math.sqrt(self.cnt_fill_fraction)
        return SWCNTBundle(
            width=side,
            height=side,
            length=self.height,
            tube_diameter=self.tube_diameter,
            metallic_fraction=self.metallic_fraction,
            doping=self.doping,
            temperature=self.temperature,
        )

    def _composite(self) -> CuCNTComposite:
        side = self._equivalent_square_side()
        return CuCNTComposite(
            width=side,
            height=side,
            length=self.height,
            cnt_volume_fraction=self.cnt_fill_fraction,
            tube_diameter=self.tube_diameter,
            metallic_fraction=self.metallic_fraction,
            doping=self.doping,
            temperature=self.temperature,
        )

    # --- electrical -------------------------------------------------------------------------

    @property
    def resistance(self) -> float:
        """End-to-end TSV resistance in ohm."""
        if self.fill == "copper":
            rho = copper_resistivity(
                self.conducting_diameter, self.conducting_diameter, temperature=self.temperature
            )
            return rho * self.height / self.conducting_area
        if self.fill == "cnt":
            return self._bundle().resistance
        return self._composite().resistance

    @property
    def max_current(self) -> float:
        """Current-carrying capability in ampere."""
        if self.fill == "copper":
            return COPPER_EM_CURRENT_DENSITY_LIMIT * self.conducting_area
        if self.fill == "cnt":
            return self._bundle().max_current
        return self._composite().max_current

    @property
    def capacitance(self) -> float:
        """TSV-to-substrate capacitance through the liner in farad.

        Coaxial-capacitor expression with the silicon substrate as the outer
        electrode.
        """
        from repro.constants import VACUUM_PERMITTIVITY

        inner = self.conducting_diameter / 2.0
        outer = self.diameter / 2.0
        if self.liner_thickness == 0:
            # No liner: fall back to a thin effective oxide to keep it finite.
            outer = inner * 1.001
        return (
            2.0
            * math.pi
            * self.liner_permittivity
            * VACUUM_PERMITTIVITY
            * self.height
            / math.log(outer / inner)
        )

    # --- thermal ------------------------------------------------------------------------------

    @property
    def thermal_resistance(self) -> float:
        """Vertical thermal resistance of the TSV in K/W."""
        return via_thermal_resistance(
            self.conducting_diameter,
            self.height,
            material=self.fill if self.fill != "copper" else "copper",
            fill_fraction=self.cnt_fill_fraction,
            temperature=self.temperature,
        )

    def temperature_rise(self, heat_flow: float) -> float:
        """Temperature drop across the TSV for a given heat flow (kelvin)."""
        if heat_flow < 0:
            raise ValueError("heat flow cannot be negative")
        return heat_flow * self.thermal_resistance

    # --- figures of merit -----------------------------------------------------------------------

    def rc_product(self) -> float:
        """Electrical RC time constant of the TSV in second."""
        return self.resistance * self.capacitance

    def with_fill(self, fill: str) -> "ThroughSiliconVia":
        """Copy of this TSV with a different fill material."""
        return replace(self, fill=fill)


def tsv_comparison(
    diameter: float = 5.0e-6,
    height: float = 50.0e-6,
    cnt_fill_fraction: float = 0.5,
    doped_channels: float | None = None,
) -> list[dict]:
    """Copper vs CNT vs composite TSV comparison table (extension experiment E13)."""
    doping = (
        DopingProfile.from_channels(doped_channels) if doped_channels else DopingProfile.pristine()
    )
    rows = []
    for fill in ("copper", "cnt", "composite"):
        tsv = ThroughSiliconVia(
            diameter=diameter,
            height=height,
            fill=fill,
            cnt_fill_fraction=cnt_fill_fraction,
            doping=doping,
        )
        rows.append(
            {
                "fill": fill,
                "resistance_mohm": tsv.resistance * 1e3,
                "max_current_mA": tsv.max_current * 1e3,
                "capacitance_fF": tsv.capacitance * 1e15,
                "thermal_resistance_K_per_W": tsv.thermal_resistance,
                "rc_ps": tsv.rc_product() * 1e12,
            }
        )
    return rows
