"""Cu-CNT composite interconnect model (paper Section II.C).

Embedding CNTs in a copper matrix trades some of copper's low resistivity for
the CNTs' enormous current-carrying capacity, while keeping integration
(void-free fill, CMP, patterning) manufacturable.  The paper motivates the
composite with reference [14] (Subramaniam et al.), which demonstrated a
hundred-fold increase in ampacity at near-copper conductivity.

The composite is modelled as two conduction paths in parallel (rule of
mixtures along the wire axis):

* a copper matrix occupying volume fraction ``1 - f`` with size-effect
  resistivity, and
* a CNT phase occupying volume fraction ``f`` whose conductivity comes from
  the bundle model (length dependent through the ballistic term).

Ampacity adds the two phases' limits; in addition the copper limit itself is
raised by a configurable EM-suppression factor because the CNT network keeps
conducting (and keeps the line intact) after copper voiding starts.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.constants import CNT_MAX_CURRENT_PER_TUBE, COPPER_EM_CURRENT_DENSITY_LIMIT, ROOM_TEMPERATURE
from repro.core.bundle import SWCNTBundle
from repro.core.copper import CopperInterconnect
from repro.core.doping import DopingProfile


@dataclass(frozen=True)
class CuCNTComposite:
    """A copper line with an embedded CNT volume fraction.

    Attributes
    ----------
    width, height, length:
        Line geometry in metre.
    cnt_volume_fraction:
        Fraction ``f`` of the cross-section occupied by CNTs (0 = pure Cu,
        1 = pure CNT bundle).
    tube_diameter:
        Diameter of the embedded tubes in metre.
    metallic_fraction:
        Fraction of embedded tubes that conduct.
    doping:
        Doping applied to the embedded tubes.
    fill_quality:
        Fraction of the copper phase that is void-free (1 = ideal ELD/ECD
        fill); voids reduce the conducting copper area.
    em_suppression_factor:
        Multiplier (>= 1) on the copper EM current-density limit due to the
        CNT scaffold; literature composite demonstrations justify values of
        10-100.
    temperature:
        Operating temperature in kelvin.
    """

    width: float
    height: float
    length: float
    cnt_volume_fraction: float = 0.3
    tube_diameter: float = 2.0e-9
    metallic_fraction: float = 1.0 / 3.0
    doping: DopingProfile = field(default_factory=DopingProfile.pristine)
    fill_quality: float = 1.0
    em_suppression_factor: float = 10.0
    temperature: float = ROOM_TEMPERATURE

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0 or self.length <= 0:
            raise ValueError("width, height and length must be positive")
        if not 0.0 <= self.cnt_volume_fraction <= 1.0:
            raise ValueError("CNT volume fraction must lie in [0, 1]")
        if not 0.0 < self.fill_quality <= 1.0:
            raise ValueError("fill quality must lie in (0, 1]")
        if self.em_suppression_factor < 1.0:
            raise ValueError("EM suppression factor must be >= 1")

    # --- constituent phases -----------------------------------------------------

    @property
    def cross_section_area(self) -> float:
        """Total cross-section area in square metre."""
        return self.width * self.height

    @property
    def copper_area(self) -> float:
        """Void-free copper cross-section area in square metre."""
        return self.cross_section_area * (1.0 - self.cnt_volume_fraction) * self.fill_quality

    @property
    def cnt_area(self) -> float:
        """CNT-phase cross-section area in square metre."""
        return self.cross_section_area * self.cnt_volume_fraction

    _NEGLIGIBLE_FRACTION = 1.0e-9
    """Volume fractions below this are treated as an absent phase."""

    def copper_phase(self) -> CopperInterconnect | None:
        """Copper constituent as a :class:`CopperInterconnect` (None if f = 1)."""
        if self.cnt_volume_fraction >= 1.0 - self._NEGLIGIBLE_FRACTION:
            return None
        # Preserve the aspect ratio while shrinking to the copper area.
        scale = (self.copper_area / self.cross_section_area) ** 0.5
        return CopperInterconnect(
            width=self.width * scale,
            height=self.height * scale,
            length=self.length,
            temperature=self.temperature,
        )

    def cnt_phase(self) -> SWCNTBundle | None:
        """CNT constituent as a :class:`SWCNTBundle` (None if f = 0)."""
        if self.cnt_volume_fraction <= self._NEGLIGIBLE_FRACTION:
            return None
        scale = (self.cnt_area / self.cross_section_area) ** 0.5
        return SWCNTBundle(
            width=self.width * scale,
            height=self.height * scale,
            length=self.length,
            tube_diameter=self.tube_diameter,
            metallic_fraction=self.metallic_fraction,
            doping=self.doping,
            temperature=self.temperature,
        )

    # --- electrical -----------------------------------------------------------------

    @property
    def resistance(self) -> float:
        """End-to-end resistance in ohm (phases in parallel)."""
        conductance = 0.0
        copper = self.copper_phase()
        if copper is not None:
            conductance += 1.0 / copper.resistance
        cnt = self.cnt_phase()
        if cnt is not None:
            conductance += 1.0 / cnt.resistance
        if conductance == 0.0:
            raise ValueError("composite has no conducting phase")
        return 1.0 / conductance

    @property
    def capacitance_per_length(self) -> float:
        """Ground capacitance per unit length in farad per metre.

        The composite line presents the same outer geometry as a copper line
        of identical drawn dimensions, so the standard parallel-plate (plus
        fringe) expression over a 50 nm low-k ILD is used.
        """
        from repro.core.electrostatics import parallel_plate_capacitance

        return parallel_plate_capacitance(self.width, 50.0e-9)

    @property
    def capacitance(self) -> float:
        """Total line capacitance in farad."""
        return self.capacitance_per_length * self.length

    @property
    def effective_conductivity(self) -> float:
        """Conductivity referred to the full cross-section in siemens per metre."""
        return self.length / (self.resistance * self.cross_section_area)

    @property
    def effective_resistivity(self) -> float:
        """Effective resistivity in ohm metre."""
        return 1.0 / self.effective_conductivity

    # --- ampacity --------------------------------------------------------------------

    @property
    def max_current(self) -> float:
        """Maximum current in ampere (copper EM limit boosted by the CNT scaffold
        plus the CNT phase's own capability)."""
        copper_limit = (
            COPPER_EM_CURRENT_DENSITY_LIMIT * self.em_suppression_factor * self.copper_area
        )
        cnt = self.cnt_phase()
        cnt_limit = cnt.max_current if cnt is not None else 0.0
        return copper_limit + cnt_limit

    @property
    def max_current_density(self) -> float:
        """Maximum current density referred to the full cross-section (A/m^2)."""
        return self.max_current / self.cross_section_area

    @property
    def ampacity_gain_over_copper(self) -> float:
        """Ratio of composite ampacity to a pure-Cu line of the same drawn size."""
        pure_cu_limit = COPPER_EM_CURRENT_DENSITY_LIMIT * self.cross_section_area
        return self.max_current / pure_cu_limit

    @property
    def resistivity_penalty_over_copper(self) -> float:
        """Ratio of composite resistivity to a pure-Cu line of the same drawn size."""
        pure_cu = CopperInterconnect(
            width=self.width, height=self.height, length=self.length, temperature=self.temperature
        )
        return self.effective_resistivity / (1.0 / pure_cu.effective_conductivity)

    # --- convenience --------------------------------------------------------------------

    def with_volume_fraction(self, fraction: float) -> "CuCNTComposite":
        """Copy of this composite with a different CNT volume fraction."""
        return replace(self, cnt_volume_fraction=fraction)


def tradeoff_sweep(
    width: float,
    height: float,
    length: float,
    fractions: list[float],
    **kwargs,
) -> list[dict]:
    """Resistivity / ampacity trade-off versus CNT volume fraction.

    Returns one record per volume fraction with the effective resistivity,
    the ampacity gain over pure copper and the resistivity penalty -- the
    "efficient trade-off between resistivity and ampacity" the paper claims
    for the composite approach.
    """
    records = []
    for fraction in fractions:
        composite = CuCNTComposite(
            width=width, height=height, length=length, cnt_volume_fraction=fraction, **kwargs
        )
        records.append(
            {
                "cnt_volume_fraction": fraction,
                "effective_resistivity": composite.effective_resistivity,
                "resistivity_penalty": composite.resistivity_penalty_over_copper,
                "ampacity_gain": composite.ampacity_gain_over_copper,
                "max_current_density": composite.max_current_density,
            }
        )
    return records
