"""Cross-sweep result catalog: predicate queries over any result store.

``python -m repro query`` answers questions like *"all delay results where
``n_segments > 50``, any sweep, newest first"* across every experiment a
store holds.  The query plane works on entry **metadata** only -- the
experiment name, version, cache key, stored parameters, timestamp and size
that :meth:`~repro.dist.store.ResultStore.entries` exposes -- so against a
:class:`~repro.dist.sqlstore.SqliteStore` a query is an indexed column scan
and the (potentially huge) payload blobs are never read.  Only an explicit
export (:func:`export_results`) loads the payloads of the matching entries
and merges them into one parameter-tagged :class:`ResultSet`.

* :func:`parse_predicate` -- ``"n_segments>50"`` into a typed
  :class:`Predicate` (operators ``== != >= <= > <``; values are coerced to
  int/float/bool when they parse as one),
* :func:`query_entries` -- filter (experiment, predicates, age window),
  sort and limit a store's entries,
* :func:`export_results` -- load the matching payloads and merge them into
  one :class:`~repro.api.results.ResultSet` with query provenance metadata.

Quick start::

    from repro.api.query import parse_predicate, query_entries
    from repro.dist import resolve_store

    store = resolve_store("sqlite:///sweeps.db")
    entries = query_entries(
        store,
        where=[parse_predicate("n_segments>50")],
        sort="timestamp",
        descending=True,
    )
    for entry in entries:
        print(entry.experiment, entry.params)

Existing directory stores join the catalog via ``python -m repro migrate
CACHE_DIR sqlite:///sweeps.db`` (see :func:`repro.dist.sqlstore.migrate_store`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from repro.api.cache import CacheEntry
from repro.api.results import ResultSet

# Longest spellings first so "<=" is not parsed as "<" + "=value".
_OPERATORS = ("<=", ">=", "!=", "==", "=", "<", ">")

_SORT_KEYS = {
    "timestamp": lambda entry: (entry.mtime, entry.path),
    "experiment": lambda entry: (entry.experiment, entry.mtime, entry.path),
    "size": lambda entry: (entry.size_bytes, entry.path),
    "version": lambda entry: (entry.experiment, str(entry.version), entry.path),
}


@dataclass(frozen=True)
class Predicate:
    """One typed comparison against an entry's stored parameters."""

    key: str
    op: str
    value: Any

    def matches(self, params: Mapping[str, Any] | None) -> bool:
        """Whether an entry's parameter dict satisfies this comparison.

        Entries without the key (or with unreadable metadata) never match;
        comparisons between incomparable types (``"copper" > 3``) are False
        rather than an error, so one odd entry cannot abort a catalog query.
        """
        if params is None or self.key not in params:
            return False
        actual = params[self.key]
        try:
            if self.op == "==":
                return actual == self.value
            if self.op == "!=":
                return actual != self.value
            if self.op == ">":
                return actual > self.value
            if self.op == ">=":
                return actual >= self.value
            if self.op == "<":
                return actual < self.value
            return actual <= self.value
        except TypeError:
            return False

    def describe(self) -> str:
        return f"{self.key}{self.op}{self.value!r}"


def coerce_value(text: str) -> Any:
    """``"50"`` -> 50, ``"1.5"`` -> 1.5, ``"true"`` -> True, else the string
    (surrounding quotes stripped, so ``kind=='Cu'`` reads naturally)."""
    text = text.strip()
    if len(text) >= 2 and text[0] == text[-1] and text[0] in "'\"":
        return text[1:-1]
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def parse_predicate(text: str) -> Predicate:
    """Parse one ``--where`` expression (``"n_segments>50"``, ``"kind==Cu"``)."""
    stripped = text.strip()
    for op in _OPERATORS:
        index = stripped.find(op)
        if index > 0:
            key = stripped[:index].strip()
            value = stripped[index + len(op) :].strip()
            if not key or not value:
                break
            return Predicate(
                key=key, op="==" if op == "=" else op, value=coerce_value(value)
            )
    raise ValueError(
        f"malformed predicate {text!r}; expected KEY OP VALUE with OP one of "
        + " ".join(_OPERATORS)
    )


def query_entries(
    store: Any,
    experiment: str | None = None,
    where: Sequence[Predicate] = (),
    newer_than: float | None = None,
    older_than: float | None = None,
    sort: str = "timestamp",
    descending: bool = False,
    limit: int | None = None,
    now: float | None = None,
) -> list[CacheEntry]:
    """Filter, sort and limit a store's entries by metadata only.

    Parameters
    ----------
    store:
        Any :class:`~repro.dist.store.ResultStore` (or a cache directory
        path -- :func:`repro.api.cache.scan_cache` semantics apply).
    experiment:
        Keep only entries of this experiment name.
    where:
        Predicates over the stored parameters; *all* must match
        (:func:`parse_predicate` builds them from CLI text).
    newer_than / older_than:
        Age window in seconds (see :func:`repro.api.cache.parse_age` for
        the ``30s`` / ``12h`` / ``7d`` CLI spelling).
    sort:
        ``timestamp`` (default), ``experiment``, ``size`` or ``version``.
    descending:
        Reverse the sort (``--desc``: newest/biggest first).
    limit:
        Keep at most this many entries *after* sorting.
    """
    if sort not in _SORT_KEYS:
        raise ValueError(
            f"unknown sort key {sort!r}; use one of {sorted(_SORT_KEYS)}"
        )
    if limit is not None and limit < 0:
        raise ValueError("limit must be non-negative")
    from repro.api.cache import scan_cache

    timestamp = time.time() if now is None else now
    matched = []
    for entry in scan_cache(store, read_meta=True):
        if experiment is not None and entry.experiment != experiment:
            continue
        age = entry.age_seconds(timestamp)
        if newer_than is not None and age > newer_than:
            continue
        if older_than is not None and age < older_than:
            continue
        if not all(predicate.matches(entry.params) for predicate in where):
            continue
        matched.append(entry)
    matched.sort(key=_SORT_KEYS[sort], reverse=descending)
    return matched if limit is None else matched[:limit]


def export_results(
    store: Any,
    entries: Iterable[CacheEntry],
    query: Mapping[str, Any] | None = None,
) -> ResultSet:
    """Load the payloads of ``entries`` and merge them into one ResultSet.

    Each entry's records are tagged with its stored parameters (colliding
    names get the engine's usual ``param_`` prefix) plus ``experiment`` and
    ``entry_key`` provenance columns, so records from different experiments
    stay distinguishable after the merge.  Entries that vanished or fail to
    parse since the query are skipped and counted in the result metadata.
    """
    from repro.api.engine import _tag_record

    records: list[dict[str, Any]] = []
    exported = 0
    skipped = 0
    for entry in entries:
        result = store.load(entry.path) if hasattr(store, "load") else None
        if result is None:
            skipped += 1
            continue
        exported += 1
        tags = dict(entry.params or {})
        tags["experiment"] = entry.experiment
        tags["entry_key"] = entry.key
        for record in result.to_records():
            records.append(_tag_record(record, tags))
    meta = {
        "executor": "query",
        "n_entries": exported,
        "n_skipped": skipped,
    }
    if query:
        meta["query"] = dict(query)
    return ResultSet.from_records(records, meta=meta)
