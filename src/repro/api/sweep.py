"""Declarative parameter sweeps over experiment parameters.

A :class:`SweepSpec` describes *which* points of a parameter space to visit
without saying *how* (that is the engine's job).  Two expansion modes cover
the sweeps the paper's experiments need:

* ``grid`` -- full Cartesian product of all axes (the Fig. 12
  diameter x length x doping cube),
* ``zip`` -- lock-step pairing of equally long axes (trajectories through a
  design space).

``refine`` densifies a numeric axis in place (linearly or geometrically),
which is the standard "zoom into the crossover" workflow of Fig. 9: sweep
coarse, find the interesting region, refine, re-run -- with the engine's
memoisation cache making the re-run pay only for the new points.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence


def _as_list(values: Any) -> list[Any]:
    if isinstance(values, (str, bytes)) or not hasattr(values, "__iter__"):
        raise TypeError(f"sweep axis needs an iterable of values, got {values!r}")
    return list(values)


@dataclass(frozen=True)
class SweepSpec:
    """A declarative sweep over named experiment parameters.

    Build with the :meth:`grid` / :meth:`zip` constructors rather than
    directly.  ``points()`` expands the spec into a list of parameter-override
    dicts, one per experiment execution.
    """

    mode: str = "grid"
    axes: Mapping[str, Sequence[Any]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.mode not in ("grid", "zip"):
            raise ValueError(f"unknown sweep mode {self.mode!r}; use 'grid' or 'zip'")
        axes = {str(name): _as_list(values) for name, values in self.axes.items()}
        if not axes:
            raise ValueError("a sweep needs at least one axis")
        for name, values in axes.items():
            if not values:
                raise ValueError(f"sweep axis {name!r} is empty")
        if self.mode == "zip":
            lengths = {name: len(values) for name, values in axes.items()}
            if len(set(lengths.values())) > 1:
                raise ValueError(f"zip axes must have equal lengths, got {lengths}")
        object.__setattr__(self, "axes", axes)

    # --- constructors -----------------------------------------------------

    @classmethod
    def grid(cls, **axes: Sequence[Any]) -> "SweepSpec":
        """Cartesian product of the given axes (first axis varies slowest)."""
        return cls(mode="grid", axes=axes)

    @classmethod
    def zip(cls, **axes: Sequence[Any]) -> "SweepSpec":
        """Lock-step pairing of equally long axes."""
        return cls(mode="zip", axes=axes)

    # --- refinement -------------------------------------------------------

    def refine(self, axis: str, factor: int = 2, scale: str = "linear") -> "SweepSpec":
        """Densify one numeric axis by inserting ``factor - 1`` intermediate
        points between each pair of consecutive values.

        ``scale='log'`` inserts geometric midpoints (for logarithmic sweeps
        such as the Fig. 9 length axis); values must then be positive.
        Refining a ``zip`` spec is rejected because it would desynchronise
        the axes.
        """
        if self.mode == "zip":
            raise ValueError("cannot refine a zip sweep; refine the grid axes instead")
        if axis not in self.axes:
            raise KeyError(f"no axis {axis!r}; available: {sorted(self.axes)}")
        if factor < 2:
            raise ValueError("refine factor must be >= 2")
        if scale not in ("linear", "log"):
            raise ValueError(f"unknown scale {scale!r}; use 'linear' or 'log'")

        values = [float(v) for v in self.axes[axis]]
        if scale == "log" and any(v <= 0 for v in values):
            raise ValueError("log refinement needs strictly positive axis values")
        refined: list[float] = []
        for lo, hi in itertools.pairwise(values):
            refined.append(lo)
            for step in range(1, factor):
                t = step / factor
                if scale == "log":
                    refined.append(lo * (hi / lo) ** t)
                else:
                    refined.append(lo + (hi - lo) * t)
        refined.append(values[-1])

        axes = dict(self.axes)
        axes[axis] = refined
        return SweepSpec(mode=self.mode, axes=axes)

    # --- provenance round-trip --------------------------------------------

    def to_meta(self) -> dict[str, Any]:
        """The JSON-serialisable sweep descriptor stored in ResultSet meta.

        What ``Engine.sweep`` records under ``meta["sweep"]`` and
        :func:`repro.dist.shards.merge_results` validates across partial
        results; :meth:`from_meta` round-trips it.
        """
        return {
            "mode": self.mode,
            "axes": {name: list(values) for name, values in self.axes.items()},
            "n_points": len(self),
        }

    @classmethod
    def from_meta(cls, meta: Mapping[str, Any]) -> "SweepSpec":
        """Rebuild a spec from a ``meta["sweep"]`` descriptor (see ``to_meta``).

        Descriptors also arrive hand-written from untrusted clients (the
        ``repro.service`` spec queue), so every field is validated here with
        a :class:`ValueError` naming the bad field, instead of letting a
        malformed payload surface as a ``TypeError``/``KeyError`` deep in
        expansion.
        """
        if not isinstance(meta, Mapping):
            raise ValueError(
                "not a sweep descriptor: expected a mapping with an 'axes' "
                f"key, got {type(meta).__name__}"
            )
        unknown = sorted(set(map(str, meta)) - {"mode", "axes", "n_points"})
        if unknown:
            raise ValueError(
                f"sweep descriptor has unknown fields {unknown}; "
                "allowed: 'mode', 'axes', 'n_points'"
            )
        if "axes" not in meta:
            raise ValueError("sweep descriptor is missing the 'axes' field")
        mode = meta.get("mode", "grid")
        if mode not in ("grid", "zip"):
            raise ValueError(
                f"sweep descriptor field 'mode' must be 'grid' or 'zip', "
                f"got {mode!r}"
            )
        axes = meta["axes"]
        if not isinstance(axes, Mapping):
            raise ValueError(
                "sweep descriptor field 'axes' must be a mapping of axis "
                f"name to value list, got {type(axes).__name__}"
            )
        for name, values in axes.items():
            if isinstance(values, (str, bytes)) or not hasattr(values, "__iter__"):
                raise ValueError(
                    f"sweep descriptor axis {str(name)!r} must be a list of "
                    f"values, got {values!r}"
                )
        spec = cls(mode=mode, axes=dict(axes))
        declared = meta.get("n_points")
        if declared is not None:
            if not isinstance(declared, int) or isinstance(declared, bool):
                raise ValueError(
                    "sweep descriptor field 'n_points' must be an integer, "
                    f"got {declared!r}"
                )
            if declared != len(spec):
                raise ValueError(
                    f"sweep descriptor field 'n_points' is {declared} but the "
                    f"axes expand to {len(spec)} points"
                )
        return spec

    # --- expansion --------------------------------------------------------

    @property
    def axis_names(self) -> list[str]:
        """The swept parameter names in declaration order."""
        return list(self.axes)

    def __len__(self) -> int:
        if self.mode == "zip":
            return len(next(iter(self.axes.values())))
        size = 1
        for values in self.axes.values():
            size *= len(values)
        return size

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.points())

    def points(self) -> list[dict[str, Any]]:
        """Expand into one parameter-override dict per sweep point."""
        names = self.axis_names
        if self.mode == "zip":
            return [
                dict(zip(names, combo)) for combo in zip(*(self.axes[n] for n in names))
            ]
        return [
            dict(zip(names, combo))
            for combo in itertools.product(*(self.axes[n] for n in names))
        ]
