"""Declarative parameter sweeps over experiment parameters.

A :class:`SweepSpec` describes *which* points of a parameter space to visit
without saying *how* (that is the engine's job).  Three expansion modes cover
the sweeps the paper's experiments need:

* ``grid`` -- full Cartesian product of all axes (the Fig. 12
  diameter x length x doping cube),
* ``zip`` -- lock-step pairing of equally long axes (trajectories through a
  design space),
* ``points`` -- an explicit list of parameter-override dicts
  (:meth:`SweepSpec.from_points`).  This is how adaptive campaigns
  (:mod:`repro.campaign`) feed strategy-proposed batches through the
  standard sweep machinery: a points spec round-trips ``to_meta`` /
  ``from_meta`` like any other, so workers, the spec queue and
  :func:`repro.dist.shards.merge_results` all work unchanged.

``refine`` densifies a numeric axis in place (linearly or geometrically),
which is the standard "zoom into the crossover" workflow of Fig. 9: sweep
coarse, find the interesting region, refine, re-run -- with the engine's
memoisation cache making the re-run pay only for the new points.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

from repro.api.results import _normalize_cell


def _as_list(values: Any) -> list[Any]:
    if isinstance(values, (str, bytes)) or not hasattr(values, "__iter__"):
        raise TypeError(f"sweep axis needs an iterable of values, got {values!r}")
    return list(values)


def _checked_points(points: Any) -> tuple[dict[str, Any], ...]:
    """Validate and normalise an explicit point list (``mode='points'``).

    Cells are normalised like :class:`~repro.api.results.ResultSet` ingestion
    (numpy scalars to natives, tuples to lists), so a points spec round-trips
    its ``to_meta`` descriptor exactly and matches the sweep-tag columns of
    the records it produces.
    """
    if points is None:
        raise ValueError("a points sweep needs points=[{...}, ...]")
    if isinstance(points, Mapping) or not hasattr(points, "__iter__"):
        raise TypeError(
            f"sweep points must be a sequence of mappings, got {points!r}"
        )
    checked: list[dict[str, Any]] = []
    for index, point in enumerate(points):
        if not isinstance(point, Mapping):
            raise ValueError(
                f"sweep point {index} must be a mapping of parameter name to "
                f"value, got {type(point).__name__}"
            )
        if not point:
            raise ValueError(f"sweep point {index} is empty")
        checked.append(
            {str(name): _normalize_cell(value) for name, value in point.items()}
        )
    if not checked:
        raise ValueError("a points sweep needs at least one point")
    names = set(checked[0])
    for index, point in enumerate(checked):
        if set(point) != names:
            raise ValueError(
                f"sweep point {index} has keys {sorted(point)} but point 0 "
                f"has {sorted(names)}; all points must share one key set"
            )
    return tuple(checked)


@dataclass(frozen=True)
class SweepSpec:
    """A declarative sweep over named experiment parameters.

    Build with the :meth:`grid` / :meth:`zip` / :meth:`from_points`
    constructors rather than directly.  ``points()`` expands the spec into a
    list of parameter-override dicts, one per experiment execution.
    """

    mode: str = "grid"
    axes: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    # The explicit point list of a ``mode="points"`` spec (None otherwise).
    # Stored under a distinct field name so the ``points()`` expansion
    # method keeps its name; the constructor keyword is still ``points=``.
    explicit_points: tuple[dict[str, Any], ...] | None = field(
        default=None, repr=False
    )

    def __init__(
        self,
        mode: str = "grid",
        axes: Mapping[str, Sequence[Any]] | None = None,
        points: Sequence[Mapping[str, Any]] | None = None,
    ) -> None:
        # Hand-written (the dataclass decorator keeps a user-defined
        # __init__) so the keyword reads ``SweepSpec(mode="points",
        # points=[...])``; the frozen/eq machinery still comes from the
        # field declarations above.
        object.__setattr__(self, "mode", mode)
        object.__setattr__(self, "axes", axes if axes is not None else {})
        object.__setattr__(self, "explicit_points", None)
        self.__post_init__(points)

    def __post_init__(
        self, points: Sequence[Mapping[str, Any]] | None = None
    ) -> None:
        if self.mode not in ("grid", "zip", "points"):
            raise ValueError(
                f"unknown sweep mode {self.mode!r}; use 'grid', 'zip' or 'points'"
            )
        if self.mode == "points":
            if self.axes:
                raise ValueError(
                    "a points sweep takes points=[{...}, ...], not axes"
                )
            object.__setattr__(self, "explicit_points", _checked_points(points))
            return
        if points is not None:
            raise ValueError(
                f"points=[...] requires mode='points', got mode {self.mode!r}"
            )
        axes = {str(name): _as_list(values) for name, values in self.axes.items()}
        if not axes:
            raise ValueError("a sweep needs at least one axis")
        for name, values in axes.items():
            if not values:
                raise ValueError(f"sweep axis {name!r} is empty")
        if self.mode == "zip":
            lengths = {name: len(values) for name, values in axes.items()}
            if len(set(lengths.values())) > 1:
                raise ValueError(f"zip axes must have equal lengths, got {lengths}")
        object.__setattr__(self, "axes", axes)

    # --- constructors -----------------------------------------------------

    @classmethod
    def grid(cls, **axes: Sequence[Any]) -> "SweepSpec":
        """Cartesian product of the given axes (first axis varies slowest)."""
        return cls(mode="grid", axes=axes)

    @classmethod
    def zip(cls, **axes: Sequence[Any]) -> "SweepSpec":
        """Lock-step pairing of equally long axes."""
        return cls(mode="zip", axes=axes)

    @classmethod
    def from_points(cls, points: Sequence[Mapping[str, Any]]) -> "SweepSpec":
        """Explicit list of parameter-override dicts, visited in order.

        All points must share one key set (the spec's ``axis_names``).  This
        is the spec shape adaptive campaigns (:mod:`repro.campaign`) produce
        for each proposed batch.
        """
        return cls(mode="points", points=points)

    # --- refinement -------------------------------------------------------

    def refine(self, axis: str, factor: int = 2, scale: str = "linear") -> "SweepSpec":
        """Densify one numeric axis by inserting ``factor - 1`` intermediate
        points between each pair of consecutive values.

        ``scale='log'`` inserts geometric midpoints (for logarithmic sweeps
        such as the Fig. 9 length axis); values must then be positive.
        Refining a ``zip`` spec is rejected because it would desynchronise
        the axes.
        """
        if self.mode == "zip":
            raise ValueError("cannot refine a zip sweep; refine the grid axes instead")
        if self.mode == "points":
            raise ValueError(
                "cannot refine a points sweep; it has no axes to densify"
            )
        if axis not in self.axes:
            raise KeyError(f"no axis {axis!r}; available: {sorted(self.axes)}")
        if factor < 2:
            raise ValueError("refine factor must be >= 2")
        if scale not in ("linear", "log"):
            raise ValueError(f"unknown scale {scale!r}; use 'linear' or 'log'")

        values = [float(v) for v in self.axes[axis]]
        if scale == "log" and any(v <= 0 for v in values):
            raise ValueError("log refinement needs strictly positive axis values")
        refined: list[float] = []
        for lo, hi in itertools.pairwise(values):
            refined.append(lo)
            for step in range(1, factor):
                t = step / factor
                if scale == "log":
                    refined.append(lo * (hi / lo) ** t)
                else:
                    refined.append(lo + (hi - lo) * t)
        refined.append(values[-1])

        axes = dict(self.axes)
        axes[axis] = refined
        return SweepSpec(mode=self.mode, axes=axes)

    # --- provenance round-trip --------------------------------------------

    def to_meta(self) -> dict[str, Any]:
        """The JSON-serialisable sweep descriptor stored in ResultSet meta.

        What ``Engine.sweep`` records under ``meta["sweep"]`` and
        :func:`repro.dist.shards.merge_results` validates across partial
        results; :meth:`from_meta` round-trips it.
        """
        if self.mode == "points":
            return {
                "mode": "points",
                "points": [dict(point) for point in self.explicit_points or ()],
                "n_points": len(self),
            }
        return {
            "mode": self.mode,
            "axes": {name: list(values) for name, values in self.axes.items()},
            "n_points": len(self),
        }

    @classmethod
    def from_meta(cls, meta: Mapping[str, Any]) -> "SweepSpec":
        """Rebuild a spec from a ``meta["sweep"]`` descriptor (see ``to_meta``).

        Descriptors also arrive hand-written from untrusted clients (the
        ``repro.service`` spec queue), so every field is validated here with
        a :class:`ValueError` naming the bad field, instead of letting a
        malformed payload surface as a ``TypeError``/``KeyError`` deep in
        expansion.
        """
        if not isinstance(meta, Mapping):
            raise ValueError(
                "not a sweep descriptor: expected a mapping with an 'axes' "
                f"or 'points' key, got {type(meta).__name__}"
            )
        unknown = sorted(set(map(str, meta)) - {"mode", "axes", "points", "n_points"})
        if unknown:
            raise ValueError(
                f"sweep descriptor has unknown fields {unknown}; "
                "allowed: 'mode', 'axes', 'points', 'n_points'"
            )
        mode = meta.get("mode", "grid")
        if mode not in ("grid", "zip", "points"):
            raise ValueError(
                f"sweep descriptor field 'mode' must be 'grid', 'zip' or "
                f"'points', got {mode!r}"
            )
        if mode == "points":
            if "axes" in meta:
                raise ValueError(
                    "a points sweep descriptor carries 'points', not 'axes'"
                )
            if "points" not in meta:
                raise ValueError(
                    "points sweep descriptor is missing the 'points' field"
                )
            try:
                spec = cls(mode="points", points=meta["points"])
            except (TypeError, ValueError) as error:
                raise ValueError(f"sweep descriptor field 'points': {error}")
            return cls._check_declared_count(spec, meta)
        if "points" in meta:
            raise ValueError(
                f"sweep descriptor field 'points' requires mode 'points', "
                f"got mode {mode!r}"
            )
        if "axes" not in meta:
            raise ValueError("sweep descriptor is missing the 'axes' field")
        axes = meta["axes"]
        if not isinstance(axes, Mapping):
            raise ValueError(
                "sweep descriptor field 'axes' must be a mapping of axis "
                f"name to value list, got {type(axes).__name__}"
            )
        for name, values in axes.items():
            if isinstance(values, (str, bytes)) or not hasattr(values, "__iter__"):
                raise ValueError(
                    f"sweep descriptor axis {str(name)!r} must be a list of "
                    f"values, got {values!r}"
                )
        spec = cls(mode=mode, axes=dict(axes))
        return cls._check_declared_count(spec, meta)

    @staticmethod
    def _check_declared_count(spec: "SweepSpec", meta: Mapping[str, Any]) -> "SweepSpec":
        declared = meta.get("n_points")
        if declared is not None:
            if not isinstance(declared, int) or isinstance(declared, bool):
                raise ValueError(
                    "sweep descriptor field 'n_points' must be an integer, "
                    f"got {declared!r}"
                )
            if declared != len(spec):
                raise ValueError(
                    f"sweep descriptor field 'n_points' is {declared} but the "
                    f"spec expands to {len(spec)} points"
                )
        return spec

    # --- expansion --------------------------------------------------------

    @property
    def axis_names(self) -> list[str]:
        """The swept parameter names in declaration order."""
        if self.mode == "points":
            return list((self.explicit_points or ({},))[0])
        return list(self.axes)

    def __len__(self) -> int:
        if self.mode == "points":
            return len(self.explicit_points or ())
        if self.mode == "zip":
            return len(next(iter(self.axes.values())))
        size = 1
        for values in self.axes.values():
            size *= len(values)
        return size

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.points())

    def points(self) -> list[dict[str, Any]]:
        """Expand into one parameter-override dict per sweep point."""
        if self.mode == "points":
            return [dict(point) for point in self.explicit_points or ()]
        names = self.axis_names
        if self.mode == "zip":
            return [
                dict(zip(names, combo)) for combo in zip(*(self.axes[n] for n in names))
            ]
        return [
            dict(zip(names, combo))
            for combo in itertools.product(*(self.axes[n] for n in names))
        ]
