"""Report over the committed perf trajectory (``benchmarks/perf/BENCH_*.json``).

Each PR that touches a hot path commits one ``BENCH_<pr>.json`` written by
``benchmarks/perf/run.py`` (see docs/PERFORMANCE.md).  This module renders
that trajectory so regressions are visible at a glance:

* :func:`load_trajectory` -- parse and order every ``BENCH_*.json`` of a
  directory (numeric labels sort by PR; ad-hoc labels like ``smoke`` or
  ``local`` sort after them by name),
* :func:`report_rows` -- one table row per (case, trajectory point) with the
  speedup delta against the previous *comparable* (same-mode) point,
* :func:`find_regressions` -- the speedup drops beyond a threshold plus any
  case that fell below its committed acceptance floor,
* :func:`report_text` -- the rendered report the CLI prints
  (``python -m repro perf-report``; ``--check`` turns regressions into a
  non-zero exit for CI),
* :func:`plot_trajectory` -- an optional speedup-trajectory chart
  (``perf-report --plot out.svg``); matplotlib is an *optional* dependency,
  so plotting degrades to a graceful skip when it is not installed.

Only same-mode points are compared: smoke-mode numbers come from reduced
problem sizes (and usually shared CI runners), so a smoke point never
counts as a regression against a full-mode baseline.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass
from typing import Any

_BENCH_PATTERN = re.compile(r"BENCH_(?P<label>[A-Za-z0-9_.-]+)\.json$")

DEFAULT_PERF_DIR = os.path.join("benchmarks", "perf")
DEFAULT_THRESHOLD = 0.15
"""Relative speedup drop between consecutive same-mode points that counts
as a regression (0.15 = 15 %); wall clocks jitter, order-of-magnitude wins
do not."""


@dataclass(frozen=True)
class BenchRecord:
    """One parsed ``BENCH_<label>.json`` trajectory point."""

    path: str
    label: str
    mode: str
    host: dict[str, Any]
    speedup_floors: dict[str, float]
    cases: dict[str, dict[str, Any]]

    @property
    def pr(self) -> int | None:
        """Numeric PR number when the label is one, else ``None``."""
        return int(self.label) if self.label.isdigit() else None

    def sort_key(self) -> tuple:
        # Numeric (committed) points first in PR order, ad-hoc labels after.
        return (self.pr is None, self.pr if self.pr is not None else 0, self.label)


def load_trajectory(directory: str) -> list[BenchRecord]:
    """Parse every ``BENCH_*.json`` of a directory, in trajectory order.

    A missing directory is an empty trajectory; an unreadable file raises
    (a corrupt committed benchmark is worth failing loudly over).
    """
    if not os.path.isdir(directory):
        return []
    records = []
    for filename in sorted(os.listdir(directory)):
        match = _BENCH_PATTERN.fullmatch(filename)
        if match is None:
            continue
        path = os.path.join(directory, filename)
        with open(path) as handle:
            payload = json.load(handle)
        records.append(
            BenchRecord(
                path=path,
                label=match.group("label"),
                mode=str(payload.get("mode", "full")),
                host=dict(payload.get("host", {})),
                speedup_floors={
                    str(k): float(v)
                    for k, v in (payload.get("speedup_floors") or {}).items()
                },
                cases={
                    str(case.get("name")): dict(case)
                    for case in payload.get("cases", [])
                },
            )
        )
    return sorted(records, key=BenchRecord.sort_key)


def _previous_same_mode(
    records: list[BenchRecord], index: int, case: str
) -> dict[str, Any] | None:
    current = records[index]
    for earlier in reversed(records[:index]):
        if earlier.mode == current.mode and case in earlier.cases:
            return earlier.cases[case]
    return None


def report_rows(
    records: list[BenchRecord], case: str | None = None
) -> list[dict[str, Any]]:
    """Flatten a trajectory into printable rows (one per case and point)."""
    case_names: list[str] = []
    for record in records:
        for name in record.cases:
            if name not in case_names:
                case_names.append(name)
    if case is not None:
        if case not in case_names:
            raise ValueError(f"no case {case!r} in trajectory; have {case_names}")
        case_names = [case]

    rows = []
    for name in case_names:
        for index, record in enumerate(records):
            data = record.cases.get(name)
            if data is None:
                continue
            previous = _previous_same_mode(records, index, name)
            delta = ""
            if previous and previous.get("speedup") and data.get("speedup"):
                change = data["speedup"] / previous["speedup"] - 1.0
                delta = f"{change:+.1%}"
            rows.append(
                {
                    "case": name,
                    "bench": record.label,
                    "mode": record.mode,
                    "legacy_ms": round(1e3 * data.get("legacy_s", 0.0), 1),
                    "fast_ms": round(1e3 * data.get("fast_s", 0.0), 1),
                    "speedup": data.get("speedup", ""),
                    "vs_prev": delta,
                    "floor": record.speedup_floors.get(name, ""),
                }
            )
    return rows


def find_regressions(
    records: list[BenchRecord], threshold: float = DEFAULT_THRESHOLD
) -> list[str]:
    """Human-readable regression findings over a trajectory.

    Two kinds: a case's speedup dropping more than ``threshold`` relative to
    the previous same-mode point, and a full-mode case sitting below its own
    committed acceptance floor.
    """
    findings = []
    for index, record in enumerate(records):
        for name, data in record.cases.items():
            speedup = data.get("speedup")
            if not speedup:
                continue
            previous = _previous_same_mode(records, index, name)
            if previous and previous.get("speedup"):
                change = speedup / previous["speedup"] - 1.0
                if change < -threshold:
                    findings.append(
                        f"{name}: speedup {previous['speedup']}x -> {speedup}x "
                        f"({change:+.1%}) between BENCH_{record.label} and its "
                        f"previous {record.mode}-mode point"
                    )
            floor = record.speedup_floors.get(name)
            if record.mode == "full" and floor is not None and speedup < floor:
                findings.append(
                    f"{name}: speedup {speedup}x below the {floor}x floor "
                    f"in BENCH_{record.label}"
                )
    return findings


def plot_trajectory(
    records: list[BenchRecord],
    path: str,
    case: str | None = None,
) -> bool:
    """Render the speedup trajectory as a chart file (SVG/PNG by extension).

    One line per benchmark case over the trajectory points, speedup on a log
    axis, committed full-mode points as solid markers and ad-hoc/smoke points
    hollow.  Returns True when the chart was written; returns False -- doing
    nothing -- when matplotlib is not installed, so callers can degrade
    gracefully (the repo deliberately has no hard plotting dependency).
    """
    try:
        import matplotlib
    except ImportError:
        return False
    matplotlib.use("Agg")  # never require a display
    import matplotlib.pyplot as plt

    rows = report_rows(records, case=case)
    by_case: dict[str, list[dict[str, Any]]] = {}
    for row in rows:
        if row["speedup"]:
            by_case.setdefault(row["case"], []).append(row)

    labels = [record.label for record in records]
    positions = {label: index for index, label in enumerate(labels)}
    modes = {record.label: record.mode for record in records}

    figure, axes = plt.subplots(figsize=(7.0, 4.0))
    for name, case_rows in sorted(by_case.items()):
        xs = [positions[row["bench"]] for row in case_rows]
        ys = [row["speedup"] for row in case_rows]
        (line,) = axes.plot(xs, ys, marker="o", label=name)
        # Hollow out non-full points (smoke runs on shared CI hardware).
        for x, y, row in zip(xs, ys, case_rows):
            if modes[row["bench"]] != "full":
                axes.plot(
                    [x], [y], marker="o", markerfacecolor="white",
                    markeredgecolor=line.get_color(), linestyle="none",
                )
        floors = [row["floor"] for row in case_rows if row["floor"]]
        if floors:
            axes.axhline(
                min(floors), color=line.get_color(), linestyle=":", linewidth=0.8
            )
    axes.set_yscale("log")
    axes.set_xticks(range(len(labels)))
    axes.set_xticklabels([f"BENCH_{label}" for label in labels], rotation=30)
    axes.set_ylabel("speedup over legacy (x, log)")
    axes.set_title("perf trajectory (dotted: committed floors)")
    axes.legend(fontsize="small")
    figure.tight_layout()
    figure.savefig(path)
    plt.close(figure)
    return True


def report_text(
    directory: str = DEFAULT_PERF_DIR,
    case: str | None = None,
    threshold: float = DEFAULT_THRESHOLD,
) -> tuple[str, list[str]]:
    """Render the trajectory report; returns ``(text, regression findings)``."""
    from repro.analysis.report import format_table

    records = load_trajectory(directory)
    if not records:
        return (f"no BENCH_*.json trajectory under {directory}", [])
    rows = report_rows(records, case=case)
    title = (
        f"perf trajectory {directory}: {len(records)} points "
        f"({', '.join('BENCH_' + r.label for r in records)})"
    )
    lines = [format_table(rows, title=title)]
    findings = find_regressions(records, threshold=threshold)
    if findings:
        lines.append("")
        lines.append(f"{len(findings)} regression(s) (threshold {threshold:.0%}):")
        lines.extend(f"  - {finding}" for finding in findings)
    else:
        lines.append("")
        lines.append(f"no regressions (threshold {threshold:.0%})")
    return ("\n".join(lines), findings)
