"""Composable study pipelines: dependency DAGs over registered experiments.

The paper's workloads are not independent -- process variability feeds device
resistance, which feeds circuit delay, which feeds the composite trade-off.
:class:`~repro.api.experiment.Experiment` models each link with a
``consumes=`` declaration; this module turns those declarations into
executable pipelines:

* :func:`resolve_pipeline` walks the ``consumes`` graph from a target
  experiment, validates it (registered upstreams, consistent parameter
  bindings, no cycles) and returns a :class:`Pipeline` whose stages are in
  topological (upstream-first) order;
* :class:`Study` is a *named, registered* composite run: a target experiment,
  per-stage parameter overrides, and an optional default
  :class:`~repro.api.sweep.SweepSpec` over the target's parameters.  Studies
  are registered with :func:`register_study` (done in
  :mod:`repro.analysis.studies`) and executed with ``Engine.run_study`` or
  ``python -m repro study run``.

Execution is staged: the engine runs each upstream stage's distinct
invocations first (through its usual serial/thread/process executors), then
injects the resulting :class:`~repro.api.results.ResultSet`\\ s into the
downstream calls.  Cache keys chain through upstream *content hashes*, so
changing an upstream parameter invalidates exactly the dependent stages while
a downstream-only change replays every upstream stage from cache.

Quick start::

    from repro.api import Engine
    from repro.api.study import get_study, list_studies

    study = get_study("growth_to_wafer")
    print([stage.experiment.name for stage in study.resolve().stages])

    result = Engine().run_study(study)
    print(result.columns)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Sequence

from repro.api.experiment import (
    Consumes,
    Experiment,
    ExperimentError,
    PipelineError,
    _did_you_mean,
    ensure_registered,
    get_experiment,
)
from repro.api.sweep import SweepSpec


class StudyNotFoundError(ExperimentError, KeyError):
    """Raised when looking up a study name that is not registered."""

    # KeyError.__str__ repr-quotes the message; keep the plain text.
    __str__ = Exception.__str__


class DuplicateStudyError(ExperimentError, ValueError):
    """Raised when registering a study name twice without ``replace=True``."""


@dataclass(frozen=True)
class Stage:
    """One experiment of a resolved pipeline, with its stage-level overrides.

    ``depth`` is the stage's distance from the target along the longest
    dependency path (the target has depth 0); stages execute in increasing
    pipeline order, which is decreasing depth.
    """

    experiment: Experiment
    params: dict[str, Any] = field(default_factory=dict)
    depth: int = 0

    @property
    def name(self) -> str:
        return self.experiment.name

    @property
    def consumes(self) -> tuple[Consumes, ...]:
        return self.experiment.consumes


@dataclass(frozen=True)
class Pipeline:
    """A validated, topologically ordered dependency DAG of experiments.

    ``stages`` are in execution order: every upstream stage precedes the
    stages that consume it, and the last stage is the target.
    """

    target: str
    stages: tuple[Stage, ...]

    def stage(self, name: str) -> Stage:
        for candidate in self.stages:
            if candidate.name == name:
                return candidate
        raise KeyError(f"pipeline has no stage {name!r}; stages: {self.stage_names}")

    @property
    def stage_names(self) -> list[str]:
        """Experiment names in execution (upstream-first) order."""
        return [stage.name for stage in self.stages]

    def __iter__(self) -> Iterator[Stage]:
        return iter(self.stages)

    def __len__(self) -> int:
        return len(self.stages)

    def describe(self) -> str:
        """Multi-line human rendering of the DAG (what ``study describe`` prints)."""
        lines = []
        for stage in self.stages:
            marker = "*" if stage.name == self.target else " "
            lines.append(f"{marker} {stage.name} (depth {stage.depth})")
            for dep in stage.consumes:
                binds = ", ".join(
                    f"{up}<-{down}" for up, down in dep.bind.items()
                ) or "no bound params"
                lines.append(f"    <- {dep.experiment} as {dep.inject!r} ({binds})")
            if stage.params:
                overrides = ", ".join(f"{k}={v!r}" for k, v in stage.params.items())
                lines.append(f"    overrides: {overrides}")
        return "\n".join(lines)


def resolve_pipeline(
    target: str | Experiment,
    stage_params: Mapping[str, Mapping[str, Any]] | None = None,
) -> Pipeline:
    """Resolve a target experiment's ``consumes`` graph into a :class:`Pipeline`.

    Validates the whole DAG up front: every upstream name must be registered,
    every binding must name real parameters on both sides, and cycles are
    rejected.  ``stage_params`` carries per-experiment parameter overrides
    (a study's ``params``); overrides naming experiments outside the pipeline
    are rejected, so a typoed stage name cannot be silently ignored.
    """
    experiment = target if isinstance(target, Experiment) else get_experiment(target)
    overrides = {name: dict(params) for name, params in (stage_params or {}).items()}

    depths: dict[str, int] = {}
    resolved: dict[str, Experiment] = {}
    # upstream experiment -> {bound param: consumer experiment}; an override
    # of a bound param would be silently overwritten by the binding, so it
    # is rejected below instead of ignored.
    bound: dict[str, dict[str, str]] = {}

    def visit(exp: Experiment, depth: int, trail: tuple[str, ...]) -> None:
        if exp.name in trail:
            cycle = " -> ".join(trail[trail.index(exp.name):] + (exp.name,))
            raise PipelineError(f"dependency cycle: {cycle}")
        resolved[exp.name] = exp
        depths[exp.name] = max(depth, depths.get(exp.name, 0))
        for dep in exp.consumes:
            try:
                upstream = get_experiment(dep.experiment)
            except ExperimentError as error:
                raise PipelineError(
                    f"experiment {exp.name!r} consumes unregistered "
                    f"experiment {dep.experiment!r}: {error}"
                ) from None
            upstream_params = upstream.param_names
            for up_name in dep.bind:
                if up_name not in upstream_params:
                    raise PipelineError(
                        f"experiment {exp.name!r} binds to unknown upstream "
                        f"parameter {dep.experiment}.{up_name!r}; "
                        f"upstream declares: {upstream_params}"
                    )
                bound.setdefault(dep.experiment, {})[up_name] = exp.name
            visit(upstream, depth + 1, trail + (exp.name,))

    visit(experiment, 0, ())

    unknown = sorted(set(overrides) - set(resolved))
    if unknown:
        raise PipelineError(
            f"stage overrides name experiments outside the pipeline: {unknown}; "
            f"pipeline stages: {sorted(resolved)}"
        )
    for name, params in overrides.items():
        stage_exp = resolved[name]
        for key in params:
            stage_exp.spec(key)  # raises ParameterError on unknown names
            consumer = bound.get(name, {}).get(key)
            if consumer is not None:
                raise PipelineError(
                    f"parameter {name}.{key} is bound from {consumer!r} -- its "
                    "value always comes from the downstream parameter, so the "
                    "override would be silently ignored; override the "
                    f"corresponding parameter of {consumer!r} instead"
                )

    # Deepest stages first; ties broken by name for determinism.
    ordered = sorted(resolved.values(), key=lambda e: (-depths[e.name], e.name))
    stages = tuple(
        Stage(experiment=exp, params=overrides.get(exp.name, {}), depth=depths[exp.name])
        for exp in ordered
    )
    return Pipeline(target=experiment.name, stages=stages)


@dataclass(frozen=True)
class Study:
    """A named composite run: target experiment + stage overrides + sweep.

    Attributes
    ----------
    name:
        Unique study registry key (``"variability_to_delay"``).
    target:
        Registry name of the pipeline's final (downstream) experiment.
    description:
        One-line summary for ``python -m repro study list``.
    params:
        Per-stage parameter overrides, keyed by experiment name
        (``{"variability": {"n_devices": 200}}``).  Overrides for the target
        experiment live under its own name too.
    sweep:
        Optional default sweep over the *target's* parameters; ``study run``
        executes it (shardable with ``--shards``), and bound parameters
        propagate to the upstream stages point by point.
    tags:
        Free-form labels.
    """

    name: str
    target: str
    description: str = ""
    params: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)
    sweep: SweepSpec | None = None
    tags: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "params",
            {str(name): dict(values) for name, values in dict(self.params).items()},
        )
        object.__setattr__(self, "tags", tuple(self.tags))

    def resolve(self) -> Pipeline:
        """Resolve and validate the study's dependency pipeline."""
        return resolve_pipeline(self.target, self.params)

    def target_params(
        self, extra: Mapping[str, Any] | None = None
    ) -> dict[str, Any]:
        """The target stage's overrides, merged with runtime extras."""
        merged = dict(self.params.get(self.target, {}))
        merged.update(extra or {})
        return merged


# --- study registry ----------------------------------------------------------

_STUDIES: dict[str, Study] = {}


def register_study(
    name: str,
    target: str,
    *,
    description: str = "",
    params: Mapping[str, Mapping[str, Any]] | None = None,
    sweep: SweepSpec | None = None,
    tags: Sequence[str] = (),
    replace: bool = False,
) -> Study:
    """Register (and return) a named study.

    The target's pipeline is *not* resolved here -- experiments register in
    arbitrary order, so validation happens at :meth:`Study.resolve` time
    (``study describe`` / ``study run`` / the test suite all trigger it).
    """
    study = Study(
        name=name,
        target=target,
        description=description,
        params=params or {},
        sweep=sweep,
        tags=tuple(tags),
    )
    if name in _STUDIES and not replace:
        raise DuplicateStudyError(
            f"study {name!r} is already registered; pass replace=True to override"
        )
    _STUDIES[name] = study
    return study


def unregister_study(name: str) -> None:
    """Remove one study from the registry (mostly for tests)."""
    _STUDIES.pop(name, None)


def get_study(name: str) -> Study:
    """Look up a registered study, suggesting near-misses on error."""
    ensure_registered()
    try:
        return _STUDIES[name]
    except KeyError:
        raise StudyNotFoundError(
            f"no study {name!r}{_did_you_mean(name, _STUDIES)}; "
            f"registered: {sorted(_STUDIES)}"
        ) from None


def list_studies(tag: str | None = None) -> list[Study]:
    """All registered studies sorted by name, optionally tag-filtered."""
    ensure_registered()
    studies = sorted(_STUDIES.values(), key=lambda s: s.name)
    if tag is not None:
        studies = [s for s in studies if tag in s.tags]
    return studies
