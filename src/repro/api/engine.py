"""Execution engine: serial / pooled experiment runs with on-disk memoisation.

The :class:`Engine` is the single entry point that turns a registered
:class:`~repro.api.experiment.Experiment` plus parameters into a
:class:`~repro.api.results.ResultSet`:

* ``run(name, **params)`` -- one experiment execution,
* ``sweep(name, spec)`` -- fan a :class:`~repro.api.sweep.SweepSpec` out over
  the experiment, serially, through a ``concurrent.futures`` thread/process
  pool with per-point future submission (optionally chunked), or through the
  ``batch`` executor, which hands all pending points of an experiment that
  declares a ``batch_fn`` to one stacked evaluation
  (:meth:`~repro.api.experiment.Experiment.run_batch`) and falls back to
  point-by-point execution otherwise,
* ``iter_sweep(name, spec)`` -- the streaming form of ``sweep``: a generator
  yielding one :class:`SweepPoint` per sweep point *as it completes* (cache
  hits first, then executed points in completion order), so callers can
  render progress or consume partial results while the sweep is running.

``sweep`` is built on ``iter_sweep`` and accepts an ``on_result`` callback
invoked once per completed point.  A point whose experiment raises no longer
aborts the whole fan-out: the remaining points still execute, completed
points stay cached, and ``sweep`` raises :class:`SweepError` carrying the
partial :class:`ResultSet`.

Composite experiments (a non-empty ``consumes`` declaration, see
:mod:`repro.api.study`) execute as *staged pipelines*: the engine first runs
the distinct upstream invocations the sweep needs (deduplicated through the
parameter bindings, fanned out through the same executor), then injects the
upstream ResultSets into the downstream calls.  ``run_study`` executes a
registered :class:`~repro.api.study.Study` the same way.

Caching is content-addressed: the key is a SHA-256 over (experiment name,
experiment version, canonicalised parameters), so identical invocations are
served from disk regardless of execution mode.  For composite experiments
the key additionally chains the *content hashes* of the consumed upstream
ResultSets, so changing an upstream parameter invalidates exactly the
dependent downstream entries while downstream-only changes replay every
upstream stage from cache.  Result I/O goes through a
pluggable :class:`~repro.dist.store.ResultStore` -- ``cache_dir=`` is
shorthand for a :class:`~repro.dist.store.LocalStore`, and a
:class:`~repro.dist.store.SharedStore` makes the same directory safe to
share between machines (see :mod:`repro.dist`).  All cache I/O happens in
the coordinating process -- pool workers only compute -- which keeps even
the local store free of write races.  Cache inspection and eviction live in
:mod:`repro.api.cache` (``python -m repro cache`` on the shell).

Sweeps can additionally be statically partitioned across machines with a
:class:`~repro.dist.shards.ShardPlan` (``sweep(..., shard=plan)`` runs only
the plan's slice); :func:`repro.dist.shards.merge_results` reassembles the
partial ResultSets.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor, as_completed
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterator, Mapping

from repro.api.experiment import (
    Consumes,
    Experiment,
    ensure_registered,
    get_experiment,
)
from repro.api.results import ResultSet
from repro.api.sweep import SweepSpec
from repro.obs import metrics
from repro.obs.trace import activate_carrier, current_carrier, trace_span

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from repro.api.study import Study
    from repro.dist.shards import ShardPlan
    from repro.dist.store import ResultStore

EXECUTORS = ("serial", "thread", "process", "batch")

TARGET_CHUNK_SECONDS = 0.25
"""Per-pool-task compute budget ``chunk_size="auto"`` aims for.

Large enough that a chunk's pickling/dispatch overhead (sub-millisecond) is
noise, small enough that streaming consumers still see results at a useful
cadence and the pool stays load-balanced."""

# Per-stage parameter overrides, keyed by experiment name (a Study's params).
StageParams = Mapping[str, Mapping[str, Any]]


def cache_key(
    name: str,
    version: str,
    params: Mapping[str, Any],
    upstream: Mapping[str, str] | None = None,
) -> str:
    """Content-addressed key of one experiment invocation.

    ``upstream`` maps each consumed artifact's inject name to the *content
    hash* of the upstream ResultSet it was produced from; including it chains
    invalidation through the pipeline.  An empty/absent mapping keeps the key
    byte-identical to the historical three-field key, so caches written
    before pipelines existed stay valid.
    """
    body: dict[str, Any] = {"experiment": name, "version": version, "params": params}
    if upstream:
        body["upstream"] = dict(upstream)
    payload = json.dumps(body, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# One executed sweep point before tagging: (records, error message, wall
# time, profile block or None).  ``records`` is None exactly when ``error``
# is set; capturing the error as a string keeps the tuple picklable across
# process-pool boundaries.  The profile block (``profile=True`` engines
# only) carries the point's ``wall_s`` / ``solve_s`` / ``dispatch_s`` split.
_Outcome = tuple[list[dict[str, Any]] | None, str | None, float, dict[str, float] | None]

# One executable unit: (resolved params, injected upstream artifacts).
_Task = tuple[dict[str, Any], dict[str, Any]]


def upstream_meta(
    experiment: Experiment, upstream: Mapping[str, str]
) -> dict[str, dict[str, str]]:
    """Provenance block for consumed artifacts: inject -> (experiment, hash).

    One construction shared by the engine's ``_meta`` and the distributed
    worker's publish path -- the two must stay identical for worker-written
    and engine-written entries to carry the same provenance shape.
    """
    by_inject = {dep.inject: dep.experiment for dep in experiment.consumes}
    return {
        inject: {"experiment": by_inject[inject], "content_hash": digest}
        for inject, digest in upstream.items()
    }


def _run_outcomes(
    run_with_inputs: Callable[..., list[dict[str, Any]]],
    tasks: list[_Task],
    profile: bool = False,
    carrier: Mapping[str, Any] | None = None,
    experiment: str = "",
) -> list[_Outcome]:
    """Run sweep tasks one by one, capturing per-task failures.

    An exception in one point must not poison its siblings (that is the
    partial-failure guarantee of ``sweep``), so each point's error is caught
    and reported as data rather than raised.  With ``profile=True`` each
    execution is wrapped in :func:`repro.circuit.compiled.profiled_solves`
    so the outcome carries the point's solver wall time.

    ``carrier`` is the tracing context of the submitting process
    (:func:`repro.obs.current_carrier`): contextvars do not cross pool
    boundaries -- thread or process -- so the span ancestry rides along
    in the call instead, and each point records an ``engine.point`` span
    under the submitter's sweep span.
    """
    outcomes: list[_Outcome] = []
    with activate_carrier(carrier):
        for params, inputs in tasks:
            prof: dict[str, float] | None = None
            start = time.perf_counter()
            with trace_span("engine.point", experiment=experiment) as span:
                try:
                    if profile:
                        from repro.circuit.compiled import profiled_solves

                        with profiled_solves() as accumulator:
                            records = run_with_inputs(inputs, params)
                        prof = dict(accumulator)
                    else:
                        records = run_with_inputs(inputs, params)
                except Exception as error:
                    message = f"{type(error).__name__}: {error}"
                    span.set("error", message)
                    outcomes.append(
                        (None, message, time.perf_counter() - start, None)
                    )
                else:
                    outcomes.append(
                        (records, None, time.perf_counter() - start, prof)
                    )
    return outcomes


def _execute_chunk(
    name: str,
    tasks: list[_Task],
    profile: bool = False,
    carrier: Mapping[str, Any] | None = None,
) -> list[_Outcome]:
    """Run a chunk of sweep tasks in one pool task (amortises dispatch cost).

    Importable (not a closure) so process pools can pickle it; the worker
    rebuilds the registry by name via :func:`ensure_registered`.  Injected
    upstream ResultSets travel inside the task tuples (they pickle as plain
    columns + meta), so pool workers never touch the cache.
    """
    ensure_registered()
    return _run_outcomes(
        get_experiment(name).run_with_inputs,
        tasks,
        profile=profile,
        carrier=carrier,
        experiment=name,
    )


@dataclass(frozen=True)
class SweepPoint:
    """One sweep point's outcome, yielded by :meth:`Engine.iter_sweep`.

    Attributes
    ----------
    index:
        Position of the point in ``spec.points()`` order (the order the
        combined ResultSet is assembled in, regardless of completion order).
    point:
        The sweep-axis overrides of this point (what tags its records).
    params:
        The fully resolved parameter dict the experiment ran with.
    result:
        The point's :class:`ResultSet`, or ``None`` if the point failed.
    error:
        ``"ExceptionType: message"`` when the experiment raised, else ``None``.
    cache_hit:
        True when the result was served from the on-disk cache.
    """

    index: int
    point: dict[str, Any]
    params: dict[str, Any]
    result: ResultSet | None
    error: str | None = None
    cache_hit: bool = False

    @property
    def ok(self) -> bool:
        """Whether the point completed without error."""
        return self.error is None


class UpstreamFailure(RuntimeError):
    """A memoised upstream-stage failure, replayed per dependent point.

    When a shared upstream invocation raises, the failure is recorded in the
    in-run memo under the invocation's key so every downstream point that
    depends on it reports the error *without re-executing* the doomed stage.
    The message carries the original ``ExceptionType: message`` text.
    """


class SweepError(RuntimeError):
    """One or more sweep points failed; the completed points are preserved.

    Attributes
    ----------
    partial:
        :class:`ResultSet` of every *completed* point, assembled exactly as
        the successful return value would have been (completed points are
        also already in the cache, so a re-run pays only for the failures).
    failures:
        The failed :class:`SweepPoint` objects, in sweep order.
    """

    def __init__(self, message: str, partial: ResultSet, failures: list[SweepPoint]):
        super().__init__(message)
        self.partial = partial
        self.failures = failures


class Engine:
    """Executes experiments and sweeps, with optional memoisation.

    Parameters
    ----------
    cache_dir:
        Directory for the on-disk result cache; ``None`` disables caching.
        Created on first write.  Shorthand for
        ``store=LocalStore(cache_dir)``.
    store:
        A :class:`~repro.dist.store.ResultStore` to memoise through instead
        of ``cache_dir`` (pass one or the other, not both).  A
        :class:`~repro.dist.store.SharedStore` here makes the engine safe to
        point at a directory that distributed workers are writing into
        concurrently.  A string is resolved like the CLI's ``--store``
        option: ``"sqlite:///cache.db"`` opens a
        :class:`~repro.dist.sqlstore.SqliteStore`, a directory path a
        :class:`~repro.dist.store.SharedStore`.
    executor:
        ``"serial"`` (default), ``"thread"``, ``"process"`` or ``"batch"``
        -- how sweep points are fanned out.  ``"batch"`` executes in the
        coordinating process like ``"serial"``, but routes every pending
        point of an experiment that declares a ``batch_fn`` through one
        stacked :meth:`~repro.api.experiment.Experiment.run_batch` call
        (points of experiments without one, and points needing injected
        upstream artifacts, run point by point).  Single ``run`` calls
        always execute inline.
    max_workers:
        Pool size for the parallel executors (default: ``os.cpu_count()``).
    chunk_size:
        Sweep points per pool task.  ``None`` (default) submits one future
        per point, which is what lets :meth:`iter_sweep` stream
        point-granularly under the pooled executors (the process pool
        pre-imports the registry through a worker initializer, so the
        per-task dispatch cost stays small).  Set a larger value to batch
        very cheap points and amortise pickling overhead, or ``"auto"`` to
        size chunks from the measured per-point cost (targeting
        :data:`TARGET_CHUNK_SECONDS` of compute per pool task, capped so
        every worker still gets several chunks).  Under the ``batch``
        executor ``None``/``"auto"`` stack *all* pending batchable points
        into one evaluation and an integer caps the stack size.
    profile:
        When True, every executed point's ResultSet records a
        ``meta["profile"]`` block splitting the point's cost into
        ``wall_s`` (experiment execution), ``solve_s`` (time inside the
        compiled MNA solver; in-process executors only) and ``dispatch_s``
        (executor queueing/dispatch overhead share), and ``sweep`` adds an
        aggregated block to the combined ResultSet's meta.  Profile blocks
        live in meta, so content hashes and cache keys are unaffected.

    Pools are kept warm: consecutive sweeps through one engine reuse the
    executor pool instead of re-spawning workers per call.  ``close()``
    (or using the engine as a context manager) shuts the pools down.
    """

    def __init__(
        self,
        cache_dir: str | None = None,
        executor: str = "serial",
        max_workers: int | None = None,
        chunk_size: int | str | None = None,
        store: "ResultStore | str | None" = None,
        profile: bool = False,
    ) -> None:
        if executor not in EXECUTORS:
            raise ValueError(f"unknown executor {executor!r}; use one of {EXECUTORS}")
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be positive")
        if isinstance(chunk_size, str):
            if chunk_size != "auto":
                raise ValueError(
                    f"chunk_size must be a positive int, None or 'auto', got {chunk_size!r}"
                )
        elif chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        if store is not None and cache_dir is not None:
            raise ValueError("pass either cache_dir or store, not both")
        if isinstance(store, str):
            # CLI spellings resolve here too: "sqlite:///cache.db" or a
            # shared directory path (see repro.dist.sqlstore.resolve_store).
            from repro.dist.sqlstore import resolve_store

            store = resolve_store(store)
        if store is None and cache_dir is not None:
            from repro.dist.store import LocalStore

            store = LocalStore(cache_dir)
        self.store = store
        self.cache_dir = None if store is None else store.directory
        self.executor = executor
        self.max_workers = max_workers or os.cpu_count() or 1
        self.chunk_size = chunk_size
        self.profile = profile
        self.cache_hits = 0
        self.cache_misses = 0
        # Warm executor pools, keyed by kind ("thread"/"process"), with the
        # worker count they were created at; see _get_pool.
        self._pools: dict[str, tuple[Any, int]] = {}
        # Exponential moving average of the per-point wall time, feeding
        # chunk_size="auto".
        self._point_cost_ema: float | None = None

    # --- pool lifecycle ----------------------------------------------------

    def close(self) -> None:
        """Shut down any warm executor pools (idempotent)."""
        pools, self._pools = self._pools, {}
        for pool, _ in pools.values():
            pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            for pool, _ in self._pools.values():
                pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass

    def _get_pool(self, workers: int) -> Any:
        """The warm pool for the current executor, (re)built when too small.

        Re-dispatching through one long-lived pool is what removes the
        per-sweep worker spawn cost (process fork + registry import) that
        used to make many small ``iter_sweep`` calls slower than serial
        execution.  A cached pool is reused whenever it has at least the
        requested worker count; a too-small one is replaced.
        """
        cached = self._pools.get(self.executor)
        if cached is not None and cached[1] >= workers:
            return cached[0]
        if cached is not None:
            cached[0].shutdown(wait=False, cancel_futures=True)
        if self.executor == "thread":
            pool: Any = ThreadPoolExecutor(max_workers=workers)
        else:
            # Import the registry once per worker at startup instead of per
            # submitted task -- with per-point futures the task count equals
            # the point count, so per-task work must stay minimal.
            pool = ProcessPoolExecutor(max_workers=workers, initializer=ensure_registered)
        self._pools[self.executor] = (pool, workers)
        return pool

    def _observe_point_cost(self, elapsed: float) -> None:
        """Feed one executed point's wall time into the auto-chunk EMA."""
        if self._point_cost_ema is None:
            self._point_cost_ema = elapsed
        else:
            self._point_cost_ema = 0.5 * self._point_cost_ema + 0.5 * elapsed

    def _finalize_outcome(self, outcome: _Outcome, dispatch_s: float) -> _Outcome:
        """Record the point cost and attach the profile block (if profiling)."""
        records, error, elapsed, prof = outcome
        self._observe_point_cost(elapsed)
        metrics.counter("repro_points_executed_total", executor=self.executor).inc()
        metrics.histogram("repro_point_wall_seconds").observe(elapsed)
        if not self.profile:
            return (records, error, elapsed, None)
        profile = {
            "wall_s": elapsed,
            "solve_s": (prof or {}).get("solve_s", 0.0),
            "dispatch_s": dispatch_s,
        }
        return (records, error, elapsed, profile)

    # --- cache ------------------------------------------------------------

    def _count_cache(self, outcome: str, n: int = 1) -> None:
        """Bump both the engine's own counters and the shared cache metric."""
        if outcome == "hit":
            self.cache_hits += n
        else:
            self.cache_misses += n
        metrics.counter("repro_cache_events_total", outcome=outcome).inc(n)

    def _cache_path(
        self,
        experiment: Experiment,
        params: Mapping[str, Any],
        upstream: Mapping[str, str] | None = None,
    ) -> str | None:
        if self.store is None:
            return None
        key = cache_key(experiment.name, experiment.version, params, upstream)
        return self.store.entry_path(experiment.name, key)

    def _cache_load(self, path: str | None) -> ResultSet | None:
        if path is None:
            return None
        result = self.store.load(path)
        if result is None:
            return None  # missing or corrupt entry: recompute and overwrite
        result.meta["cache_hit"] = True
        return result

    def _cache_store(self, path: str | None, result: ResultSet) -> None:
        if path is None:
            return
        # The store publishes atomically (tmp file + fsync + os.replace), so
        # a crashed run never leaves a truncated or corrupt entry behind; a
        # SharedStore additionally takes the store lock and clears any claim
        # lease on the entry.
        self.store.publish(path, result)

    def clear_cache(self) -> int:
        """Delete all cache entries; returns the number of files removed.

        Only files matching the engine's own ``<experiment>-<hash16>.json``
        naming are touched, so pointing ``cache_dir`` at a directory that
        also holds exported results cannot destroy them.  Finer-grained
        eviction (by experiment, version or age) lives in
        :func:`repro.api.cache.prune_cache`.
        """
        from repro.api.cache import clear_cache

        return clear_cache(self.store)

    # --- execution --------------------------------------------------------

    def run(
        self,
        name: str | Experiment,
        params: Mapping[str, Any] | None = None,
        use_cache: bool = True,
        stage_params: StageParams | None = None,
        **param_kwargs: Any,
    ) -> ResultSet:
        """Execute one experiment and return its :class:`ResultSet`.

        Parameters can be passed as a mapping, as keywords, or both
        (keywords win).  With a cache directory configured, a repeated
        invocation is served from disk (``meta["cache_hit"]`` is then True).

        A composite experiment (non-empty ``consumes``) has its upstream
        dependencies resolved first -- recursively, through this same method,
        so upstream results are memoised too -- and their ResultSets injected
        into the call.  ``stage_params`` carries per-experiment parameter
        overrides for the upstream stages (a study's ``params``); overrides
        for upstream parameters that are *bound* to this experiment's
        parameters are ignored in favour of the bound values.
        """
        experiment = name if isinstance(name, Experiment) else get_experiment(name)
        resolved = experiment.resolve_params({**(params or {}), **param_kwargs})
        return self._run_resolved(experiment, resolved, use_cache, stage_params, {})

    def _run_resolved(
        self,
        experiment: Experiment,
        resolved: dict[str, Any],
        use_cache: bool,
        stage_params: StageParams | None,
        memo: dict[str, "ResultSet | UpstreamFailure"],
    ) -> ResultSet:
        """Memoised single-invocation execution (the body of :meth:`run`).

        ``memo`` deduplicates repeated invocations *within one engine call*
        (several downstream points binding to the same upstream parameters),
        which is what keeps cache-less engines from recomputing shared
        upstream stages per point.  Failures are memoised too (as
        :class:`UpstreamFailure`), so a doomed shared stage executes once
        and its error replays per dependent downstream point.
        """
        memo_key = cache_key(experiment.name, experiment.version, resolved)
        hit = memo.get(memo_key)
        if isinstance(hit, UpstreamFailure):
            raise hit
        if hit is not None:
            return hit

        inputs, upstream = self.resolve_inputs(
            experiment, resolved, stage_params, use_cache, memo
        )
        path = self._cache_path(experiment, resolved, upstream) if use_cache else None
        cached = self._cache_load(path)
        if cached is not None:
            self._count_cache("hit")
            memo[memo_key] = cached
            return cached
        self._count_cache("miss")

        start = time.perf_counter()
        with trace_span("engine.run", experiment=experiment.name):
            try:
                records = experiment.run_with_inputs(inputs, resolved)
            except Exception as error:
                memo[memo_key] = UpstreamFailure(f"{type(error).__name__}: {error}")
                raise
        elapsed = time.perf_counter() - start

        result = ResultSet.from_records(
            records, meta=self._meta(experiment, resolved, elapsed, upstream)
        )
        self._cache_store(path, result)
        memo[memo_key] = result
        return result

    def resolve_inputs(
        self,
        experiment: Experiment,
        resolved: Mapping[str, Any],
        stage_params: StageParams | None = None,
        use_cache: bool = True,
        memo: dict[str, "ResultSet | UpstreamFailure"] | None = None,
    ) -> tuple[dict[str, ResultSet], dict[str, str]]:
        """Resolve a composite experiment's upstream artifacts.

        Returns ``(inputs, upstream)``: the ResultSets to inject (keyed by
        each dependency's ``inject`` name) and their content hashes (the
        chaining component of the downstream cache key).  Self-contained
        experiments return two empty dicts.  Upstream invocations execute
        through :meth:`run` semantics -- memoised, cached, recursive -- with
        each upstream's parameters assembled from its defaults, the
        ``stage_params`` overrides for that experiment, and the values bound
        from ``resolved`` (bound values win).

        ``memo`` may be shared across calls to deduplicate upstream work for
        many downstream points (:func:`repro.dist.worker.run_worker` does).
        """
        if not experiment.consumes:
            return {}, {}
        if memo is None:
            memo = {}
        inputs: dict[str, ResultSet] = {}
        upstream_hashes: dict[str, str] = {}
        for dep in experiment.consumes:
            upstream = get_experiment(dep.experiment)
            up_resolved = self._bound_upstream_params(
                upstream, dep, resolved, stage_params
            )
            result = self._run_resolved(
                upstream, up_resolved, use_cache, stage_params, memo
            )
            inputs[dep.inject] = result
            upstream_hashes[dep.inject] = result.content_hash
        return inputs, upstream_hashes

    @staticmethod
    def _bound_upstream_params(
        upstream: Experiment,
        dep: "Consumes",
        resolved: Mapping[str, Any],
        stage_params: StageParams | None,
    ) -> dict[str, Any]:
        """One upstream invocation's resolved parameters (overrides + binds)."""
        overrides = dict((stage_params or {}).get(dep.experiment, {}))
        for up_name, down_name in dep.bind.items():
            overrides[up_name] = resolved[down_name]
        return upstream.resolve_params(overrides)

    def run_study(
        self,
        study: "Study | str",
        stage_params: StageParams | None = None,
        sweep: SweepSpec | None = None,
        shard: "ShardPlan | None" = None,
        use_cache: bool = True,
        on_result: Callable[[SweepPoint], None] | None = None,
    ) -> ResultSet:
        """Execute a registered :class:`~repro.api.study.Study` end to end.

        Resolves (and validates) the study's pipeline, then runs the target
        experiment -- as the study's default sweep (or an explicit ``sweep``
        override) when one is declared, as a single invocation otherwise.
        Upstream stages execute first, stage by stage, exactly as
        :meth:`run` / :meth:`sweep` do for any composite experiment.
        ``stage_params`` merges over the study's own per-stage overrides.
        ``shard`` restricts a swept study to one
        :class:`~repro.dist.shards.ShardPlan` slice; the partial results
        merge through :func:`repro.dist.shards.merge_results` bit-identically
        to a serial study run.
        """
        from repro.api.study import get_study, resolve_pipeline

        if isinstance(study, str):
            study = get_study(study)

        merged: dict[str, dict[str, Any]] = {
            name: dict(values) for name, values in study.params.items()
        }
        for name, values in (stage_params or {}).items():
            merged.setdefault(name, {}).update(values)
        # Resolving with the *merged* overrides validates both the stage
        # names and every override's parameter name up front, so a typo
        # fails here instead of failing every sweep point downstream.
        pipeline = resolve_pipeline(study.target, merged)
        base = merged.get(study.target, {})

        study_meta = {
            "name": study.name,
            "target": study.target,
            "stages": pipeline.stage_names,
            "stage_params": {k: v for k, v in merged.items() if v},
        }
        spec = sweep if sweep is not None else study.sweep
        if spec is None:
            if shard is not None:
                raise ValueError(
                    f"study {study.name!r} declares no sweep; sharding needs one "
                    "(pass sweep=... or register the study with a sweep)"
                )
            result = self.run(
                study.target, params=base, use_cache=use_cache, stage_params=merged
            )
        else:
            try:
                result = self.sweep(
                    study.target,
                    spec,
                    base_params=base,
                    use_cache=use_cache,
                    on_result=on_result,
                    shard=shard,
                    stage_params=merged,
                )
            except SweepError as error:
                # Partial study results keep their provenance too.
                error.partial.meta["study"] = study_meta
                raise
        result.meta["study"] = study_meta
        return result

    def sweep(
        self,
        name: str | Experiment,
        spec: SweepSpec,
        base_params: Mapping[str, Any] | None = None,
        use_cache: bool = True,
        on_result: Callable[[SweepPoint], None] | None = None,
        shard: "ShardPlan | None" = None,
        stage_params: StageParams | None = None,
    ) -> ResultSet:
        """Fan an experiment out over every point of a sweep.

        Each sweep point is one experiment invocation with the point's
        values overriding ``base_params``; its records are tagged with the
        swept parameter values (columns named after the axes) so the
        combined ResultSet can be grouped and filtered by sweep point.
        The combined ResultSet follows ``spec.points()`` order regardless of
        executor, so serial and parallel sweeps return identical ResultSets.

        ``on_result`` is called once per sweep point *as it completes*
        (completion order, which may differ from sweep order under the
        parallel executors) -- the hook the CLI uses to render progressive
        per-point progress.  If any point fails, the remaining points still
        execute and :class:`SweepError` is raised at the end; its ``partial``
        attribute holds the ResultSet of the completed points, which are also
        already cached, so a re-run pays only for the failures.

        ``shard`` restricts the run to one deterministic slice of the sweep
        (see :class:`repro.dist.shards.ShardPlan`); the partial ResultSet
        then records the slice under ``meta["shard"]`` and
        :func:`repro.dist.shards.merge_results` reassembles all slices into
        the full-sweep ResultSet.
        """
        experiment = name if isinstance(name, Experiment) else get_experiment(name)
        points = spec.points()
        start = time.perf_counter()
        completed: dict[int, SweepPoint] = {}
        # The span wraps the consuming loop (not the generator body), so the
        # trace context never leaks across generator suspensions; every
        # engine.point span -- serial or pooled -- nests under it.
        with trace_span(
            "engine.sweep",
            experiment=experiment.name,
            executor=self.executor,
            n_points=len(points),
        ):
            for sweep_point in self.iter_sweep(
                experiment,
                spec,
                base_params=base_params,
                use_cache=use_cache,
                shard=shard,
                stage_params=stage_params,
            ):
                completed[sweep_point.index] = sweep_point
                if on_result is not None:
                    on_result(sweep_point)
        elapsed = time.perf_counter() - start
        # iter_sweep yields exactly the selected slice, so the slice (in
        # sweep order) is the sorted key set -- no second hashing pass.
        selected = sorted(completed)

        tagged: list[dict[str, Any]] = []
        failures: list[SweepPoint] = []
        for index in selected:
            sweep_point = completed[index]  # iter_sweep yields every selected point
            if not sweep_point.ok:
                failures.append(sweep_point)
                continue
            for record in sweep_point.result.to_records():
                tagged.append(_tag_record(record, sweep_point.point))

        meta = self._meta(experiment, dict(base_params or {}), elapsed)
        meta["sweep"] = spec.to_meta()
        if self.profile:
            blocks = [
                completed[index].result.meta["profile"]
                for index in selected
                if completed[index].ok
                and not completed[index].cache_hit
                and completed[index].result is not None
                and "profile" in completed[index].result.meta
            ]
            meta["profile"] = {
                "points_profiled": len(blocks),
                "wall_s": sum(block.get("wall_s", 0.0) for block in blocks),
                "solve_s": sum(block.get("solve_s", 0.0) for block in blocks),
                "dispatch_s": sum(block.get("dispatch_s", 0.0) for block in blocks),
            }
        if shard is not None:
            meta["shard"] = {
                "n_shards": shard.n_shards,
                "shard_index": shard.shard_index,
                "n_points": len(selected),
                "point_indices": selected,
            }
        result = ResultSet.from_records(tagged, meta=meta)
        if failures:
            raise SweepError(
                f"{len(failures)} of {len(selected)} sweep points failed; "
                f"first failure at point {failures[0].index} "
                f"({failures[0].point}): {failures[0].error}",
                partial=result,
                failures=failures,
            )
        return result

    def iter_sweep(
        self,
        name: str | Experiment,
        spec: SweepSpec,
        base_params: Mapping[str, Any] | None = None,
        use_cache: bool = True,
        shard: "ShardPlan | None" = None,
        stage_params: StageParams | None = None,
    ) -> Iterator[SweepPoint]:
        """Stream a sweep: yield one :class:`SweepPoint` per point as it lands.

        Cache hits are yielded first (in sweep order, they are free), then
        executed points in completion order -- under the thread and process
        executors a fast point is yielded while slower ones are still
        running.  A failed point is yielded with ``error`` set instead of
        aborting the generator, so consumers always see every point exactly
        once; ``SweepPoint.index`` maps it back to ``spec.points()`` order.
        With ``shard`` set, only the shard's slice of the sweep is streamed
        (indices still refer to the full ``spec.points()`` order).

        A composite experiment's sweep executes stage by stage: the distinct
        upstream invocations the selected points need (after parameter
        binding and deduplication) run first, fanned out through the same
        executor, then the downstream points run with their upstream
        ResultSets injected.  An upstream failure fails exactly the dependent
        downstream points, never the whole sweep.

        Unlike :meth:`sweep`, nothing is raised for failed points: streaming
        consumers decide themselves how to react.  Parameter errors (unknown
        axis names, un-coercible values) raise here, at the call site --
        every point is resolved before the stream is handed back, so the
        generator itself only ever yields.
        """
        experiment = name if isinstance(name, Experiment) else get_experiment(name)
        points = spec.points()
        selected = list(range(len(points))) if shard is None else shard.indices(points)
        # Resolve (and cache-key) only the selected slice: a 1-of-N shard of
        # a large sweep must not pay parameter resolution for all N slices.
        resolved_points = {
            index: experiment.resolve_params({**(base_params or {}), **points[index]})
            for index in selected
        }
        return self._iter_resolved(
            experiment, points, resolved_points, selected, use_cache, stage_params
        )

    def _iter_resolved(
        self,
        experiment: Experiment,
        points: list[dict[str, Any]],
        resolved_points: dict[int, dict[str, Any]],
        selected: list[int],
        use_cache: bool,
        stage_params: StageParams | None,
    ) -> Iterator[SweepPoint]:
        """The generator body of :meth:`iter_sweep` (post parameter resolution)."""
        memo: dict[str, "ResultSet | UpstreamFailure"] = {}
        if experiment.consumes and selected:
            # Stage the DAG: run the distinct upstream invocations first so
            # the per-point injection below is a memo lookup, not a compute.
            self._prefetch_upstreams(
                experiment,
                [resolved_points[index] for index in selected],
                use_cache,
                stage_params,
                memo,
            )

        pending: list[int] = []
        paths: dict[int, str | None] = {}
        tasks: dict[int, _Task] = {}
        for index in selected:
            try:
                inputs, upstream = self.resolve_inputs(
                    experiment, resolved_points[index], stage_params, use_cache, memo
                )
            except Exception as error:
                # A failed upstream stage fails the dependent point only; the
                # prefix marks where in the pipeline the failure happened.
                # A memo-replayed UpstreamFailure already carries the original
                # "ExceptionType: message" text.
                message = (
                    str(error)
                    if isinstance(error, UpstreamFailure)
                    else f"{type(error).__name__}: {error}"
                )
                yield SweepPoint(
                    index=index,
                    point=points[index],
                    params=resolved_points[index],
                    result=None,
                    error=f"upstream: {message}",
                )
                continue
            path = (
                self._cache_path(experiment, resolved_points[index], upstream)
                if use_cache
                else None
            )
            cached = self._cache_load(path)
            if cached is None:
                pending.append(index)
                paths[index] = path
                tasks[index] = (resolved_points[index], inputs)
                continue
            self._count_cache("hit")
            yield SweepPoint(
                index=index,
                point=points[index],
                params=resolved_points[index],
                result=cached,
                cache_hit=True,
            )
        if pending:
            self._count_cache("miss", len(pending))

        upstream_by_index = {
            index: {
                inject: result.content_hash
                for inject, result in tasks[index][1].items()
            }
            for index in pending
        }
        for index, (records, error, elapsed, prof) in self._execute_pending(
            experiment, tasks, pending
        ):
            if error is not None:
                yield SweepPoint(
                    index=index,
                    point=points[index],
                    params=resolved_points[index],
                    result=None,
                    error=error,
                )
                continue
            meta = self._meta(
                experiment, resolved_points[index], elapsed, upstream_by_index[index]
            )
            if prof is not None:
                meta["profile"] = prof
            result = ResultSet.from_records(records, meta=meta)
            self._cache_store(paths[index], result)
            yield SweepPoint(
                index=index,
                point=points[index],
                params=resolved_points[index],
                result=result,
            )

    def _prefetch_upstreams(
        self,
        experiment: Experiment,
        resolved_list: list[dict[str, Any]],
        use_cache: bool,
        stage_params: StageParams | None,
        memo: dict[str, "ResultSet | UpstreamFailure"],
    ) -> None:
        """Execute one stage's distinct upstream invocations, deepest first.

        For every dependency of ``experiment``, project the downstream
        points through the parameter bindings, deduplicate the resulting
        upstream invocations, recurse (so transitively deeper stages run
        first) and fan the still-unmemoised invocations out through
        :meth:`_execute_pending` -- the exact machinery downstream points
        use, so a thread/process engine parallelises every stage, not just
        the last one.  Failures are *not* raised here: the per-point
        injection pass re-resolves and attributes the error to exactly the
        dependent downstream points.
        """
        for dep in experiment.consumes:
            upstream = get_experiment(dep.experiment)
            distinct: dict[str, dict[str, Any]] = {}
            for resolved in resolved_list:
                try:
                    up_resolved = self._bound_upstream_params(
                        upstream, dep, resolved, stage_params
                    )
                except Exception:
                    continue  # surfaced per downstream point later
                distinct.setdefault(
                    cache_key(upstream.name, upstream.version, up_resolved),
                    up_resolved,
                )
            if not distinct:
                continue
            invocations = list(distinct.values())
            if upstream.consumes:
                self._prefetch_upstreams(
                    upstream, invocations, use_cache, stage_params, memo
                )

            pending: list[int] = []
            stage_tasks: dict[int, _Task] = {}
            stage_paths: dict[int, str | None] = {}
            stage_upstream: dict[int, dict[str, str]] = {}
            memo_keys: dict[int, str] = {}
            for slot, (memo_key, up_resolved) in enumerate(distinct.items()):
                if memo_key in memo:
                    continue
                try:
                    inputs, upstream_hashes = self.resolve_inputs(
                        upstream, up_resolved, stage_params, use_cache, memo
                    )
                except Exception:
                    continue  # deeper-stage failure; attributed downstream
                path = (
                    self._cache_path(upstream, up_resolved, upstream_hashes)
                    if use_cache
                    else None
                )
                cached = self._cache_load(path)
                if cached is not None:
                    self._count_cache("hit")
                    memo[memo_key] = cached
                    continue
                pending.append(slot)
                memo_keys[slot] = memo_key
                stage_tasks[slot] = (up_resolved, inputs)
                stage_paths[slot] = path
                stage_upstream[slot] = upstream_hashes
            if pending:
                self._count_cache("miss", len(pending))

            for slot, (records, error, elapsed, prof) in self._execute_pending(
                upstream, stage_tasks, pending
            ):
                if error is not None:
                    # Memoise the failure: dependent downstream points report
                    # it without re-executing the doomed invocation.
                    memo[memo_keys[slot]] = UpstreamFailure(error)
                    continue
                stage_meta = self._meta(
                    upstream, stage_tasks[slot][0], elapsed, stage_upstream[slot]
                )
                if prof is not None:
                    stage_meta["profile"] = prof
                result = ResultSet.from_records(records, meta=stage_meta)
                self._cache_store(stage_paths[slot], result)
                memo[memo_keys[slot]] = result

    # --- helpers ----------------------------------------------------------

    def _auto_chunk_size(self, n_pending: int) -> int:
        """Chunk size targeting :data:`TARGET_CHUNK_SECONDS` per pool task.

        Derived from the measured per-point cost EMA (1 until anything has
        been measured), and capped so every worker still receives at least
        two chunks -- a single giant chunk would serialise the sweep behind
        one worker no matter how cheap the points are.
        """
        cost = self._point_cost_ema
        if cost is None or cost <= 0.0:
            return 1
        by_cost = int(TARGET_CHUNK_SECONDS / cost)
        balance_cap = n_pending // (2 * self.max_workers)
        return max(1, min(by_cost, max(1, balance_cap)))

    def _chunks(self, pending: list[int]) -> list[list[int]]:
        """Split pending point indices into pool tasks.

        With ``chunk_size=None`` every point is its own task: a fast point's
        result streams back the moment it finishes instead of waiting for
        chunk-mates, which is the point-granular latency :meth:`iter_sweep`
        promises.  An explicit ``chunk_size`` restores batched submission
        for workloads whose per-point cost is dwarfed by dispatch overhead;
        ``"auto"`` picks that size from the measured point cost.
        """
        if self.chunk_size is None:
            return [[index] for index in pending]
        size = (
            self._auto_chunk_size(len(pending))
            if self.chunk_size == "auto"
            else self.chunk_size
        )
        return [pending[i : i + size] for i in range(0, len(pending), size)]

    def _execute_pending(
        self,
        experiment: Experiment,
        tasks: dict[int, _Task],
        pending: list[int],
    ) -> Iterator[tuple[int, _Outcome]]:
        """Yield ``(point_index, outcome)`` for every uncached sweep point.

        ``tasks`` maps each pending index to its ``(resolved params,
        injected inputs)`` pair -- inputs are empty for self-contained
        experiments.  Serial execution yields in sweep order; the pooled
        executors submit one future per point by default (see
        :meth:`_chunks`) and yield each future's points as it completes,
        which is what makes :meth:`iter_sweep` stream point-granularly under
        parallel execution.
        """
        if not pending:
            return
        if self.executor == "batch":
            yield from self._execute_batched(experiment, tasks, pending)
            return
        if self.executor == "serial" or len(pending) == 1:
            # Execute through the instance itself so ad-hoc (unregistered)
            # Experiment objects behave exactly like in run().
            for index in pending:
                outcome = _run_outcomes(
                    experiment.run_with_inputs,
                    [tasks[index]],
                    profile=self.profile,
                    experiment=experiment.name,
                )[0]
                yield index, self._finalize_outcome(outcome, 0.0)
            return

        if self.executor == "process":
            # Process workers rebuild the registry by name; an instance that
            # is not the registered one would silently execute the wrong
            # function (and poison the cache), so refuse early.
            ensure_registered()
            from repro.api.experiment import _REGISTRY

            if _REGISTRY.get(experiment.name) is not experiment:
                raise ValueError(
                    f"the process executor needs a registered experiment; "
                    f"{experiment.name!r} is not the registered instance "
                    "(use executor='thread'/'serial' for ad-hoc experiments)"
                )

        chunks = self._chunks(pending)
        pool = self._get_pool(min(self.max_workers, len(chunks)))
        # Pool workers (threads included) start with an empty contextvars
        # context, so the trace ancestry rides along explicitly.  The
        # profile flag rides the same way: pool-side execution is where
        # solve_s accrues, so dropping it there zeroed every pooled
        # point's solver share.
        carrier = current_carrier()
        if self.executor == "thread":
            # Threads share the interpreter: execute through the instance
            # (ad-hoc experiments included), no registry round-trip.
            def submit(chunk_tasks):
                return pool.submit(
                    _run_outcomes,
                    experiment.run_with_inputs,
                    chunk_tasks,
                    self.profile,
                    carrier,
                    experiment.name,
                )

        else:
            def submit(chunk_tasks):
                return pool.submit(
                    _execute_chunk, experiment.name, chunk_tasks, self.profile, carrier
                )

        future_to_chunk: dict[Any, list[int]] = {}
        submitted_at: dict[Any, float] = {}
        for chunk in chunks:
            start = time.perf_counter()
            future = submit([tasks[i] for i in chunk])
            future_to_chunk[future] = chunk
            submitted_at[future] = start
        try:
            for future in as_completed(future_to_chunk):
                chunk = future_to_chunk[future]
                outcomes = future.result()
                # ``received`` is taken *after* result(): everything between
                # this chunk's own submission and holding its results that
                # was not experiment compute -- pickling, queueing behind
                # other chunks, result transfer/retrieval -- is dispatch
                # overhead, shared evenly across the chunk's points, so
                # wall_s + dispatch_s approximates the point's true cost.
                received = time.perf_counter()
                compute = sum(outcome[2] for outcome in outcomes)
                dispatch = max(0.0, received - submitted_at[future] - compute) / len(
                    chunk
                )
                metrics.counter(
                    "repro_dispatch_overhead_seconds_total", executor=self.executor
                ).inc(dispatch * len(chunk))
                for index, outcome in zip(chunk, outcomes):
                    yield index, self._finalize_outcome(outcome, dispatch)
        finally:
            # A streaming consumer may abandon the generator mid-sweep
            # (GeneratorExit lands here); cancel the queued chunks so the
            # warm pool stops computing the rest of the sweep for nobody.
            # The pool itself stays alive for the next sweep (see close()).
            for future in future_to_chunk:
                future.cancel()

    def _execute_batched(
        self,
        experiment: Experiment,
        tasks: dict[int, _Task],
        pending: list[int],
    ) -> Iterator[tuple[int, _Outcome]]:
        """The ``batch`` executor: stacked evaluation of batchable points.

        Points of an experiment with a ``batch_fn`` and no injected inputs
        are stacked into :meth:`Experiment.run_batch` calls (all pending
        points at once for ``chunk_size=None``/``"auto"``, capped stacks for
        an integer ``chunk_size``); everything else runs point by point like
        the serial executor.  A failing batch falls back to per-point
        execution, so each point's error is attributed individually and a
        buggy batch function can never change sweep results.
        """
        batchable = (
            [index for index in pending if not tasks[index][1]]
            if experiment.batch_fn is not None
            else []
        )
        batch_set = set(batchable)
        for index in pending:
            if index in batch_set:
                continue
            outcome = _run_outcomes(
                experiment.run_with_inputs,
                [tasks[index]],
                profile=self.profile,
                experiment=experiment.name,
            )[0]
            yield index, self._finalize_outcome(outcome, 0.0)

        if isinstance(self.chunk_size, int):
            chunks = [
                batchable[i : i + self.chunk_size]
                for i in range(0, len(batchable), self.chunk_size)
            ]
        else:
            chunks = [batchable] if batchable else []
        for chunk in chunks:
            start = time.perf_counter()
            solve_share = 0.0
            try:
                with trace_span(
                    "engine.batch", experiment=experiment.name, n_points=len(chunk)
                ):
                    if self.profile:
                        from repro.circuit.compiled import profiled_solves

                        with profiled_solves() as accumulator:
                            records_list = experiment.run_batch(
                                [tasks[index][0] for index in chunk]
                            )
                        solve_share = accumulator["solve_s"] / len(chunk)
                    else:
                        records_list = experiment.run_batch(
                            [tasks[index][0] for index in chunk]
                        )
            except Exception:
                for index in chunk:
                    outcome = _run_outcomes(
                        experiment.run_with_inputs,
                        [tasks[index]],
                        profile=self.profile,
                        experiment=experiment.name,
                    )[0]
                    yield index, self._finalize_outcome(outcome, 0.0)
                continue
            elapsed = (time.perf_counter() - start) / len(chunk)
            for index, records in zip(chunk, records_list):
                prof = {"solve_s": solve_share} if self.profile else None
                yield index, self._finalize_outcome((records, None, elapsed, prof), 0.0)

    def _meta(
        self,
        experiment: Experiment,
        params: Mapping[str, Any],
        elapsed: float | None,
        upstream: Mapping[str, str] | None = None,
    ) -> dict[str, Any]:
        meta: dict[str, Any] = {
            "experiment": experiment.name,
            "version": experiment.version,
            "params": dict(params),
            "executor": self.executor,
        }
        if elapsed is not None:
            meta["wall_time_s"] = elapsed
        if upstream:
            # Provenance of consumed artifacts: which upstream experiment fed
            # each inject, pinned by the content hash the cache key chained.
            meta["upstream"] = upstream_meta(experiment, upstream)
        return meta


def _tag_record(record: dict[str, Any], point: Mapping[str, Any]) -> dict[str, Any]:
    """Prepend the sweep-point values as columns of the record.

    A sweep axis whose name collides with an output column of the record is
    stored under a ``param_`` prefix instead, so experiment output is never
    silently overwritten.
    """
    tags = {}
    for name, value in point.items():
        tags[f"param_{name}" if name in record else name] = value
    return {**tags, **record}
