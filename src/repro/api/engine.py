"""Execution engine: serial / pooled experiment runs with on-disk memoisation.

The :class:`Engine` is the single entry point that turns a registered
:class:`~repro.api.experiment.Experiment` plus parameters into a
:class:`~repro.api.results.ResultSet`:

* ``run(name, **params)`` -- one experiment execution,
* ``sweep(name, spec)`` -- fan a :class:`~repro.api.sweep.SweepSpec` out over
  the experiment, serially or through a ``concurrent.futures`` thread/process
  pool with per-point future submission (optionally chunked),
* ``iter_sweep(name, spec)`` -- the streaming form of ``sweep``: a generator
  yielding one :class:`SweepPoint` per sweep point *as it completes* (cache
  hits first, then executed points in completion order), so callers can
  render progress or consume partial results while the sweep is running.

``sweep`` is built on ``iter_sweep`` and accepts an ``on_result`` callback
invoked once per completed point.  A point whose experiment raises no longer
aborts the whole fan-out: the remaining points still execute, completed
points stay cached, and ``sweep`` raises :class:`SweepError` carrying the
partial :class:`ResultSet`.

Caching is content-addressed: the key is a SHA-256 over (experiment name,
experiment version, canonicalised parameters), so identical invocations are
served from disk regardless of execution mode.  Result I/O goes through a
pluggable :class:`~repro.dist.store.ResultStore` -- ``cache_dir=`` is
shorthand for a :class:`~repro.dist.store.LocalStore`, and a
:class:`~repro.dist.store.SharedStore` makes the same directory safe to
share between machines (see :mod:`repro.dist`).  All cache I/O happens in
the coordinating process -- pool workers only compute -- which keeps even
the local store free of write races.  Cache inspection and eviction live in
:mod:`repro.api.cache` (``python -m repro cache`` on the shell).

Sweeps can additionally be statically partitioned across machines with a
:class:`~repro.dist.shards.ShardPlan` (``sweep(..., shard=plan)`` runs only
the plan's slice); :func:`repro.dist.shards.merge_results` reassembles the
partial ResultSets.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor, as_completed
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterator, Mapping

from repro.api.experiment import Experiment, ensure_registered, get_experiment
from repro.api.results import ResultSet
from repro.api.sweep import SweepSpec

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from repro.dist.shards import ShardPlan
    from repro.dist.store import ResultStore

EXECUTORS = ("serial", "thread", "process")


def cache_key(name: str, version: str, params: Mapping[str, Any]) -> str:
    """Content-addressed key of one experiment invocation."""
    payload = json.dumps(
        {"experiment": name, "version": version, "params": params},
        sort_keys=True,
        separators=(",", ":"),
        default=str,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# One executed sweep point before tagging: (records, error message, wall time).
# ``records`` is None exactly when ``error`` is set; capturing the error as a
# string keeps the tuple picklable across process-pool boundaries.
_Outcome = tuple[list[dict[str, Any]] | None, str | None, float]


def _run_outcomes(
    run: Callable[..., list[dict[str, Any]]], points: list[dict[str, Any]]
) -> list[_Outcome]:
    """Run sweep points one by one, capturing per-point failures.

    An exception in one point must not poison its siblings (that is the
    partial-failure guarantee of ``sweep``), so each point's error is caught
    and reported as data rather than raised.
    """
    outcomes: list[_Outcome] = []
    for point in points:
        start = time.perf_counter()
        try:
            records = run(**point)
        except Exception as error:
            outcomes.append(
                (None, f"{type(error).__name__}: {error}", time.perf_counter() - start)
            )
        else:
            outcomes.append((records, None, time.perf_counter() - start))
    return outcomes


def _execute_chunk(name: str, points: list[dict[str, Any]]) -> list[_Outcome]:
    """Run a chunk of sweep points in one pool task (amortises dispatch cost).

    Importable (not a closure) so process pools can pickle it; the worker
    rebuilds the registry by name via :func:`ensure_registered`.
    """
    ensure_registered()
    return _run_outcomes(get_experiment(name).run, points)


@dataclass(frozen=True)
class SweepPoint:
    """One sweep point's outcome, yielded by :meth:`Engine.iter_sweep`.

    Attributes
    ----------
    index:
        Position of the point in ``spec.points()`` order (the order the
        combined ResultSet is assembled in, regardless of completion order).
    point:
        The sweep-axis overrides of this point (what tags its records).
    params:
        The fully resolved parameter dict the experiment ran with.
    result:
        The point's :class:`ResultSet`, or ``None`` if the point failed.
    error:
        ``"ExceptionType: message"`` when the experiment raised, else ``None``.
    cache_hit:
        True when the result was served from the on-disk cache.
    """

    index: int
    point: dict[str, Any]
    params: dict[str, Any]
    result: ResultSet | None
    error: str | None = None
    cache_hit: bool = False

    @property
    def ok(self) -> bool:
        """Whether the point completed without error."""
        return self.error is None


class SweepError(RuntimeError):
    """One or more sweep points failed; the completed points are preserved.

    Attributes
    ----------
    partial:
        :class:`ResultSet` of every *completed* point, assembled exactly as
        the successful return value would have been (completed points are
        also already in the cache, so a re-run pays only for the failures).
    failures:
        The failed :class:`SweepPoint` objects, in sweep order.
    """

    def __init__(self, message: str, partial: ResultSet, failures: list[SweepPoint]):
        super().__init__(message)
        self.partial = partial
        self.failures = failures


class Engine:
    """Executes experiments and sweeps, with optional memoisation.

    Parameters
    ----------
    cache_dir:
        Directory for the on-disk result cache; ``None`` disables caching.
        Created on first write.  Shorthand for
        ``store=LocalStore(cache_dir)``.
    store:
        A :class:`~repro.dist.store.ResultStore` to memoise through instead
        of ``cache_dir`` (pass one or the other, not both).  A
        :class:`~repro.dist.store.SharedStore` here makes the engine safe to
        point at a directory that distributed workers are writing into
        concurrently.
    executor:
        ``"serial"`` (default), ``"thread"`` or ``"process"`` -- how sweep
        points are fanned out.  Single ``run`` calls always execute inline.
    max_workers:
        Pool size for the parallel executors (default: ``os.cpu_count()``).
    chunk_size:
        Sweep points per pool task.  ``None`` (default) submits one future
        per point, which is what lets :meth:`iter_sweep` stream
        point-granularly under the pooled executors (the process pool
        pre-imports the registry through a worker initializer, so the
        per-task dispatch cost stays small).  Set a larger value to batch
        very cheap points and amortise pickling overhead.
    """

    def __init__(
        self,
        cache_dir: str | None = None,
        executor: str = "serial",
        max_workers: int | None = None,
        chunk_size: int | None = None,
        store: "ResultStore | None" = None,
    ) -> None:
        if executor not in EXECUTORS:
            raise ValueError(f"unknown executor {executor!r}; use one of {EXECUTORS}")
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be positive")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        if store is not None and cache_dir is not None:
            raise ValueError("pass either cache_dir or store, not both")
        if store is None and cache_dir is not None:
            from repro.dist.store import LocalStore

            store = LocalStore(cache_dir)
        self.store = store
        self.cache_dir = None if store is None else store.directory
        self.executor = executor
        self.max_workers = max_workers or os.cpu_count() or 1
        self.chunk_size = chunk_size
        self.cache_hits = 0
        self.cache_misses = 0

    # --- cache ------------------------------------------------------------

    def _cache_path(self, experiment: Experiment, params: Mapping[str, Any]) -> str | None:
        if self.store is None:
            return None
        key = cache_key(experiment.name, experiment.version, params)
        return self.store.entry_path(experiment.name, key)

    def _cache_load(self, path: str | None) -> ResultSet | None:
        if path is None:
            return None
        result = self.store.load(path)
        if result is None:
            return None  # missing or corrupt entry: recompute and overwrite
        result.meta["cache_hit"] = True
        return result

    def _cache_store(self, path: str | None, result: ResultSet) -> None:
        if path is None:
            return
        # The store publishes atomically (tmp file + fsync + os.replace), so
        # a crashed run never leaves a truncated or corrupt entry behind; a
        # SharedStore additionally takes the store lock and clears any claim
        # lease on the entry.
        self.store.publish(path, result)

    def clear_cache(self) -> int:
        """Delete all cache entries; returns the number of files removed.

        Only files matching the engine's own ``<experiment>-<hash16>.json``
        naming are touched, so pointing ``cache_dir`` at a directory that
        also holds exported results cannot destroy them.  Finer-grained
        eviction (by experiment, version or age) lives in
        :func:`repro.api.cache.prune_cache`.
        """
        from repro.api.cache import clear_cache

        return clear_cache(self.cache_dir)

    # --- execution --------------------------------------------------------

    def run(
        self,
        name: str | Experiment,
        params: Mapping[str, Any] | None = None,
        use_cache: bool = True,
        **param_kwargs: Any,
    ) -> ResultSet:
        """Execute one experiment and return its :class:`ResultSet`.

        Parameters can be passed as a mapping, as keywords, or both
        (keywords win).  With a cache directory configured, a repeated
        invocation is served from disk (``meta["cache_hit"]`` is then True).
        """
        experiment = name if isinstance(name, Experiment) else get_experiment(name)
        resolved = experiment.resolve_params({**(params or {}), **param_kwargs})

        path = self._cache_path(experiment, resolved) if use_cache else None
        cached = self._cache_load(path)
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.cache_misses += 1

        start = time.perf_counter()
        records = experiment.run(**resolved)
        elapsed = time.perf_counter() - start

        result = ResultSet.from_records(
            records, meta=self._meta(experiment, resolved, elapsed)
        )
        self._cache_store(path, result)
        return result

    def sweep(
        self,
        name: str | Experiment,
        spec: SweepSpec,
        base_params: Mapping[str, Any] | None = None,
        use_cache: bool = True,
        on_result: Callable[[SweepPoint], None] | None = None,
        shard: "ShardPlan | None" = None,
    ) -> ResultSet:
        """Fan an experiment out over every point of a sweep.

        Each sweep point is one experiment invocation with the point's
        values overriding ``base_params``; its records are tagged with the
        swept parameter values (columns named after the axes) so the
        combined ResultSet can be grouped and filtered by sweep point.
        The combined ResultSet follows ``spec.points()`` order regardless of
        executor, so serial and parallel sweeps return identical ResultSets.

        ``on_result`` is called once per sweep point *as it completes*
        (completion order, which may differ from sweep order under the
        parallel executors) -- the hook the CLI uses to render progressive
        per-point progress.  If any point fails, the remaining points still
        execute and :class:`SweepError` is raised at the end; its ``partial``
        attribute holds the ResultSet of the completed points, which are also
        already cached, so a re-run pays only for the failures.

        ``shard`` restricts the run to one deterministic slice of the sweep
        (see :class:`repro.dist.shards.ShardPlan`); the partial ResultSet
        then records the slice under ``meta["shard"]`` and
        :func:`repro.dist.shards.merge_results` reassembles all slices into
        the full-sweep ResultSet.
        """
        experiment = name if isinstance(name, Experiment) else get_experiment(name)
        points = spec.points()
        start = time.perf_counter()
        completed: dict[int, SweepPoint] = {}
        for sweep_point in self.iter_sweep(
            experiment, spec, base_params=base_params, use_cache=use_cache, shard=shard
        ):
            completed[sweep_point.index] = sweep_point
            if on_result is not None:
                on_result(sweep_point)
        elapsed = time.perf_counter() - start
        # iter_sweep yields exactly the selected slice, so the slice (in
        # sweep order) is the sorted key set -- no second hashing pass.
        selected = sorted(completed)

        tagged: list[dict[str, Any]] = []
        failures: list[SweepPoint] = []
        for index in selected:
            sweep_point = completed[index]  # iter_sweep yields every selected point
            if not sweep_point.ok:
                failures.append(sweep_point)
                continue
            for record in sweep_point.result.to_records():
                tagged.append(_tag_record(record, sweep_point.point))

        meta = self._meta(experiment, dict(base_params or {}), elapsed)
        meta["sweep"] = {
            "mode": spec.mode,
            "axes": {name: list(values) for name, values in spec.axes.items()},
            "n_points": len(points),
        }
        if shard is not None:
            meta["shard"] = {
                "n_shards": shard.n_shards,
                "shard_index": shard.shard_index,
                "n_points": len(selected),
                "point_indices": selected,
            }
        result = ResultSet.from_records(tagged, meta=meta)
        if failures:
            raise SweepError(
                f"{len(failures)} of {len(selected)} sweep points failed; "
                f"first failure at point {failures[0].index} "
                f"({failures[0].point}): {failures[0].error}",
                partial=result,
                failures=failures,
            )
        return result

    def iter_sweep(
        self,
        name: str | Experiment,
        spec: SweepSpec,
        base_params: Mapping[str, Any] | None = None,
        use_cache: bool = True,
        shard: "ShardPlan | None" = None,
    ) -> Iterator[SweepPoint]:
        """Stream a sweep: yield one :class:`SweepPoint` per point as it lands.

        Cache hits are yielded first (in sweep order, they are free), then
        executed points in completion order -- under the thread and process
        executors a fast point is yielded while slower ones are still
        running.  A failed point is yielded with ``error`` set instead of
        aborting the generator, so consumers always see every point exactly
        once; ``SweepPoint.index`` maps it back to ``spec.points()`` order.
        With ``shard`` set, only the shard's slice of the sweep is streamed
        (indices still refer to the full ``spec.points()`` order).

        Unlike :meth:`sweep`, nothing is raised for failed points: streaming
        consumers decide themselves how to react.  Parameter errors (unknown
        axis names, un-coercible values) raise here, at the call site --
        every point is resolved before the stream is handed back, so the
        generator itself only ever yields.
        """
        experiment = name if isinstance(name, Experiment) else get_experiment(name)
        points = spec.points()
        selected = list(range(len(points))) if shard is None else shard.indices(points)
        # Resolve (and cache-key) only the selected slice: a 1-of-N shard of
        # a large sweep must not pay parameter resolution for all N slices.
        resolved_points = {
            index: experiment.resolve_params({**(base_params or {}), **points[index]})
            for index in selected
        }
        paths = {
            index: self._cache_path(experiment, resolved) if use_cache else None
            for index, resolved in resolved_points.items()
        }
        return self._iter_resolved(experiment, points, resolved_points, paths, selected)

    def _iter_resolved(
        self,
        experiment: Experiment,
        points: list[dict[str, Any]],
        resolved_points: dict[int, dict[str, Any]],
        paths: dict[int, str | None],
        selected: list[int],
    ) -> Iterator[SweepPoint]:
        """The generator body of :meth:`iter_sweep` (post parameter resolution)."""
        pending: list[int] = []
        for index in selected:
            path = paths[index]
            cached = self._cache_load(path)
            if cached is None:
                pending.append(index)
                continue
            self.cache_hits += 1
            yield SweepPoint(
                index=index,
                point=points[index],
                params=resolved_points[index],
                result=cached,
                cache_hit=True,
            )
        self.cache_misses += len(pending)

        for index, (records, error, elapsed) in self._execute_pending(
            experiment, resolved_points, pending
        ):
            if error is not None:
                yield SweepPoint(
                    index=index,
                    point=points[index],
                    params=resolved_points[index],
                    result=None,
                    error=error,
                )
                continue
            result = ResultSet.from_records(
                records, meta=self._meta(experiment, resolved_points[index], elapsed)
            )
            self._cache_store(paths[index], result)
            yield SweepPoint(
                index=index,
                point=points[index],
                params=resolved_points[index],
                result=result,
            )

    # --- helpers ----------------------------------------------------------

    def _chunks(self, pending: list[int]) -> list[list[int]]:
        """Split pending point indices into pool tasks.

        With ``chunk_size=None`` every point is its own task: a fast point's
        result streams back the moment it finishes instead of waiting for
        chunk-mates, which is the point-granular latency :meth:`iter_sweep`
        promises.  An explicit ``chunk_size`` restores batched submission
        for workloads whose per-point cost is dwarfed by dispatch overhead.
        """
        if self.chunk_size is None:
            return [[index] for index in pending]
        return [
            pending[i : i + self.chunk_size]
            for i in range(0, len(pending), self.chunk_size)
        ]

    def _execute_pending(
        self,
        experiment: Experiment,
        resolved_points: dict[int, dict[str, Any]],
        pending: list[int],
    ) -> Iterator[tuple[int, _Outcome]]:
        """Yield ``(point_index, outcome)`` for every uncached sweep point.

        Serial execution yields in sweep order; the pooled executors submit
        one future per point by default (see :meth:`_chunks`) and yield each
        future's points as it completes, which is what makes
        :meth:`iter_sweep` stream point-granularly under parallel execution.
        """
        if not pending:
            return
        if self.executor == "serial" or len(pending) == 1:
            # Execute through the instance itself so ad-hoc (unregistered)
            # Experiment objects behave exactly like in run().
            for index in pending:
                yield index, _run_outcomes(experiment.run, [resolved_points[index]])[0]
            return

        pool_kwargs: dict[str, Any] = {}
        if self.executor == "process":
            # Process workers rebuild the registry by name; an instance that
            # is not the registered one would silently execute the wrong
            # function (and poison the cache), so refuse early.
            ensure_registered()
            from repro.api.experiment import _REGISTRY

            if _REGISTRY.get(experiment.name) is not experiment:
                raise ValueError(
                    f"the process executor needs a registered experiment; "
                    f"{experiment.name!r} is not the registered instance "
                    "(use executor='thread'/'serial' for ad-hoc experiments)"
                )
            # Import the registry once per worker at startup instead of per
            # submitted task -- with per-point futures the task count equals
            # the point count, so per-task work must stay minimal.
            pool_kwargs["initializer"] = ensure_registered

        chunks = self._chunks(pending)
        pool_cls = ThreadPoolExecutor if self.executor == "thread" else ProcessPoolExecutor
        pool = pool_cls(max_workers=min(self.max_workers, len(chunks)), **pool_kwargs)
        try:
            if self.executor == "thread":
                # Threads share the interpreter: execute through the instance
                # (ad-hoc experiments included), no registry round-trip.
                def submit(points):
                    return pool.submit(_run_outcomes, experiment.run, points)

            else:
                def submit(points):
                    return pool.submit(_execute_chunk, experiment.name, points)

            future_to_chunk = {
                submit([resolved_points[i] for i in chunk]): chunk for chunk in chunks
            }
            for future in as_completed(future_to_chunk):
                for index, outcome in zip(future_to_chunk[future], future.result()):
                    yield index, outcome
        finally:
            # A streaming consumer may abandon the generator mid-sweep
            # (GeneratorExit lands here); cancelling the queued chunks keeps
            # the shutdown wait bounded to the chunks already in flight
            # instead of computing the rest of the sweep for nobody.
            pool.shutdown(wait=True, cancel_futures=True)

    def _meta(
        self,
        experiment: Experiment,
        params: Mapping[str, Any],
        elapsed: float | None,
    ) -> dict[str, Any]:
        meta: dict[str, Any] = {
            "experiment": experiment.name,
            "version": experiment.version,
            "params": dict(params),
            "executor": self.executor,
        }
        if elapsed is not None:
            meta["wall_time_s"] = elapsed
        return meta


def _tag_record(record: dict[str, Any], point: Mapping[str, Any]) -> dict[str, Any]:
    """Prepend the sweep-point values as columns of the record.

    A sweep axis whose name collides with an output column of the record is
    stored under a ``param_`` prefix instead, so experiment output is never
    silently overwritten.
    """
    tags = {}
    for name, value in point.items():
        tags[f"param_{name}" if name in record else name] = value
    return {**tags, **record}
