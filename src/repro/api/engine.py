"""Execution engine: serial / pooled experiment runs with on-disk memoisation.

The :class:`Engine` is the single entry point that turns a registered
:class:`~repro.api.experiment.Experiment` plus parameters into a
:class:`~repro.api.results.ResultSet`:

* ``run(name, **params)`` -- one experiment execution,
* ``sweep(name, spec)`` -- fan a :class:`~repro.api.sweep.SweepSpec` out over
  the experiment, serially or through a ``concurrent.futures`` thread/process
  pool with chunked task submission.

Caching is content-addressed: the key is a SHA-256 over (experiment name,
experiment version, canonicalised parameters), so identical invocations are
served from disk regardless of execution mode.  All cache I/O happens in the
coordinating process -- pool workers only compute -- which keeps the cache
free of write races.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Mapping

from repro.api.experiment import Experiment, ensure_registered, get_experiment
from repro.api.results import ResultSet
from repro.api.sweep import SweepSpec

EXECUTORS = ("serial", "thread", "process")


def cache_key(name: str, version: str, params: Mapping[str, Any]) -> str:
    """Content-addressed key of one experiment invocation."""
    payload = json.dumps(
        {"experiment": name, "version": version, "params": params},
        sort_keys=True,
        separators=(",", ":"),
        default=str,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _execute_point(name: str, params: dict[str, Any]) -> list[dict[str, Any]]:
    """Run one experiment invocation; importable so process pools can pickle it."""
    ensure_registered()
    return get_experiment(name).run(**params)


def _execute_chunk(
    name: str, points: list[dict[str, Any]]
) -> list[list[dict[str, Any]]]:
    """Run a chunk of sweep points in one pool task (amortises dispatch cost)."""
    return [_execute_point(name, point) for point in points]


class Engine:
    """Executes experiments and sweeps, with optional memoisation.

    Parameters
    ----------
    cache_dir:
        Directory for the on-disk result cache; ``None`` disables caching.
        Created on first write.
    executor:
        ``"serial"`` (default), ``"thread"`` or ``"process"`` -- how sweep
        points are fanned out.  Single ``run`` calls always execute inline.
    max_workers:
        Pool size for the parallel executors (default: ``os.cpu_count()``).
    chunk_size:
        Sweep points per pool task; ``None`` picks a size that gives each
        worker about four chunks, a standard latency/imbalance compromise.
    """

    def __init__(
        self,
        cache_dir: str | None = None,
        executor: str = "serial",
        max_workers: int | None = None,
        chunk_size: int | None = None,
    ) -> None:
        if executor not in EXECUTORS:
            raise ValueError(f"unknown executor {executor!r}; use one of {EXECUTORS}")
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be positive")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        self.cache_dir = cache_dir
        self.executor = executor
        self.max_workers = max_workers or os.cpu_count() or 1
        self.chunk_size = chunk_size
        self.cache_hits = 0
        self.cache_misses = 0

    # --- cache ------------------------------------------------------------

    def _cache_path(self, experiment: Experiment, params: Mapping[str, Any]) -> str | None:
        if self.cache_dir is None:
            return None
        key = cache_key(experiment.name, experiment.version, params)
        return os.path.join(self.cache_dir, f"{experiment.name}-{key[:16]}.json")

    def _cache_load(self, path: str | None) -> ResultSet | None:
        if path is None or not os.path.exists(path):
            return None
        try:
            result = ResultSet.from_json(path)
        except (ValueError, KeyError, json.JSONDecodeError):
            return None  # corrupt entry: recompute and overwrite
        result.meta["cache_hit"] = True
        return result

    def _cache_store(self, path: str | None, result: ResultSet) -> None:
        if path is None:
            return
        os.makedirs(self.cache_dir, exist_ok=True)
        # Atomic write so a crashed run never leaves a truncated entry.
        handle = tempfile.NamedTemporaryFile(
            "w", dir=self.cache_dir, suffix=".tmp", delete=False
        )
        try:
            handle.write(result.to_json())
            handle.close()
            os.replace(handle.name, path)
        except BaseException:
            handle.close()
            if os.path.exists(handle.name):
                os.unlink(handle.name)
            raise

    def clear_cache(self) -> int:
        """Delete all cache entries; returns the number of files removed.

        Only files matching the engine's own ``<experiment>-<hash16>.json``
        naming are touched, so pointing ``cache_dir`` at a directory that
        also holds exported results cannot destroy them.
        """
        if self.cache_dir is None or not os.path.isdir(self.cache_dir):
            return 0
        removed = 0
        for entry in os.listdir(self.cache_dir):
            if re.fullmatch(r".+-[0-9a-f]{16}\.json", entry):
                os.unlink(os.path.join(self.cache_dir, entry))
                removed += 1
        return removed

    # --- execution --------------------------------------------------------

    def run(
        self,
        name: str | Experiment,
        params: Mapping[str, Any] | None = None,
        use_cache: bool = True,
        **param_kwargs: Any,
    ) -> ResultSet:
        """Execute one experiment and return its :class:`ResultSet`.

        Parameters can be passed as a mapping, as keywords, or both
        (keywords win).  With a cache directory configured, a repeated
        invocation is served from disk (``meta["cache_hit"]`` is then True).
        """
        experiment = name if isinstance(name, Experiment) else get_experiment(name)
        resolved = experiment.resolve_params({**(params or {}), **param_kwargs})

        path = self._cache_path(experiment, resolved) if use_cache else None
        cached = self._cache_load(path)
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.cache_misses += 1

        start = time.perf_counter()
        records = experiment.run(**resolved)
        elapsed = time.perf_counter() - start

        result = ResultSet.from_records(
            records, meta=self._meta(experiment, resolved, elapsed)
        )
        self._cache_store(path, result)
        return result

    def sweep(
        self,
        name: str | Experiment,
        spec: SweepSpec,
        base_params: Mapping[str, Any] | None = None,
        use_cache: bool = True,
    ) -> ResultSet:
        """Fan an experiment out over every point of a sweep.

        Each sweep point is one experiment invocation with the point's
        values overriding ``base_params``; its records are tagged with the
        swept parameter values (columns named after the axes) so the
        combined ResultSet can be grouped and filtered by sweep point.
        Execution order follows ``spec.points()`` regardless of executor, so
        serial and parallel sweeps return identical ResultSets.
        """
        experiment = name if isinstance(name, Experiment) else get_experiment(name)
        points = spec.points()
        resolved_points = [
            experiment.resolve_params({**(base_params or {}), **point})
            for point in points
        ]

        paths: list[str | None] = [
            self._cache_path(experiment, resolved) if use_cache else None
            for resolved in resolved_points
        ]
        outputs: list[list[dict[str, Any]] | None] = []
        for path in paths:
            cached = self._cache_load(path)
            if cached is not None:
                self.cache_hits += 1
                outputs.append(cached.to_records())
            else:
                outputs.append(None)

        pending = [i for i, records in enumerate(outputs) if records is None]
        self.cache_misses += len(pending)
        start = time.perf_counter()
        for index, records in self._execute_pending(experiment, resolved_points, pending):
            outputs[index] = records
            self._cache_store(
                paths[index],
                ResultSet.from_records(
                    records, meta=self._meta(experiment, resolved_points[index], None)
                ),
            )
        elapsed = time.perf_counter() - start

        tagged: list[dict[str, Any]] = []
        for point, records in zip(points, outputs):
            for record in records or []:
                tagged.append(_tag_record(record, point))

        meta = self._meta(experiment, dict(base_params or {}), elapsed)
        meta["sweep"] = {
            "mode": spec.mode,
            "axes": {name: list(values) for name, values in spec.axes.items()},
            "n_points": len(points),
        }
        return ResultSet.from_records(tagged, meta=meta)

    # --- helpers ----------------------------------------------------------

    def _execute_pending(
        self,
        experiment: Experiment,
        resolved_points: list[dict[str, Any]],
        pending: list[int],
    ):
        """Yield ``(point_index, records)`` for every uncached sweep point."""
        if not pending:
            return
        if self.executor == "serial" or len(pending) == 1:
            # Execute through the instance itself so ad-hoc (unregistered)
            # Experiment objects behave exactly like in run().
            for index in pending:
                yield index, experiment.run(**resolved_points[index])
            return

        if self.executor == "process":
            # Process workers rebuild the registry by name; an instance that
            # is not the registered one would silently execute the wrong
            # function (and poison the cache), so refuse early.
            ensure_registered()
            from repro.api.experiment import _REGISTRY

            if _REGISTRY.get(experiment.name) is not experiment:
                raise ValueError(
                    f"the process executor needs a registered experiment; "
                    f"{experiment.name!r} is not the registered instance "
                    "(use executor='thread'/'serial' for ad-hoc experiments)"
                )

        chunk_size = self.chunk_size or max(1, len(pending) // (self.max_workers * 4))
        chunks = [pending[i : i + chunk_size] for i in range(0, len(pending), chunk_size)]
        pool_cls = ThreadPoolExecutor if self.executor == "thread" else ProcessPoolExecutor
        with pool_cls(max_workers=min(self.max_workers, len(chunks))) as pool:
            if self.executor == "thread":
                # Threads share the interpreter: execute through the instance
                # (ad-hoc experiments included), no registry round-trip.
                def submit(points):
                    return pool.submit(
                        lambda pts: [experiment.run(**p) for p in pts], points
                    )

            else:
                def submit(points):
                    return pool.submit(_execute_chunk, experiment.name, points)

            futures = [
                submit([resolved_points[i] for i in chunk]) for chunk in chunks
            ]
            for chunk, future in zip(chunks, futures):
                for index, records in zip(chunk, future.result()):
                    yield index, records

    def _meta(
        self,
        experiment: Experiment,
        params: Mapping[str, Any],
        elapsed: float | None,
    ) -> dict[str, Any]:
        meta: dict[str, Any] = {
            "experiment": experiment.name,
            "version": experiment.version,
            "params": dict(params),
            "executor": self.executor,
        }
        if elapsed is not None:
            meta["wall_time_s"] = elapsed
        return meta


def _tag_record(record: dict[str, Any], point: Mapping[str, Any]) -> dict[str, Any]:
    """Prepend the sweep-point values as columns of the record.

    A sweep axis whose name collides with an output column of the record is
    stored under a ``param_`` prefix instead, so experiment output is never
    silently overwritten.
    """
    tags = {}
    for name, value in point.items():
        tags[f"param_{name}" if name in record else name] = value
    return {**tags, **record}
