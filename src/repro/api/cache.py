"""Inspection and eviction of the engine's on-disk result cache.

:class:`~repro.api.engine.Engine` memoises experiment results as
``<experiment>-<key16>.json`` files (the key is the content-addressed
SHA-256 of experiment name, version and resolved parameters).  This module
is the management surface over that store:

* :func:`scan_cache` -- enumerate entries with their provenance metadata,
* :func:`cache_stats` -- per-experiment aggregates (entries, bytes, ages),
* :func:`clear_cache` -- delete every entry,
* :func:`prune_cache` -- delete entries matching an experiment name, an
  experiment version and/or a minimum age (useful after bumping an
  experiment's ``version``, which orphans the old entries forever),
* :func:`gc_store` -- garbage-collect the *bookkeeping residue* of
  distributed runs: failure tombstones (``<entry>.failed``) and the expired
  or orphaned claim leases (``<entry>.lease``) crashed workers leave behind
  (``python -m repro cache prune --gc`` on the shell).

Every function accepts either a directory path (the classic spelling) or
any :class:`~repro.dist.store.ResultStore` instance -- the maintenance
logic goes through the store seam (``entries`` / ``remove_entries`` /
``collect_garbage``), so a :class:`~repro.dist.sqlstore.SqliteStore` is
inspected and pruned with exactly the same calls, just against indexed
rows instead of files.  For directories, only files matching the engine's
own naming pattern are ever touched, so a cache directory that also holds
exported results is safe.  Destructive operations (``clear`` / ``prune``)
run under the store's maintenance lock, so evicting entries from a
*shared* store that live workers are publishing into cannot interleave with
a publish or with claim-lease bookkeeping; each removed entry's stale
``.lease`` file (if any) is disposed of along with it.  The same operations
are exposed on the shell as ``python -m repro cache {stats,clear,prune}``.

Quick start::

    import tempfile

    from repro.api import Engine
    from repro.api.cache import cache_stats, prune_cache

    cache_dir = tempfile.mkdtemp()
    Engine(cache_dir=cache_dir).run("table_density")

    stats = cache_stats(cache_dir)
    print(stats.n_entries, stats.experiments())

    removed = prune_cache(cache_dir, experiment="table_density")
    print(len(removed))
"""

from __future__ import annotations

import json
import math
import os
import re
import time
from dataclasses import dataclass
from typing import Any

# The engine's cache file naming: "<experiment>-<first 16 hex of key>.json".
_ENTRY_PATTERN = re.compile(r"(?P<experiment>.+)-(?P<key>[0-9a-f]{16})\.json$")

# Accepted --older-than suffixes, in seconds.
_AGE_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0, "w": 604800.0}


@dataclass(frozen=True)
class CacheEntry:
    """One memoised result file with its provenance.

    ``version`` and ``params`` come from the entry's embedded metadata and
    are ``None`` for unreadable (corrupt) entries -- those still count as
    entries so that ``clear`` / ``prune`` can dispose of them.
    """

    path: str
    experiment: str
    key: str
    version: str | None
    params: dict[str, Any] | None
    size_bytes: int
    mtime: float

    def age_seconds(self, now: float | None = None) -> float:
        """Seconds since the entry was written (non-negative)."""
        return max(0.0, (time.time() if now is None else now) - self.mtime)


@dataclass(frozen=True)
class CacheStats:
    """Aggregate view over a cache directory's entries."""

    cache_dir: str
    entries: tuple[CacheEntry, ...]

    @property
    def n_entries(self) -> int:
        return len(self.entries)

    @property
    def total_bytes(self) -> int:
        return sum(entry.size_bytes for entry in self.entries)

    def experiments(self) -> list[str]:
        """Distinct experiment names with cached entries, sorted."""
        return sorted({entry.experiment for entry in self.entries})

    def by_experiment(self) -> dict[str, list[CacheEntry]]:
        """Entries grouped by experiment name (sorted by name)."""
        groups: dict[str, list[CacheEntry]] = {}
        for entry in sorted(self.entries, key=lambda e: (e.experiment, e.path)):
            groups.setdefault(entry.experiment, []).append(entry)
        return groups


def _as_store(target: Any) -> Any:
    """Coerce a maintenance target to a store; ``None`` means nothing to do.

    A directory path becomes a :class:`~repro.dist.store.SharedStore` (its
    maintenance lock makes destructive operations safe against live
    workers); a missing directory or ``None`` stays ``None``; store
    instances pass through unchanged.
    """
    if target is None or isinstance(target, str):
        if target is None or not os.path.isdir(target):
            return None
        from repro.dist.store import SharedStore

        return SharedStore(target)
    return target


def scan_cache(cache_dir: str | Any | None, read_meta: bool = True) -> list[CacheEntry]:
    """Enumerate the cache entries of a directory or store, sorted by path.

    A missing or ``None`` directory yields an empty list (a cache that was
    never written is just empty).  Non-entry files are ignored; entries whose
    JSON cannot be read still appear, with ``version``/``params`` of ``None``.
    ``read_meta=False`` skips parsing the entry payloads entirely (they can
    be large) for callers that only need the file inventory.  A
    :class:`~repro.dist.store.ResultStore` target is scanned through its own
    :meth:`~repro.dist.store.ResultStore.entries` (for a sqlite store that
    is an indexed metadata query -- payload blobs stay untouched).
    """
    if cache_dir is not None and not isinstance(cache_dir, str):
        return cache_dir.entries(read_meta=read_meta)
    if cache_dir is None or not os.path.isdir(cache_dir):
        return []
    entries: list[CacheEntry] = []
    for filename in sorted(os.listdir(cache_dir)):
        match = _ENTRY_PATTERN.fullmatch(filename)
        if match is None:
            continue
        path = os.path.join(cache_dir, filename)
        try:
            stat = os.stat(path)
        except OSError:
            continue  # deleted concurrently
        version: str | None = None
        params: dict[str, Any] | None = None
        if read_meta:
            try:
                with open(path) as handle:
                    meta = json.load(handle).get("meta", {})
                version = meta.get("version")
                params = meta.get("params")
            except (OSError, json.JSONDecodeError, AttributeError):
                pass  # corrupt entry: keep it listed so prune/clear can remove it
        entries.append(
            CacheEntry(
                path=path,
                experiment=match.group("experiment"),
                key=match.group("key"),
                version=version,
                params=params,
                size_bytes=stat.st_size,
                mtime=stat.st_mtime,
            )
        )
    return entries


def cache_stats(cache_dir: str | Any | None) -> CacheStats:
    """Aggregate statistics over a cache directory or store."""
    if cache_dir is None or isinstance(cache_dir, str):
        directory = cache_dir or ""
    else:
        directory = cache_dir.directory
    return CacheStats(cache_dir=directory, entries=tuple(scan_cache(cache_dir)))


def clear_cache(cache_dir: str | Any | None) -> int:
    """Delete every cache entry; returns the number of entries removed.

    Holds the store's maintenance lock for the scan + removal, so concurrent
    writers (distributed workers publishing into a shared store) are never
    interleaved with the eviction.
    """
    store = _as_store(cache_dir)
    if store is None:
        return 0
    with store.lock():
        return store.remove_entries(
            [entry.path for entry in store.entries(read_meta=False)]
        )


def prune_cache(
    cache_dir: str | Any | None,
    experiment: str | None = None,
    version: str | None = None,
    older_than: float | None = None,
    now: float | None = None,
    dry_run: bool = False,
) -> list[CacheEntry]:
    """Delete the cache entries matching *all* given criteria.

    Parameters
    ----------
    experiment:
        Only entries of this experiment name.
    version:
        Only entries whose stored experiment version equals this (corrupt
        entries with unknown version match any ``version`` filter, so they
        are always eligible for disposal).
    older_than:
        Only entries at least this many seconds old (see :func:`parse_age`
        for the CLI's ``30s`` / ``12h`` / ``7d`` spelling).
    now:
        Reference timestamp for the age comparison (default: current time).
    dry_run:
        Report what would be removed without deleting anything.

    Returns the matched entries (removed unless ``dry_run``).  At least one
    criterion is required -- an unconditional prune is spelled
    :func:`clear_cache`.  Unless ``dry_run``, the scan and the removal
    happen under the store lock, so pruning a live shared store never
    interleaves with a worker's publish.
    """
    if experiment is None and version is None and older_than is None:
        raise ValueError(
            "prune_cache needs at least one of experiment/version/older_than; "
            "use clear_cache() to remove everything"
        )
    if older_than is not None and (not math.isfinite(older_than) or older_than < 0):
        # NaN must not slip through: every `age < NaN` comparison is False,
        # which would silently match (and delete) every entry.
        raise ValueError("older_than must be finite and non-negative")

    def match() -> list[CacheEntry]:
        matched = []
        # Only the version filter consults the entry metadata; experiment
        # comes from the filename and age from mtime, so skip the
        # (potentially large) payload parse unless it is actually needed.
        for entry in scan_cache(cache_dir, read_meta=version is not None):
            if experiment is not None and entry.experiment != experiment:
                continue
            if (
                version is not None
                and entry.version is not None
                and str(entry.version) != str(version)
            ):
                continue
            if older_than is not None and entry.age_seconds(now) < older_than:
                continue
            matched.append(entry)
        return matched

    store = _as_store(cache_dir)
    if dry_run or store is None:
        return match()
    with store.lock():
        matched = match()
        store.remove_entries([entry.path for entry in matched])
    return matched


def gc_store(
    cache_dir: str | Any | None,
    now: float | None = None,
    dry_run: bool = False,
) -> list[str]:
    """Garbage-collect crashed-worker residue from a (shared) store.

    Removes, and returns the identifiers of:

    * **failure tombstones** (``<entry>.failed``): a worker's record that a
      point raised.  Collecting one makes the failure invisible to future
      inspection, so run GC once the failures have been looked at (a later
      *successful* publish of the point removes its tombstone by itself);
    * **orphaned leases** (``<entry>.lease``): claim leases that are expired
      (their worker died mid-point -- a live worker renews via heartbeat),
      corrupt, or attached to an already-published entry.  Live, unexpired
      leases of pending entries are never touched, so GC is safe against
      running workers.

    Entries themselves are never removed -- that is :func:`prune_cache` /
    :func:`clear_cache`.  The work is delegated to the store's
    :meth:`~repro.dist.store.ResultStore.collect_garbage` -- a locked
    directory sweep for file stores, a pair of conditional ``DELETE``
    statements for a sqlite store.
    """
    store = _as_store(cache_dir)
    if store is None:
        return []
    return store.collect_garbage(now=now, dry_run=dry_run)


def parse_age(text: str) -> float:
    """Parse a human age spec (``"45s"``, ``"30m"``, ``"12h"``, ``"7d"``,
    ``"2w"``, or a plain number of seconds) into seconds."""
    text = text.strip().lower()
    if not text:
        raise ValueError("empty age; use e.g. 30s, 45m, 12h, 7d or plain seconds")
    unit = _AGE_UNITS.get(text[-1])
    magnitude = text[:-1] if unit is not None else text
    try:
        seconds = float(magnitude) * (unit if unit is not None else 1.0)
    except ValueError:
        raise ValueError(
            f"malformed age {text!r}; use e.g. 30s, 45m, 12h, 7d or plain seconds"
        ) from None
    # Reject NaN/inf explicitly: a NaN age makes every `age < older_than`
    # comparison False and would turn prune into an unintended full clear.
    if not math.isfinite(seconds) or seconds < 0:
        raise ValueError(f"age must be finite and non-negative, got {text!r}")
    return seconds
