"""Unified experiment engine: registry, sweeps, columnar results, execution.

This subpackage is the public API for reproducing the paper's experiments
programmatically::

    import tempfile

    from repro.api import Engine, SweepSpec

    engine = Engine(cache_dir=tempfile.mkdtemp())
    table = engine.run("table_density")             # one experiment, memoised
    print(table.column("density_per_nm2"))

    spec = SweepSpec.grid(length_um=[1.0, 10.0])    # declarative fan-out
    for point in engine.iter_sweep("table_density", spec):
        print(point.index, point.cache_hit, len(point.result))

``Engine.sweep`` gathers a whole sweep into one tagged
:class:`~repro.api.results.ResultSet`; ``Engine.iter_sweep`` streams one
:class:`~repro.api.engine.SweepPoint` per sweep point as it completes, and a
failed point keeps its completed siblings (``SweepError.partial``).  The
on-disk cache is managed through :mod:`repro.api.cache`.

The same surface is exposed on the shell as ``python -m repro``
(``list`` / ``describe`` / ``run`` / ``sweep`` / ``worker`` / ``merge`` /
``cache`` / ``perf-report`` / ``docs``).  Distributed execution -- shared
result stores, lease-claiming workers, deterministic sharding -- lives in
:mod:`repro.dist`.
Experiment definitions live in :mod:`repro.analysis.experiments` (paper
figures and tables) and :mod:`repro.analysis.studies` (extension studies);
the registry imports them on first use, so no explicit setup call is
needed.  The generated experiment catalog is ``docs/EXPERIMENTS.md``.
"""

from repro.api.experiment import (
    DuplicateExperimentError,
    Experiment,
    ExperimentError,
    ExperimentNotFoundError,
    ParameterError,
    ParamSpec,
    ensure_registered,
    get_experiment,
    list_experiments,
    normalize_records,
    register_experiment,
    unregister_experiment,
)
from repro.api.results import ResultSet, content_hash
from repro.api.sweep import SweepSpec
from repro.api.engine import Engine, SweepError, SweepPoint, cache_key
from repro.api.cache import (
    CacheEntry,
    CacheStats,
    cache_stats,
    clear_cache,
    prune_cache,
    scan_cache,
)

__all__ = [
    "CacheEntry",
    "CacheStats",
    "DuplicateExperimentError",
    "Engine",
    "Experiment",
    "ExperimentError",
    "ExperimentNotFoundError",
    "ParamSpec",
    "ParameterError",
    "ResultSet",
    "SweepError",
    "SweepPoint",
    "SweepSpec",
    "cache_key",
    "cache_stats",
    "clear_cache",
    "content_hash",
    "prune_cache",
    "scan_cache",
    "ensure_registered",
    "get_experiment",
    "list_experiments",
    "normalize_records",
    "register_experiment",
    "unregister_experiment",
]
