"""Unified experiment engine: registry, sweeps, columnar results, execution.

This subpackage is the public API for reproducing the paper's experiments
programmatically::

    from repro.api import Engine, SweepSpec

    engine = Engine(cache_dir=".repro-cache", executor="process")
    fig9 = engine.run("fig9")                       # one figure, memoised
    sweep = engine.sweep(                           # declarative fan-out
        "fig12",
        SweepSpec.grid(contact_resistance=[100e3, 250e3, 500e3]),
    )
    for resistance, group in sweep.group_by("contact_resistance").items():
        print(resistance, group.filter(length_um=500.0).column("delay_ratio"))

The same surface is exposed on the shell as ``python -m repro``
(``list`` / ``describe`` / ``run`` / ``sweep``).  Experiment definitions
live in :mod:`repro.analysis.experiments`; the registry imports them on
first use, so no explicit setup call is needed.
"""

from repro.api.experiment import (
    DuplicateExperimentError,
    Experiment,
    ExperimentError,
    ExperimentNotFoundError,
    ParameterError,
    ParamSpec,
    ensure_registered,
    get_experiment,
    list_experiments,
    normalize_records,
    register_experiment,
    unregister_experiment,
)
from repro.api.results import ResultSet, content_hash
from repro.api.sweep import SweepSpec
from repro.api.engine import Engine, cache_key

__all__ = [
    "DuplicateExperimentError",
    "Engine",
    "Experiment",
    "ExperimentError",
    "ExperimentNotFoundError",
    "ParamSpec",
    "ParameterError",
    "ResultSet",
    "SweepSpec",
    "cache_key",
    "content_hash",
    "ensure_registered",
    "get_experiment",
    "list_experiments",
    "normalize_records",
    "register_experiment",
    "unregister_experiment",
]
