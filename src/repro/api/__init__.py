"""Unified experiment engine: registry, sweeps, columnar results, execution.

This subpackage is the public API for reproducing the paper's experiments
programmatically::

    import tempfile

    from repro.api import Engine, SweepSpec

    engine = Engine(cache_dir=tempfile.mkdtemp())
    table = engine.run("table_density")             # one experiment, memoised
    print(table.column("density_per_nm2"))

    spec = SweepSpec.grid(length_um=[1.0, 10.0])    # declarative fan-out
    for point in engine.iter_sweep("table_density", spec):
        print(point.index, point.cache_hit, len(point.result))

``Engine.sweep`` gathers a whole sweep into one tagged
:class:`~repro.api.results.ResultSet`; ``Engine.iter_sweep`` streams one
:class:`~repro.api.engine.SweepPoint` per sweep point as it completes, and a
failed point keeps its completed siblings (``SweepError.partial``).  The
on-disk cache is managed through :mod:`repro.api.cache`.

Experiments compose into pipelines: a ``consumes=`` declaration names the
upstream experiments whose ResultSets are injected into the call, with
typed ``outputs=`` schemas on the artifacts; :mod:`repro.api.study`
registers named composite studies and ``Engine.run_study`` executes the
resolved DAG stage by stage with content-hash-chained caching.

The same surface is exposed on the shell as ``python -m repro``
(``list`` / ``describe`` / ``run`` / ``sweep`` / ``worker`` / ``study`` /
``merge`` / ``cache`` / ``perf-report`` / ``docs``).  Distributed
execution -- shared result stores, lease-claiming workers, deterministic
sharding -- lives in :mod:`repro.dist`.
Experiment definitions live in :mod:`repro.analysis.experiments` (paper
figures and tables) and :mod:`repro.analysis.studies` (extension studies);
the registry imports them on first use, so no explicit setup call is
needed.  The generated experiment catalog is ``docs/EXPERIMENTS.md``.
"""

from repro.api.experiment import (
    Consumes,
    DuplicateExperimentError,
    Experiment,
    ExperimentError,
    ExperimentNotFoundError,
    OutputSchemaError,
    OutputSpec,
    ParameterError,
    ParamSpec,
    PipelineError,
    ensure_registered,
    get_experiment,
    list_experiments,
    normalize_records,
    register_experiment,
    unregister_experiment,
    validate_records,
)
from repro.api.results import MissingColumnsError, ResultSet, content_hash
from repro.api.sweep import SweepSpec
from repro.api.engine import Engine, SweepError, SweepPoint, cache_key
from repro.api.study import (
    DuplicateStudyError,
    Pipeline,
    Stage,
    Study,
    StudyNotFoundError,
    get_study,
    list_studies,
    register_study,
    resolve_pipeline,
    unregister_study,
)
from repro.api.cache import (
    CacheEntry,
    CacheStats,
    cache_stats,
    clear_cache,
    gc_store,
    prune_cache,
    scan_cache,
)

__all__ = [
    "CacheEntry",
    "CacheStats",
    "Consumes",
    "DuplicateExperimentError",
    "DuplicateStudyError",
    "Engine",
    "Experiment",
    "ExperimentError",
    "ExperimentNotFoundError",
    "MissingColumnsError",
    "OutputSchemaError",
    "OutputSpec",
    "ParamSpec",
    "ParameterError",
    "Pipeline",
    "PipelineError",
    "ResultSet",
    "Stage",
    "Study",
    "StudyNotFoundError",
    "SweepError",
    "SweepPoint",
    "SweepSpec",
    "cache_key",
    "cache_stats",
    "clear_cache",
    "content_hash",
    "gc_store",
    "prune_cache",
    "scan_cache",
    "ensure_registered",
    "get_experiment",
    "get_study",
    "list_experiments",
    "list_studies",
    "normalize_records",
    "register_experiment",
    "register_study",
    "resolve_pipeline",
    "unregister_experiment",
    "unregister_study",
    "validate_records",
]
