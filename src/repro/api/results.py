"""Columnar result container for experiment outputs.

Every experiment driver in this reproduction used to return a raw
``list[dict]``; :class:`ResultSet` replaces that with a columnar container
that keeps the record view (``to_records``) for compatibility while adding
the operations a result pipeline needs: filtering, grouping, column access,
CSV/JSON round-trips and provenance metadata (the parameters that produced
the data, a content hash and the wall time of the run).

The container is deliberately dependency-free: columns are plain Python
lists, so any JSON-serialisable cell value works, and numpy scalars are
normalised to native floats/ints on ingestion so that serialisation and
hashing are stable.
"""

from __future__ import annotations

import csv
import hashlib
import io
import json
import math
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence


class MissingColumnsError(KeyError):
    """A typed artifact lacks columns its consumer requires.

    Subclasses ``KeyError`` (a column lookup failed) but renders its message
    verbatim -- ``KeyError.__str__`` repr-quotes it, which would nest quotes
    inside every downstream error report and tombstone.
    """

    __str__ = Exception.__str__


def _normalize_cell(value: Any) -> Any:
    """Coerce numpy scalars/arrays and tuples into plain Python values."""
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        try:
            return value.item()
        except (AttributeError, ValueError):
            pass
    if hasattr(value, "tolist") and not isinstance(value, (str, bytes)):
        return value.tolist()
    if isinstance(value, tuple):
        return list(value)
    return value


def _canonical_json(payload: Any) -> str:
    """Deterministic JSON used for hashing (sorted keys, repr'd floats)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)


def content_hash(records: Sequence[Mapping[str, Any]]) -> str:
    """SHA-256 content hash of a record list (order-sensitive, git-free)."""
    digest = hashlib.sha256()
    for record in records:
        digest.update(_canonical_json(dict(record)).encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


class ResultSet:
    """Columnar container of experiment records with provenance metadata.

    Parameters
    ----------
    columns:
        Mapping of column name to list of cell values; all columns must have
        the same length.
    meta:
        Provenance metadata (experiment name, parameters, wall time, ...).
        Stored as a plain dict and serialised alongside the data.
    """

    def __init__(
        self,
        columns: Mapping[str, Sequence[Any]] | None = None,
        meta: Mapping[str, Any] | None = None,
    ) -> None:
        self._columns: dict[str, list[Any]] = {
            str(name): [_normalize_cell(v) for v in values]
            for name, values in (columns or {}).items()
        }
        lengths = {len(values) for values in self._columns.values()}
        if len(lengths) > 1:
            raise ValueError(f"ragged columns: lengths {sorted(lengths)}")
        self.meta: dict[str, Any] = dict(meta or {})

    # --- construction -----------------------------------------------------

    @classmethod
    def from_records(
        cls,
        records: Iterable[Mapping[str, Any]],
        meta: Mapping[str, Any] | None = None,
    ) -> "ResultSet":
        """Build a ResultSet from a list of dicts (column union of all keys).

        Records missing a key get ``None`` in that column; column order is
        first-seen order across the record stream.
        """
        records = [dict(r) for r in records]
        columns: dict[str, list[Any]] = {}
        for index, record in enumerate(records):
            for key, value in record.items():
                if key not in columns:
                    columns[key] = [None] * index
                columns[key].append(value)
            for key in columns:
                if len(columns[key]) == index:
                    columns[key].append(None)
        return cls(columns, meta=meta)

    # --- basic container protocol ----------------------------------------

    @property
    def columns(self) -> list[str]:
        """Column names in their stored order."""
        return list(self._columns)

    def column(self, name: str) -> list[Any]:
        """One column as a list (copy)."""
        try:
            return list(self._columns[name])
        except KeyError:
            raise KeyError(
                f"no column {name!r}; available: {self.columns}"
            ) from None

    def __len__(self) -> int:
        if not self._columns:
            return 0
        return len(next(iter(self._columns.values())))

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.to_records())

    def __getitem__(self, index: int) -> dict[str, Any]:
        return {name: values[index] for name, values in self._columns.items()}

    def __eq__(self, other: object) -> bool:
        """Data equality (columns, order and cells); NaN cells compare equal.

        Metadata is deliberately excluded: two runs of the same experiment
        with different wall times hold the same data.
        """
        if not isinstance(other, ResultSet):
            return NotImplemented
        if list(self._columns) != list(other._columns):
            return False
        return all(
            len(mine) == len(theirs)
            and all(_cell_equal(a, b) for a, b in zip(mine, theirs))
            for mine, theirs in zip(self._columns.values(), other._columns.values())
        )

    def __repr__(self) -> str:
        name = self.meta.get("experiment", "?")
        return f"ResultSet({name!r}, {len(self)} records x {len(self._columns)} columns)"

    # --- record view ------------------------------------------------------

    def to_records(self) -> list[dict[str, Any]]:
        """The row-wise ``list[dict]`` view (what legacy drivers returned)."""
        return [self[i] for i in range(len(self))]

    # --- relational operations -------------------------------------------

    def filter(
        self,
        predicate: Callable[[dict[str, Any]], bool] | None = None,
        **equals: Any,
    ) -> "ResultSet":
        """Records matching a predicate and/or column equality constraints.

        ``rs.filter(kind="Cu")`` keeps rows whose ``kind`` column equals
        ``"Cu"``; a callable predicate receives the full record dict.
        """
        for key in equals:
            if key not in self._columns:
                raise KeyError(f"no column {key!r}; available: {self.columns}")

        def keep(record: dict[str, Any]) -> bool:
            if any(record[k] != v for k, v in equals.items()):
                return False
            return predicate(record) if predicate is not None else True

        return ResultSet.from_records(
            [r for r in self.to_records() if keep(r)], meta=self.meta
        )

    def group_by(self, *keys: str) -> dict[Any, "ResultSet"]:
        """Partition into sub-ResultSets keyed by one or more column values.

        With a single key the dict is keyed by the cell value, with several
        keys by the tuple of values.  Insertion order follows first
        occurrence.
        """
        if not keys:
            raise ValueError("group_by needs at least one column name")
        for key in keys:
            if key not in self._columns:
                raise KeyError(f"no column {key!r}; available: {self.columns}")
        groups: dict[Any, list[dict[str, Any]]] = {}
        for record in self.to_records():
            group_key = record[keys[0]] if len(keys) == 1 else tuple(record[k] for k in keys)
            groups.setdefault(group_key, []).append(record)
        return {
            key: ResultSet.from_records(records, meta=self.meta)
            for key, records in groups.items()
        }

    def select(self, *names: str) -> "ResultSet":
        """Projection onto a subset of columns (kept in the given order)."""
        missing = [n for n in names if n not in self._columns]
        if missing:
            raise KeyError(f"no columns {missing}; available: {self.columns}")
        return ResultSet({n: self._columns[n] for n in names}, meta=self.meta)

    def sorted_by(self, *keys: str, reverse: bool = False) -> "ResultSet":
        """Copy sorted by one or more columns."""
        records = sorted(
            self.to_records(), key=lambda r: tuple(r[k] for k in keys), reverse=reverse
        )
        return ResultSet.from_records(records, meta=self.meta)

    def best(self, column: str, mode: str = "min") -> dict[str, Any]:
        """The record with the extremal value of ``column``.

        ``mode`` is ``"min"`` or ``"max"``.  Records whose cell is ``None``
        or NaN are skipped (a failed point must not win an optimisation);
        ties go to the earliest record, so the answer is deterministic for a
        fixed record order.  Raises :class:`KeyError` for an unknown column
        and :class:`ValueError` when the set is empty or no record has a
        comparable value.
        """
        if mode not in ("min", "max"):
            raise ValueError(f"unknown mode {mode!r}; use 'min' or 'max'")
        if column not in self._columns:
            raise KeyError(f"no column {column!r}; available: {self.columns}")
        best_index: int | None = None
        best_value: Any = None
        for index, value in enumerate(self._columns[column]):
            if value is None or (isinstance(value, float) and math.isnan(value)):
                continue
            if (
                best_index is None
                or (mode == "min" and value < best_value)
                or (mode == "max" and value > best_value)
            ):
                best_index, best_value = index, value
        if best_index is None:
            raise ValueError(
                f"no record has a comparable {column!r} value "
                f"({len(self)} records)"
            )
        return self[best_index]

    def top_k(self, column: str, k: int, mode: str = "min") -> "ResultSet":
        """The ``k`` most extreme records by ``column`` as a new ResultSet.

        Stable: equal values keep their original relative order.  ``None``
        and NaN cells sort last regardless of mode, so incomparable records
        only appear when ``k`` exceeds the number of comparable ones.
        """
        if mode not in ("min", "max"):
            raise ValueError(f"unknown mode {mode!r}; use 'min' or 'max'")
        if column not in self._columns:
            raise KeyError(f"no column {column!r}; available: {self.columns}")
        if k < 1:
            raise ValueError(f"top_k needs k >= 1, got {k}")

        def comparable(record: dict[str, Any]) -> bool:
            value = record[column]
            return value is not None and not (
                isinstance(value, float) and math.isnan(value)
            )

        records = self.to_records()
        ranked = sorted(
            (r for r in records if comparable(r)),
            key=lambda r: r[column],
            reverse=(mode == "max"),
        )
        ranked.extend(r for r in records if not comparable(r))
        return ResultSet.from_records(ranked[:k], meta=self.meta)

    def unique(self, name: str) -> list[Any]:
        """Distinct values of one column in first-seen order."""
        seen: dict[Any, None] = {}
        for value in self.column(name):
            seen.setdefault(value, None)
        return list(seen)

    def require_columns(self, *names: str) -> "ResultSet":
        """Assert the artifact carries the given columns; returns ``self``.

        The consumer-side half of the typed-artifact contract: a pipeline
        stage that reads specific columns of an injected upstream ResultSet
        (see ``Consumes`` in :mod:`repro.api.experiment`) calls this first,
        so an upstream schema drift fails with *which columns are missing
        from which experiment's output* instead of a bare ``KeyError`` deep
        in the stage's arithmetic.
        """
        missing = [name for name in names if name not in self._columns]
        if missing:
            source = self.meta.get("experiment", "upstream result")
            raise MissingColumnsError(
                f"{source!r} artifact is missing required columns {missing}; "
                f"available: {self.columns}"
            )
        return self

    # --- provenance -------------------------------------------------------

    @property
    def content_hash(self) -> str:
        """SHA-256 hash of the data (records in order); independent of meta."""
        return content_hash(self.to_records())

    # --- serialisation ----------------------------------------------------

    def to_json(self, path: str | None = None, indent: int | None = None) -> str:
        """Serialise data + metadata to JSON (and optionally write a file)."""
        payload = {
            "meta": self.meta,
            "content_hash": self.content_hash,
            "columns": self._columns,
        }
        text = json.dumps(payload, indent=indent, default=str)
        if path is not None:
            with open(path, "w") as handle:
                handle.write(text)
        return text

    @classmethod
    def from_json(cls, text_or_path: str) -> "ResultSet":
        """Inverse of :meth:`to_json`; accepts a JSON string or a file path."""
        text = text_or_path
        if not text_or_path.lstrip().startswith("{"):
            with open(text_or_path) as handle:
                text = handle.read()
        payload = json.loads(text)
        result = cls(payload["columns"], meta=payload.get("meta"))
        stored = payload.get("content_hash")
        if stored is not None and stored != result.content_hash:
            raise ValueError(
                "content hash mismatch: stored data was modified or written "
                "by an incompatible version"
            )
        return result

    def to_csv(self, path: str | None = None) -> str:
        """Render as CSV text (and optionally write a file). Meta is dropped."""
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=self.columns)
        writer.writeheader()
        for record in self.to_records():
            writer.writerow(record)
        text = buffer.getvalue()
        if path is not None:
            with open(path, "w", newline="") as handle:
                handle.write(text)
        return text

    @classmethod
    def from_csv(cls, text_or_path: str) -> "ResultSet":
        """Parse CSV text or a CSV file, coercing numeric-looking cells.

        CSV is untyped, so cells are coerced back with ``int`` then ``float``
        then left as strings; empty cells become ``None``.  Lossless for the
        numeric tables the experiments produce.
        """
        text = text_or_path
        if "\n" not in text_or_path and "," not in text_or_path:
            with open(text_or_path, newline="") as handle:
                text = handle.read()
        reader = csv.DictReader(io.StringIO(text))
        records = [
            {key: _coerce_csv_cell(value) for key, value in row.items()}
            for row in reader
        ]
        return cls.from_records(records)


def _cell_equal(a: Any, b: Any) -> bool:
    if isinstance(a, float) and isinstance(b, float) and a != a and b != b:
        return True  # NaN cells count as equal data
    return a == b


def _coerce_csv_cell(value: str | None) -> Any:
    if value is None or value == "":
        return None
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        pass
    if value == "True":
        return True
    if value == "False":
        return False
    return value
