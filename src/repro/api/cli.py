"""``python -m repro`` -- reproduce any figure or table from the shell.

Subcommands
-----------

``list``
    Enumerate the registered experiments (name, tags, description).
``describe NAME``
    Show an experiment's parameters, kinds and defaults.
``run NAME [-p key=value ...]``
    Execute one experiment and print its records as an aligned text table;
    ``--csv`` / ``--json`` write the ResultSet to files.
``sweep NAME (--grid | --zip) key=v1,v2 ...``
    Expand a declarative sweep and fan it out, optionally in parallel
    (``--executor thread|process --workers N``).  Per-point progress is
    streamed to stderr as results land; failed points keep the completed
    ones (partial results are printed and exported, exit code 1).
    ``--shards N --shard-index i`` runs one deterministic slice of the
    sweep (stable param-hash partition), for coordination-free splitting
    across machines; ``merge`` reassembles the exported slices.  ``--seed
    S`` sets the experiment's declared ``seed`` parameter.
``campaign run NAME --grid ... --objective COL [--mode min|max]``
    Closed-loop adaptive campaign: a seeded strategy (``--strategy
    random|lhs|refine|surrogate``) proposes batches from the grid's
    candidate pool, the engine executes them (cached, shardable with
    ``--workers N --store ...``), and the loop stops on ``--budget``,
    ``--target`` or ``--patience``.  ``--checkpoint PATH`` makes the
    campaign resumable mid-round; ``--report PATH`` exports the report
    (best point, trajectory, points-vs-grid savings).  See
    docs/CAMPAIGNS.md.
``worker NAME (--grid | --zip) ... --store DIR``
    Attach to a shared result store and claim the sweep's pending points
    one by one (lease-based, ttl-bounded) -- run the same command in N
    terminals or on N machines sharing the directory and each point is
    executed exactly once.  See docs/DISTRIBUTED.md.
``worker --watch QUEUE_DIR [--store DIR] [--drain]``
    Daemon mode: serve a spec queue instead of one fixed sweep -- claim
    submitted jobs as they arrive (exactly once across N daemons), execute
    them through the same claim/execute/publish loop, record per-job
    status/progress back into the queue, and keep serving until SIGTERM
    (the in-flight job completes and publishes) or, with ``--drain``, until
    the queue is empty.  See docs/SERVICE.md.
``merge PART.json ...``
    Reassemble partial sweep exports (shard or worker runs) into the full
    sweep ResultSet, bit-identical to a serial run.
``study {list,describe,run}``
    Composite studies: registered experiment pipelines (``consumes=``
    dependency DAGs) with per-stage parameters and a default sweep.
    ``run`` executes the whole DAG stage by stage -- upstream results are
    injected and cached with chained content-hash keys, so re-runs only pay
    for the stages a parameter change actually invalidates.  ``-p`` accepts
    ``stage.key=value`` to override an upstream stage's parameter
    (unqualified keys target the final stage); ``--shards N --shard-index
    i`` runs one slice of the study's sweep, mergeable with ``merge``.
``serve QUEUE_DIR [--host H] [--port P]``
    HTTP front end over a spec queue (submit/status/fetch/list/health
    endpoints, JSON in and out); daemons watching the same directory do the
    actual work.  See docs/SERVICE.md for the endpoint contract.
``submit NAME (--grid | --zip) ... [--url URL] [--wait]``
    Submit a sweep (or, with ``--study``, a study) to a running service and
    print the job id; ``--wait`` polls until the job settles.
``status [JOB_ID] [--url URL]``
    One job's status, or -- without an id -- the service health line plus a
    table of every job.
``fetch JOB_ID [--url URL]``
    Download a completed job's merged ResultSet (bit-identical to a serial
    run) and print/export it like ``run`` does.
``query [--store SPEC] [--where EXPR ...]``
    Cross-sweep catalog: filter cached results across *all* experiments by
    parameter predicates (``--where "n_segments>50"``), experiment name and
    age; sort and limit; ``--export``/``--csv`` merge the matching payloads
    into one parameter-tagged ResultSet.  Against a sqlite store the query
    touches metadata columns only.  See docs/QUERY.md.
``migrate SRC DEST``
    Copy a result store into another backend -- typically an existing cache
    directory into ``sqlite:///catalog.db`` -- preserving entry identity,
    timestamps and failure tombstones.
``cache {stats,clear,prune}``
    Inspect or evict the on-disk memoisation cache (prune by
    ``--experiment``, ``--version`` and/or ``--older-than 7d``); eviction
    takes the store lock, so it is safe against live workers.  ``prune
    --gc`` additionally garbage-collects failure tombstones and the
    expired/orphaned claim leases crashed workers leave behind.  All cache
    subcommands take ``--store`` (directory or ``sqlite:///path.db``) as an
    alternative to ``--cache-dir``.
``perf-report``
    Render the committed perf trajectory (``benchmarks/perf/BENCH_*.json``)
    with per-case speedup deltas; ``--check`` fails on regressions;
    ``--plot out.svg`` writes a speedup-trajectory chart (skipped
    gracefully when matplotlib is not installed).
``trace {summary,tree,critical-path} TRACE.jsonl``
    Inspect a span trace recorded with ``--trace PATH`` (available on
    ``run``/``sweep``/``worker``/``study run``/``serve``/``submit``):
    aggregate wall/CPU time per span name, render the span tree, or walk
    the longest chain.  See docs/OBSERVABILITY.md.
``docs``
    Print the generated experiment catalog; ``--write``/``--check`` keep
    ``docs/EXPERIMENTS.md`` in sync with the registry.

Global flags: ``--log-level LEVEL`` (or ``-v``/``-vv``) configures root
logging with timestamps -- daemon and worker activity logs through the
standard :mod:`logging` tree (``repro.*`` loggers).

Examples::

    python -m repro list
    python -m repro describe fig9
    python -m repro run fig9 -p mwcnt_diameters_nm=10,22 --csv fig9.csv
    python -m repro sweep fig12 --grid contact_resistance=100e3,250e3 \\
        --executor process --workers 4
    python -m repro sweep fig12 --grid contact_resistance=100e3,250e3 \\
        --shards 4 --shard-index 0 --json part0.json
    python -m repro campaign run growth_window \\
        --grid "temperatures_c=300;350;400;450;500;550;600" \\
        --objective quality --mode max --batch 4 --budget 12 --seed 7 \\
        --checkpoint campaign.json --report report.json
    python -m repro worker fig12 --grid contact_resistance=100e3,250e3 \\
        --store /shared/fig12-store
    python -m repro worker --watch /shared/queue --drain
    python -m repro serve /shared/queue --port 8765
    python -m repro submit fig12 --grid contact_resistance=100e3,250e3 --wait
    python -m repro status
    python -m repro fetch j-0123abcd4567 --json fig12.json
    python -m repro merge part0.json part1.json --json merged.json
    python -m repro study list
    python -m repro study describe variability_to_delay
    python -m repro study run growth_to_wafer -p growth_window.duration_s=500
    python -m repro study run growth_to_wafer --shards 2 --shard-index 0 \\
        --store /shared/study-store --json part0.json
    python -m repro sweep fig12 --grid contact_resistance=100e3,250e3 \\
        --store sqlite:///sweeps.db
    python -m repro migrate .repro-cache sqlite:///catalog.db
    python -m repro query --store sqlite:///catalog.db \\
        --where "contact_resistance>=250e3" --sort timestamp --desc
    python -m repro cache stats --cache-dir .repro-cache
    python -m repro cache prune --experiment fig12 --older-than 7d
    python -m repro cache prune --gc
    python -m repro perf-report --check --plot trajectory.svg
    python -m repro docs --check docs/EXPERIMENTS.md
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Sequence

from repro import __version__
from repro.api.engine import EXECUTORS, Engine, SweepError, SweepPoint
from repro.api.experiment import (
    ExperimentError,
    get_experiment,
    list_experiments,
)
from repro.api.results import ResultSet
from repro.api.sweep import SweepSpec
from repro.service.client import ServiceError

DEFAULT_CACHE_DIR = ".repro-cache"


def _parse_assignment(text: str) -> tuple[str, str]:
    if "=" not in text:
        raise argparse.ArgumentTypeError(
            f"expected key=value, got {text!r}"
        )
    key, value = text.split("=", 1)
    return key.strip(), value.strip()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the paper's figures and tables from the shell.",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    parser.add_argument(
        "--log-level", default=None, metavar="LEVEL",
        choices=["debug", "info", "warning", "error"],
        help="configure root logging at this level (timestamped, stderr)",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="shorthand for --log-level info (-vv: debug)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="enumerate registered experiments")
    list_parser.add_argument("--tag", default=None, help="only experiments with this tag")

    describe = subparsers.add_parser("describe", help="show an experiment's parameters")
    describe.add_argument("name", help="experiment name (see `list`)")

    def add_execution_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--cache-dir", default=None, help="on-disk memoisation cache directory")
        sub.add_argument(
            "--store", default=None, metavar="SPEC",
            help="memoise through a result store instead of --cache-dir: a "
            "lock-safe shared directory or sqlite:///path.db",
        )
        sub.add_argument("--no-cache", action="store_true", help="bypass the cache")
        sub.add_argument("--csv", default=None, metavar="PATH", help="write records as CSV")
        sub.add_argument("--json", default=None, metavar="PATH", help="write the ResultSet as JSON")
        sub.add_argument("--limit", type=int, default=40, help="table rows to print (0: all)")
        add_trace_option(sub)

    def add_trace_option(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--trace", default=None, metavar="PATH", dest="trace_path",
            help="record spans as JSON lines into PATH (inspect with "
            "`python -m repro trace summary PATH`)",
        )

    run = subparsers.add_parser("run", help="execute one experiment")
    run.add_argument("name", help="experiment name (see `list`)")
    run.add_argument(
        "-p", "--param", action="append", default=[], type=_parse_assignment,
        metavar="KEY=VALUE", help="override one parameter (repeatable)",
    )
    add_execution_options(run)

    def add_sweep_axes(sub: argparse.ArgumentParser, required: bool = True) -> None:
        mode = sub.add_mutually_exclusive_group(required=required)
        mode.add_argument(
            "--grid", nargs="+", type=_parse_assignment, metavar="KEY=V1,V2",
            help="Cartesian-product sweep axes",
        )
        mode.add_argument(
            "--zip", nargs="+", type=_parse_assignment, metavar="KEY=V1,V2",
            dest="zip_axes", help="lock-step sweep axes (equal lengths)",
        )
        sub.add_argument(
            "-p", "--param", action="append", default=[], type=_parse_assignment,
            metavar="KEY=VALUE", help="fixed base parameter (repeatable)",
        )

    def add_shard_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--shards", type=int, default=None, metavar="N",
            help="statically partition the sweep into N param-hash shards",
        )
        sub.add_argument(
            "--shard-index", type=int, default=None, metavar="I",
            help="which shard (0..N-1) this invocation executes",
        )

    sweep = subparsers.add_parser("sweep", help="fan an experiment out over a sweep")
    sweep.add_argument("name", help="experiment name (see `list`)")
    add_sweep_axes(sweep)
    sweep.add_argument("--executor", choices=EXECUTORS, default="serial")
    sweep.add_argument("--workers", type=int, default=None, help="pool size for parallel executors")
    sweep.add_argument(
        "--profile", action="store_true",
        help="record per-point wall/solve/dispatch timings into each point's "
        "meta (and a sweep-level aggregate), queryable via `repro query`",
    )
    sweep.add_argument(
        "--no-progress", action="store_true",
        help="suppress the per-point progress lines on stderr",
    )
    sweep.add_argument(
        "--seed", type=int, default=None, metavar="S",
        help="set the experiment's 'seed' parameter (for experiments that "
        "declare one) without spelling -p seed=S",
    )
    add_shard_options(sweep)
    add_execution_options(sweep)

    campaign = subparsers.add_parser(
        "campaign",
        help="closed-loop adaptive sweep campaigns (see docs/CAMPAIGNS.md)",
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)
    campaign_run = campaign_sub.add_parser(
        "run", help="drive a strategy over a candidate pool until a stop rule"
    )
    campaign_run.add_argument("name", help="experiment name (see `list`)")
    add_sweep_axes(campaign_run)
    campaign_run.add_argument(
        "--objective", required=True, metavar="COLUMN",
        help="output column the campaign extremises",
    )
    campaign_run.add_argument(
        "--mode", choices=["min", "max"], default="min",
        help="optimisation direction (default: min)",
    )
    campaign_run.add_argument(
        "--strategy", choices=["random", "lhs", "refine", "surrogate"],
        default="surrogate", help="proposal strategy (default: surrogate)",
    )
    campaign_run.add_argument(
        "--batch", type=int, default=8, metavar="N",
        help="points proposed and executed per round (default: 8)",
    )
    campaign_run.add_argument(
        "--budget", type=int, default=None, metavar="M",
        help="hard cap on visited points (default: the whole pool)",
    )
    campaign_run.add_argument(
        "--seed", type=int, default=0, metavar="S",
        help="strategy rng seed; same seed => same proposal sequence",
    )
    campaign_run.add_argument(
        "--target", type=float, default=None, metavar="VALUE",
        help="stop once the objective reaches this value",
    )
    campaign_run.add_argument(
        "--patience", type=int, default=None, metavar="ROUNDS",
        help="stop after this many rounds without improvement",
    )
    campaign_run.add_argument(
        "--tolerance", type=float, default=0.0, metavar="DELTA",
        help="minimum objective change that counts as improvement",
    )
    campaign_run.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="resumable campaign state file; an existing checkpoint resumes "
        "the campaign exactly (rng state, visited points, pending batch)",
    )
    campaign_run.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="partition each batch across N cooperating workers "
        "(needs --store)",
    )
    campaign_run.add_argument(
        "--report", default=None, metavar="PATH", dest="report_path",
        help="write the campaign report (best point, trajectory, savings) "
        "as JSON",
    )
    campaign_run.add_argument(
        "--no-progress", action="store_true",
        help="suppress the per-round progress lines on stderr",
    )
    add_execution_options(campaign_run)

    worker = subparsers.add_parser(
        "worker", help="claim and execute a sweep's pending points from a shared store"
    )
    worker.add_argument(
        "name", nargs="?", default=None,
        help="experiment name (see `list`); omitted in --watch mode",
    )
    add_sweep_axes(worker, required=False)
    worker.add_argument(
        "--store", default=None, metavar="SPEC",
        help="shared result store (same for every cooperating worker): a "
        "directory or sqlite:///path.db; required without --watch, defaults "
        "to QUEUE_DIR/store with it",
    )
    worker.add_argument(
        "--watch", default=None, metavar="QUEUE_DIR",
        help="daemon mode: serve this spec queue instead of one fixed sweep "
        "(jobs submitted via `python -m repro submit` or the HTTP API)",
    )
    worker.add_argument(
        "--drain", action="store_true",
        help="with --watch: exit once the queue has nothing claimable "
        "instead of waiting for new jobs",
    )
    worker.add_argument(
        "--max-jobs", type=int, default=None, metavar="N",
        help="with --watch: exit after executing N jobs",
    )
    worker.add_argument(
        "--worker-id", default=None,
        help="lease identity (default: <hostname>-<pid>)",
    )
    worker.add_argument(
        "--lease-ttl", default="300s", metavar="AGE",
        help="claim lease duration, e.g. 60s, 10m; renewed automatically "
        "while a point runs, so it only bounds how long a crashed worker's "
        "point stays blocked",
    )
    worker.add_argument(
        "--poll", type=float, default=0.2, metavar="SECONDS",
        help="sleep between passes while other workers hold all remaining leases",
    )
    worker.add_argument(
        "--no-wait", action="store_true",
        help="exit when nothing is claimable instead of waiting for other workers",
    )
    worker.add_argument(
        "--no-progress", action="store_true",
        help="suppress the per-point progress lines on stderr",
    )
    add_shard_options(worker)
    add_trace_option(worker)

    serve = subparsers.add_parser(
        "serve", help="HTTP front end over a spec queue (see docs/SERVICE.md)"
    )
    serve.add_argument("queue", metavar="QUEUE_DIR", help="spec-queue directory")
    serve.add_argument("--host", default=None, help="bind address (default: 127.0.0.1)")
    serve.add_argument(
        "--port", type=int, default=None, help="bind port (default: 8765; 0: ephemeral)"
    )
    serve.add_argument(
        "--log-requests", action="store_true",
        help="log one stderr line per handled HTTP request",
    )
    add_trace_option(serve)

    def add_service_url(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--url", default=None, metavar="URL",
            help="service base URL (default: http://127.0.0.1:8765)",
        )

    submit = subparsers.add_parser(
        "submit", help="submit a sweep or study job to a running service"
    )
    submit.add_argument("name", help="experiment name (or study name with --study)")
    submit.add_argument(
        "--study", action="store_true",
        help="NAME is a registered study; -p takes [stage.]key=value overrides",
    )
    add_sweep_axes(submit, required=False)
    add_service_url(submit)
    submit.add_argument(
        "--wait", action="store_true",
        help="poll until the job settles instead of returning after submit",
    )
    submit.add_argument(
        "--timeout", type=float, default=300.0, metavar="SECONDS",
        help="give up --wait polling after this long (default: 300)",
    )
    add_trace_option(submit)

    status = subparsers.add_parser(
        "status", help="one job's status, or service health plus all jobs"
    )
    status.add_argument(
        "job_id", nargs="?", default=None,
        help="job id (omit for the health line and the full job table)",
    )
    add_service_url(status)

    fetch = subparsers.add_parser(
        "fetch", help="download a completed job's merged ResultSet"
    )
    fetch.add_argument("job_id", help="job id (see `submit` / `status`)")
    add_service_url(fetch)
    fetch.add_argument("--csv", default=None, metavar="PATH", help="write records as CSV")
    fetch.add_argument("--json", default=None, metavar="PATH", help="write the ResultSet as JSON")
    fetch.add_argument("--limit", type=int, default=40, help="table rows to print (0: all)")

    study = subparsers.add_parser(
        "study", help="list, inspect and run composite study pipelines"
    )
    study_sub = study.add_subparsers(dest="study_command", required=True)

    study_list = study_sub.add_parser("list", help="enumerate registered studies")
    study_list.add_argument("--tag", default=None, help="only studies with this tag")

    study_describe = study_sub.add_parser(
        "describe", help="show a study's pipeline, stages and sweep"
    )
    study_describe.add_argument("name", help="study name (see `study list`)")

    study_run = study_sub.add_parser(
        "run", help="execute a study's whole pipeline (optionally sharded)"
    )
    study_run.add_argument("name", help="study name (see `study list`)")
    study_run.add_argument(
        "-p", "--param", action="append", default=[], type=_parse_assignment,
        metavar="[STAGE.]KEY=VALUE",
        help="override a stage parameter; unqualified keys target the final stage",
    )
    study_mode = study_run.add_mutually_exclusive_group()
    study_mode.add_argument(
        "--grid", nargs="+", type=_parse_assignment, metavar="KEY=V1,V2",
        help="override the study's sweep with a Cartesian-product sweep",
    )
    study_mode.add_argument(
        "--zip", nargs="+", type=_parse_assignment, metavar="KEY=V1,V2",
        dest="zip_axes", help="override the study's sweep with a lock-step sweep",
    )
    study_run.add_argument("--executor", choices=EXECUTORS, default="serial")
    study_run.add_argument(
        "--workers", type=int, default=None, help="pool size for parallel executors"
    )
    study_run.add_argument(
        "--no-progress", action="store_true",
        help="suppress the per-point progress lines on stderr",
    )
    add_shard_options(study_run)
    add_execution_options(study_run)

    merge = subparsers.add_parser(
        "merge", help="reassemble partial sweep exports into the full ResultSet"
    )
    merge.add_argument(
        "paths", nargs="+", metavar="PART.json",
        help="partial ResultSet JSON exports (shard or worker runs)",
    )
    merge.add_argument(
        "--allow-missing", action="store_true",
        help="merge even when some sweep points have no records yet",
    )
    merge.add_argument("--csv", default=None, metavar="PATH", help="write records as CSV")
    merge.add_argument("--json", default=None, metavar="PATH", help="write the ResultSet as JSON")
    merge.add_argument("--limit", type=int, default=40, help="table rows to print (0: all)")

    query = subparsers.add_parser(
        "query", help="cross-sweep catalog: filter/sort cached results by metadata"
    )
    query.add_argument(
        "--store", default=DEFAULT_CACHE_DIR, metavar="SPEC",
        help="result store to query: a cache directory or sqlite:///path.db "
        f"(default: {DEFAULT_CACHE_DIR})",
    )
    query.add_argument(
        "--experiment", default=None, help="only entries of this experiment"
    )
    query.add_argument(
        "--where", action="append", default=[], metavar="EXPR",
        help="parameter predicate, e.g. \"n_segments>50\" or \"kind==Cu\" "
        "(repeatable; all must match)",
    )
    query.add_argument(
        "--newer-than", default=None, metavar="AGE",
        help="only entries at most this old (e.g. 45s, 12h, 7d)",
    )
    query.add_argument(
        "--older-than", default=None, metavar="AGE",
        help="only entries at least this old",
    )
    query.add_argument(
        "--sort", default="timestamp",
        choices=["timestamp", "experiment", "size", "version"],
        help="sort key (default: timestamp)",
    )
    query.add_argument(
        "--desc", action="store_true", help="sort descending (newest/biggest first)"
    )
    query.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="keep at most N entries after sorting",
    )
    query.add_argument(
        "--export", default=None, metavar="PATH",
        help="load the matching payloads and write the merged ResultSet as JSON",
    )
    query.add_argument(
        "--csv", default=None, metavar="PATH",
        help="load the matching payloads and write the merged records as CSV",
    )

    migrate = subparsers.add_parser(
        "migrate", help="copy a result store into another backend (dir <-> sqlite)"
    )
    migrate.add_argument(
        "source", metavar="SRC", help="source store: a cache directory or sqlite:///path.db"
    )
    migrate.add_argument(
        "destination", metavar="DEST",
        help="destination store, typically sqlite:///path.db",
    )

    cache = subparsers.add_parser("cache", help="inspect or evict the result cache")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)

    def add_cache_dir(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--cache-dir", default=DEFAULT_CACHE_DIR,
            help=f"cache directory (default: {DEFAULT_CACHE_DIR})",
        )
        sub.add_argument(
            "--store", default=None, metavar="SPEC",
            help="operate on a result store instead: a shared directory or "
            "sqlite:///path.db",
        )

    cache_stats = cache_sub.add_parser("stats", help="per-experiment entry counts and sizes")
    add_cache_dir(cache_stats)

    cache_clear = cache_sub.add_parser("clear", help="delete every cache entry")
    add_cache_dir(cache_clear)

    cache_prune = cache_sub.add_parser(
        "prune", help="delete entries matching experiment/version/age filters"
    )
    add_cache_dir(cache_prune)
    cache_prune.add_argument("--experiment", default=None, help="only this experiment's entries")
    cache_prune.add_argument("--version", default=None, help="only entries of this experiment version")
    cache_prune.add_argument(
        "--older-than", default=None, metavar="AGE",
        help="only entries at least this old (e.g. 45s, 30m, 12h, 7d)",
    )
    cache_prune.add_argument(
        "--gc", action="store_true",
        help="also collect failure tombstones and expired/orphaned claim leases",
    )
    cache_prune.add_argument(
        "--dry-run", action="store_true", help="report matches without deleting"
    )

    perf = subparsers.add_parser(
        "perf-report", help="render the committed perf trajectory (BENCH_*.json)"
    )
    perf.add_argument(
        "--dir", default=None, metavar="PATH", dest="perf_dir",
        help="trajectory directory (default: benchmarks/perf)",
    )
    perf.add_argument("--case", default=None, help="only this benchmark case")
    perf.add_argument(
        "--threshold", type=float, default=None, metavar="FRACTION",
        help="relative speedup drop flagged as regression (default: 0.15)",
    )
    perf.add_argument(
        "--check", action="store_true",
        help="exit 1 when the trajectory contains regressions (CI gate)",
    )
    perf.add_argument(
        "--plot", default=None, metavar="PATH",
        help="write a speedup-trajectory chart (SVG/PNG by extension; "
        "skipped gracefully when matplotlib is not installed)",
    )

    trace = subparsers.add_parser(
        "trace", help="inspect a span trace recorded with --trace PATH"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_summary = trace_sub.add_parser(
        "summary", help="aggregate wall/CPU time per span name"
    )
    trace_tree = trace_sub.add_parser(
        "tree", help="render the span tree(s), parent over children"
    )
    trace_tree.add_argument(
        "--max-children", type=int, default=20, metavar="N",
        help="siblings to show per parent before eliding (default: 20)",
    )
    trace_path = trace_sub.add_parser(
        "critical-path", help="walk the longest wall-clock chain of a trace"
    )
    for sub in (trace_summary, trace_tree, trace_path):
        sub.add_argument(
            "path", metavar="TRACE.jsonl", help="span file written by --trace"
        )

    docs = subparsers.add_parser(
        "docs", help="generate the experiment catalog (docs/EXPERIMENTS.md)"
    )
    docs_mode = docs.add_mutually_exclusive_group()
    docs_mode.add_argument(
        "--write", default=None, metavar="PATH", help="write the catalog to PATH"
    )
    docs_mode.add_argument(
        "--check", default=None, metavar="PATH",
        help="fail (exit 1) when PATH differs from the current registry",
    )

    return parser


def _coerced_overrides(name: str, assignments: Sequence[tuple[str, str]]) -> dict[str, Any]:
    experiment = get_experiment(name)
    return {key: experiment.spec(key).coerce(value) for key, value in assignments}


def _coerced_axes(name: str, assignments: Sequence[tuple[str, str]]) -> dict[str, list[Any]]:
    """Parse sweep axes, coercing each comma-separated value per its ParamSpec.

    For scalar parameter kinds every comma-separated token is one sweep
    value; for tuple kinds each token would be ambiguous, so axis values for
    those are separated with ``;`` (e.g. ``lengths_um=1,10;1,100``).
    """
    experiment = get_experiment(name)
    axes: dict[str, list[Any]] = {}
    for key, value in assignments:
        spec = experiment.spec(key)
        if spec.kind in ("floats", "ints", "strs"):
            tokens = [t for t in value.split(";") if t != ""]
        else:
            tokens = [t for t in value.split(",") if t != ""]
        axes[key] = [spec.coerce(token) for token in tokens]
    return axes


def _print_result(result: ResultSet, args: argparse.Namespace) -> None:
    from repro.analysis.report import format_table

    records = result.to_records()
    shown = records if args.limit in (0, None) else records[: args.limit]
    title = (
        f"{result.meta.get('experiment', '?')}: {len(records)} records"
        + (f" (showing {len(shown)})" if len(shown) < len(records) else "")
        + (" [cache hit]" if result.meta.get("cache_hit") else "")
    )
    print(format_table(shown, title=title))
    wall = result.meta.get("wall_time_s")
    if wall is not None:
        print(f"wall time: {wall:.3f} s")
    print(f"content hash: {result.content_hash[:16]}")
    if args.csv:
        result.to_csv(args.csv)
        print(f"wrote {args.csv}")
    if args.json:
        result.to_json(args.json)
        print(f"wrote {args.json}")


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_table

    rows = [
        {
            "name": experiment.name,
            "tags": ",".join(experiment.tags),
            "params": len(experiment.params),
            "description": experiment.description,
        }
        for experiment in list_experiments(tag=args.tag)
    ]
    print(format_table(rows, title=f"{len(rows)} registered experiments"))
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_table

    experiment = get_experiment(args.name)
    print(f"{experiment.name} (version {experiment.version}): {experiment.description}")
    if experiment.tags:
        print(f"tags: {', '.join(experiment.tags)}")
    def default_text(spec):
        if spec.default is None:
            return "(required)"
        text = repr(spec.default)
        return text if len(text) <= 48 else text[:45] + "..."

    rows = [
        {
            "param": spec.name,
            "kind": spec.kind,
            "default": default_text(spec),
            "help": spec.help,
        }
        for spec in experiment.params
    ]
    print(format_table(rows, title=f"{len(rows)} parameters"))
    return 0


def _resolved_store(args: argparse.Namespace):
    """The --store of run/sweep/study as a ResultStore (None without one)."""
    if getattr(args, "store", None) is None:
        return None
    if getattr(args, "cache_dir", None) is not None:
        raise ValueError("pass either --store or --cache-dir, not both")
    from repro.dist import resolve_store

    return resolve_store(args.store)


def _cmd_run(args: argparse.Namespace) -> int:
    engine = Engine(cache_dir=args.cache_dir, store=_resolved_store(args))
    result = engine.run(
        args.name,
        params=_coerced_overrides(args.name, args.param),
        use_cache=not args.no_cache,
    )
    _print_result(result, args)
    return 0


def _progress_printer(total: int):
    """Per-point progress callback rendering one stderr line per result."""
    done = {"count": 0}

    def on_result(point: SweepPoint) -> None:
        done["count"] += 1
        values = " ".join(f"{key}={value}" for key, value in point.point.items())
        if not point.ok:
            status = f"FAILED: {point.error}"
        elif point.cache_hit:
            status = "cached"
        else:
            wall = point.result.meta.get("wall_time_s")
            status = "ok" if wall is None else f"ok ({wall:.3f} s)"
        print(f"  [{done['count']}/{total}] {values} ... {status}", file=sys.stderr)

    return on_result


def _parsed_spec(args: argparse.Namespace) -> SweepSpec:
    assignments = args.grid if args.grid is not None else args.zip_axes
    axes = _coerced_axes(args.name, assignments)
    return SweepSpec(mode="grid" if args.grid is not None else "zip", axes=axes)


def _shard_plan(args: argparse.Namespace):
    """Build the ShardPlan of --shards/--shard-index (or None)."""
    if args.shards is None and args.shard_index is None:
        return None
    if args.shards is None or args.shard_index is None:
        raise ValueError("--shards and --shard-index must be given together")
    from repro.dist import ShardPlan

    return ShardPlan(n_shards=args.shards, shard_index=args.shard_index)


def _seeded_base_params(args: argparse.Namespace, spec: SweepSpec) -> dict[str, Any]:
    """Base parameters of a sweep/campaign, with ``--seed`` folded in.

    ``--seed S`` sets the experiment's declared ``seed`` parameter, so a
    stochastic experiment reruns reproducibly without spelling ``-p
    seed=S``.  Rejects experiments without a seed parameter and conflicts
    with an explicit ``-p seed=`` or a swept seed axis.
    """
    base = _coerced_overrides(args.name, args.param)
    seed = getattr(args, "seed", None)
    if seed is None:
        return base
    experiment = get_experiment(args.name)
    if not any(spec_.name == "seed" for spec_ in experiment.params):
        raise ValueError(
            f"experiment {args.name!r} declares no 'seed' parameter; "
            "--seed needs one"
        )
    if "seed" in base:
        raise ValueError("pass either --seed or -p seed=..., not both")
    if "seed" in spec.axis_names:
        raise ValueError("'seed' is already a sweep axis; drop --seed")
    base["seed"] = experiment.spec("seed").coerce(seed)
    return base


def _cmd_sweep(args: argparse.Namespace) -> int:
    spec = _parsed_spec(args)
    shard = _shard_plan(args)
    n_points = len(spec) if shard is None else len(shard.indices(spec.points()))
    shard_note = (
        "" if shard is None else f" (shard {shard.shard_index}/{shard.n_shards})"
    )
    print(f"sweep: {spec.mode} over {spec.axis_names}, {n_points} points{shard_note}")
    with Engine(
        cache_dir=args.cache_dir,
        store=_resolved_store(args),
        executor=args.executor,
        max_workers=args.workers,
        profile=args.profile,
    ) as engine:
        try:
            result = engine.sweep(
                args.name,
                spec,
                base_params=_seeded_base_params(args, spec),
                use_cache=not args.no_cache,
                on_result=None if args.no_progress else _progress_printer(n_points),
                shard=shard,
            )
        except SweepError as error:
            # Completed points survive the failure: print and export them so
            # the work (also sitting in the cache) is not lost.
            print(f"error: {error}", file=sys.stderr)
            _print_result(error.partial, args)
            return 1
    _print_result(result, args)
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    """``campaign run``: drive an adaptive campaign over a candidate pool."""
    from repro.campaign import Campaign

    if args.no_cache:
        raise ValueError(
            "campaigns depend on the result cache (history assembly and "
            "replay); --no-cache is not supported"
        )
    spec = _parsed_spec(args)
    # A campaign without persistence would re-execute its whole history
    # every round, so default to the standard cache directory.
    cache_dir = args.cache_dir
    if cache_dir is None and args.store is None:
        cache_dir = DEFAULT_CACHE_DIR
    engine = Engine(cache_dir=cache_dir, store=_resolved_store(args))

    def on_round(n_visited: int, budget: int) -> None:
        if not args.no_progress:
            print(f"  [{n_visited}/{budget}] points visited", file=sys.stderr)

    campaign = Campaign(
        args.name,
        spec,
        args.objective,
        mode=args.mode,
        strategy=args.strategy,
        batch_size=args.batch,
        budget=args.budget,
        seed=args.seed,
        base_params=_coerced_overrides(args.name, args.param),
        target=args.target,
        patience=args.patience,
        tolerance=args.tolerance,
        checkpoint_path=args.checkpoint,
        workers=args.workers,
        engine=engine,
    )
    print(
        f"campaign: {args.strategy} over {spec.axis_names} "
        f"({len(spec)} candidates, budget {campaign.budget}, "
        f"batch {args.batch}, seed {args.seed})"
    )
    report = campaign.run(on_round=on_round)
    print(report.summary())
    if args.report_path:
        report.write_json(args.report_path)
        print(f"wrote {args.report_path}")
    if report.result is not None:
        _print_result(report.result, args)
    return 0


def _cmd_worker_watch(args: argparse.Namespace) -> int:
    """Daemon mode: serve a spec queue until stopped or drained."""
    import os
    import signal
    import threading

    from repro.api.cache import parse_age
    from repro.dist import resolve_store
    from repro.service import SpecQueue, serve_queue

    if args.name is not None or args.grid is not None or args.zip_axes is not None:
        raise ValueError(
            "worker --watch serves submitted jobs; NAME and --grid/--zip "
            "do not apply (submit sweeps with `python -m repro submit`)"
        )
    if args.param or args.shards is not None or args.shard_index is not None:
        raise ValueError("-p/--shards/--shard-index do not apply in --watch mode")
    queue = SpecQueue(args.watch)
    store_spec = args.store if args.store is not None else os.path.join(args.watch, "store")
    stop = threading.Event()
    installed: list[tuple[int, Any]] = []
    if threading.current_thread() is threading.main_thread():
        # SIGTERM/SIGINT request a *clean* stop: the in-flight job finishes
        # and publishes, then the serve loop exits between jobs.
        for signum in (signal.SIGTERM, signal.SIGINT):
            installed.append(
                (signum, signal.signal(signum, lambda *_: stop.set()))
            )
    try:
        report = serve_queue(
            queue,
            resolve_store(store_spec),
            worker_id=args.worker_id,
            lease_ttl=parse_age(args.lease_ttl),
            poll_interval=args.poll,
            drain=args.drain,
            max_jobs=args.max_jobs,
            stop=stop,
            # Events always flow through the repro.service.daemon logger;
            # the raw stderr echo is for runs without logging configured
            # (keeping it with --log-level would print every line twice).
            on_event=None
            if args.no_progress or args.log_level is not None or args.verbose
            else (lambda line: print(line, file=sys.stderr)),
        )
    finally:
        for signum, previous in installed:
            signal.signal(signum, previous)
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.api.cache import parse_age
    from repro.dist import default_worker_id, resolve_store, run_worker

    if args.watch is not None:
        return _cmd_worker_watch(args)
    if args.name is None or (args.grid is None and args.zip_axes is None):
        raise ValueError(
            "worker needs NAME and --grid/--zip sweep axes "
            "(or --watch QUEUE_DIR for daemon mode)"
        )
    if args.store is None:
        raise ValueError("worker --store is required (it is the shared result store)")
    if args.drain or args.max_jobs is not None:
        raise ValueError("--drain/--max-jobs only apply with --watch")
    spec = _parsed_spec(args)
    shard = _shard_plan(args)
    store = resolve_store(args.store)
    worker_id = args.worker_id or default_worker_id()
    n_points = len(spec) if shard is None else len(shard.indices(spec.points()))
    print(
        f"worker {worker_id}: {spec.mode} over {spec.axis_names}, "
        f"{n_points} points, store {store.directory}",
        file=sys.stderr,
    )
    report = run_worker(
        args.name,
        spec,
        store,
        base_params=_coerced_overrides(args.name, args.param),
        worker_id=worker_id,
        lease_ttl=parse_age(args.lease_ttl),
        shard=shard,
        on_result=None if args.no_progress else _progress_printer(n_points),
        wait=not args.no_wait,
        poll_interval=args.poll,
    )
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.service import DEFAULT_HOST, DEFAULT_PORT, make_server

    server = make_server(
        args.queue,
        host=args.host if args.host is not None else DEFAULT_HOST,
        port=args.port if args.port is not None else DEFAULT_PORT,
        quiet=not args.log_requests,
    )
    def raise_interrupt(signum: int, frame: Any) -> None:
        raise KeyboardInterrupt

    if threading.current_thread() is threading.main_thread():
        # SIGTERM stops the serve loop as cleanly as Ctrl+C does.
        signal.signal(signal.SIGTERM, raise_interrupt)
    print(
        f"serving queue {server.queue.directory} at {server.url} "
        "(submit work with `python -m repro submit`; Ctrl+C/SIGTERM stops)",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


def _service_client(args: argparse.Namespace):
    from repro.service import DEFAULT_HOST, DEFAULT_PORT, ServiceClient

    url = args.url if args.url is not None else f"http://{DEFAULT_HOST}:{DEFAULT_PORT}"
    return ServiceClient(url)


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.api.study import get_study

    client = _service_client(args)
    if args.study:
        study = get_study(args.name)
        spec = None
        if args.grid is not None or args.zip_axes is not None:
            assignments = args.grid if args.grid is not None else args.zip_axes
            spec = SweepSpec(
                mode="grid" if args.grid is not None else "zip",
                axes=_coerced_axes(study.target, assignments),
            )
        job_id = client.submit_study(
            args.name,
            sweep=spec,
            params=_coerced_stage_overrides(study, args.param),
        )
    else:
        if args.grid is None and args.zip_axes is None:
            raise ValueError(
                "submit needs --grid or --zip sweep axes (or --study NAME "
                "to submit a registered study)"
            )
        job_id = client.submit_sweep(
            args.name,
            _parsed_spec(args),
            params=_coerced_overrides(args.name, args.param),
        )
    print(job_id)
    if args.wait:
        sys.stdout.flush()
        status = client.wait(job_id, timeout=args.timeout)
        hash_note = str(status.get("content_hash") or "")[:16]
        print(
            f"{job_id}: {status['state']} ({status.get('n_records')} records, "
            f"content hash {hash_note})",
            file=sys.stderr,
        )
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_table
    from repro.service import JOB_FAILED

    client = _service_client(args)
    if args.job_id is not None:
        status = client.status(args.job_id)
        for key, value in status.items():
            print(f"{key}: {value}")
        return 1 if status["state"] == JOB_FAILED else 0

    health = client.health()
    registry = health.get("registry", {})
    queue = health.get("queue", {})
    depth = ", ".join(
        f"{queue.get(state, 0)} {state}"
        for state in ("queued", "running", "done", "failed")
    )
    print(
        f"service {client.base_url}: {health.get('status')} "
        f"(version {health.get('version')}, "
        f"{registry.get('experiments')} experiments / "
        f"{registry.get('studies')} studies registered)"
    )
    print(f"queue {queue.get('directory')}: {depth}")
    jobs = client.list_jobs()
    rows = [
        {
            "job_id": job.get("job_id"),
            "kind": job.get("kind"),
            "name": job.get("name"),
            "state": job.get("state"),
            "worker": job.get("worker_id", ""),
            "detail": job.get("error") or job.get("progress") or "",
        }
        for job in jobs
    ]
    print(format_table(rows, title=f"{len(rows)} jobs"))
    return 0


def _cmd_fetch(args: argparse.Namespace) -> int:
    client = _service_client(args)
    result = client.fetch_results(args.job_id)
    _print_result(result, args)
    return 0


def _coerced_stage_overrides(
    study, assignments: Sequence[tuple[str, str]]
) -> dict[str, dict[str, Any]]:
    """Parse ``[stage.]key=value`` overrides, coercing per the stage's specs.

    Unqualified keys target the study's final (target) stage; qualified keys
    name any experiment of the pipeline.  Stage membership is validated by
    ``Engine.run_study``, so a typo in the stage name fails loudly there.
    """
    stage_params: dict[str, dict[str, Any]] = {}
    for key, value in assignments:
        stage_name, _, param = key.rpartition(".")
        stage_name = stage_name or study.target
        experiment = get_experiment(stage_name)
        stage_params.setdefault(stage_name, {})[param] = (
            experiment.spec(param).coerce(value)
        )
    return stage_params


def _cmd_study(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_table
    from repro.api.study import get_study, list_studies

    if args.study_command == "list":
        rows = [
            {
                "study": study.name,
                "target": study.target,
                "stages": len(study.resolve()),
                "sweep": len(study.sweep) if study.sweep is not None else "-",
                "tags": ",".join(study.tags),
                "description": study.description,
            }
            for study in list_studies(tag=args.tag)
        ]
        print(format_table(rows, title=f"{len(rows)} registered studies"))
        return 0

    if args.study_command == "describe":
        study = get_study(args.name)
        pipeline = study.resolve()
        print(f"{study.name}: {study.description}")
        if study.tags:
            print(f"tags: {', '.join(study.tags)}")
        print(f"\npipeline ({len(pipeline)} stages, * = target):")
        print(pipeline.describe())
        if study.sweep is not None:
            axes = {name: values for name, values in study.sweep.axes.items()}
            print(
                f"\ndefault sweep: {study.sweep.mode} over {axes} "
                f"({len(study.sweep)} points)"
            )
        for stage in pipeline:
            if stage.experiment.outputs:
                rows = [
                    {"output": spec.name, "kind": spec.kind, "description": spec.help}
                    for spec in stage.experiment.outputs
                ]
                print()
                print(format_table(rows, title=f"{stage.name} outputs"))
        return 0

    # run
    study = get_study(args.name)
    stage_params = _coerced_stage_overrides(study, args.param)
    spec = None
    if args.grid is not None or args.zip_axes is not None:
        assignments = args.grid if args.grid is not None else args.zip_axes
        spec = SweepSpec(
            mode="grid" if args.grid is not None else "zip",
            axes=_coerced_axes(study.target, assignments),
        )
    shard = _shard_plan(args)
    effective = spec if spec is not None else study.sweep
    on_result = None
    if effective is not None and not args.no_progress:
        n_points = (
            len(effective) if shard is None else len(shard.indices(effective.points()))
        )
        shard_note = (
            "" if shard is None else f" (shard {shard.shard_index}/{shard.n_shards})"
        )
        stages = " -> ".join(study.resolve().stage_names)
        print(
            f"study {study.name}: {stages}; sweep {effective.mode} over "
            f"{effective.axis_names}, {n_points} points{shard_note}",
            file=sys.stderr,
        )
        on_result = _progress_printer(n_points)
    with Engine(
        cache_dir=args.cache_dir,
        store=_resolved_store(args),
        executor=args.executor,
        max_workers=args.workers,
    ) as engine:
        try:
            result = engine.run_study(
                study,
                stage_params=stage_params,
                sweep=spec,
                shard=shard,
                use_cache=not args.no_cache,
                on_result=on_result,
            )
        except SweepError as error:
            print(f"error: {error}", file=sys.stderr)
            _print_result(error.partial, args)
            return 1
    _print_result(result, args)
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    from repro.dist import merge_results

    parts = []
    for path in args.paths:
        try:
            parts.append(ResultSet.from_json(path))
        except OSError as error:
            raise ValueError(
                f"cannot read part {path!r}: {error.strerror or error}"
            ) from None
        except KeyError:
            raise ValueError(
                f"part {path!r} is not a ResultSet JSON export"
            ) from None
    merged = merge_results(parts, allow_missing=args.allow_missing)
    _print_result(merged, args)
    return 0


def _cmd_perf_report(args: argparse.Namespace) -> int:
    from repro.api.perfreport import (
        DEFAULT_PERF_DIR,
        DEFAULT_THRESHOLD,
        load_trajectory,
        plot_trajectory,
        report_text,
    )

    directory = args.perf_dir if args.perf_dir is not None else DEFAULT_PERF_DIR
    text, findings = report_text(
        directory=directory,
        case=args.case,
        threshold=args.threshold if args.threshold is not None else DEFAULT_THRESHOLD,
    )
    print(text)
    if args.plot is not None:
        if plot_trajectory(load_trajectory(directory), args.plot, case=args.case):
            print(f"wrote {args.plot}")
        else:
            # Optional dependency: a missing matplotlib must not fail CI or
            # scripts that run with --plot unconditionally.
            print(
                f"matplotlib not installed; skipping plot {args.plot}",
                file=sys.stderr,
            )
    if args.check and findings:
        print(f"error: {len(findings)} perf regression(s)", file=sys.stderr)
        return 1
    return 0


def _format_bytes(size: int) -> str:
    value = float(size)
    for unit in ("B", "kB", "MB", "GB"):
        if value < 1024.0 or unit == "GB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024.0
    return f"{value:.1f} GB"


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_table
    from repro.api.cache import parse_age
    from repro.api.query import export_results, parse_predicate, query_entries
    from repro.dist import resolve_store

    store = resolve_store(args.store)
    predicates = [parse_predicate(expression) for expression in args.where]
    entries = query_entries(
        store,
        experiment=args.experiment,
        where=predicates,
        newer_than=None if args.newer_than is None else parse_age(args.newer_than),
        older_than=None if args.older_than is None else parse_age(args.older_than),
        sort=args.sort,
        descending=args.desc,
        limit=args.limit,
    )
    rows = []
    for entry in entries:
        params = entry.params or {}
        compact = " ".join(f"{key}={value}" for key, value in params.items())
        rows.append(
            {
                "experiment": entry.experiment,
                "version": "?" if entry.version is None else entry.version,
                "key": entry.key,
                "age": f"{entry.age_seconds():.0f}s",
                "size": _format_bytes(entry.size_bytes),
                "params": compact if len(compact) <= 60 else compact[:57] + "...",
            }
        )
    filters = [f"store {store.directory}"]
    if args.experiment:
        filters.append(f"experiment {args.experiment}")
    filters.extend(predicate.describe() for predicate in predicates)
    print(format_table(rows, title=f"{len(rows)} entries ({', '.join(filters)})"))
    if args.export is None and args.csv is None:
        return 0
    result = export_results(
        store,
        entries,
        query={
            "experiment": args.experiment,
            "where": list(args.where),
            "sort": args.sort,
        },
    )
    if args.export is not None:
        result.to_json(args.export)
        print(f"wrote {len(result)} records to {args.export}")
    if args.csv is not None:
        result.to_csv(args.csv)
        print(f"wrote {len(result)} records to {args.csv}")
    return 0


def _cmd_migrate(args: argparse.Namespace) -> int:
    from repro.dist import migrate_store, resolve_store

    report = migrate_store(
        resolve_store(args.source), resolve_store(args.destination)
    )
    print(report.summary())
    for path in report.skipped:
        print(f"  skipped (corrupt): {path}", file=sys.stderr)
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_table
    from repro.api.cache import cache_stats, clear_cache, parse_age, prune_cache

    target = args.cache_dir
    if getattr(args, "store", None) is not None:
        from repro.dist import resolve_store

        target = resolve_store(args.store)
    label = target if isinstance(target, str) else target.directory

    if args.cache_command == "stats":
        stats = cache_stats(target)
        rows = [
            {
                "experiment": name,
                "entries": len(entries),
                "size": _format_bytes(sum(e.size_bytes for e in entries)),
                "versions": ",".join(
                    sorted({str(e.version) for e in entries if e.version is not None})
                ) or "?",
            }
            for name, entries in stats.by_experiment().items()
        ]
        print(
            format_table(
                rows,
                title=f"cache {label}: {stats.n_entries} entries, "
                f"{_format_bytes(stats.total_bytes)}",
            )
        )
        return 0

    if args.cache_command == "clear":
        removed = clear_cache(target)
        print(f"removed {removed} cache entries from {label}")
        return 0

    # prune
    from repro.api.cache import gc_store

    verb = "would remove" if args.dry_run else "removed"
    has_criteria = (
        args.experiment is not None
        or args.version is not None
        or args.older_than is not None
    )
    if has_criteria or not args.gc:
        # Without criteria prune_cache raises its usual guidance error; --gc
        # alone is a pure bookkeeping collection with no entry eviction.
        matched = prune_cache(
            target,
            experiment=args.experiment,
            version=args.version,
            older_than=None if args.older_than is None else parse_age(args.older_than),
            dry_run=args.dry_run,
        )
        print(f"{verb} {len(matched)} cache entries from {label}")
        for entry in matched:
            # Metadata is only read when pruning by version; omit it otherwise.
            version = "" if entry.version is None else f" (version {entry.version})"
            print(f"  {entry.experiment}{version} {entry.path}")
    if args.gc:
        collected = gc_store(target, dry_run=args.dry_run)
        print(
            f"{verb} {len(collected)} tombstone/lease records from {label}"
        )
        for path in collected:
            print(f"  {path}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.inspect import (
        load_spans,
        render_critical_path,
        render_summary,
        render_tree,
    )

    try:
        spans = load_spans(args.path)
    except OSError as error:
        print(f"error: cannot read trace: {error}", file=sys.stderr)
        return 2
    if not spans:
        print(f"no spans in {args.path}", file=sys.stderr)
        return 1
    if args.trace_command == "summary":
        print(render_summary(spans))
    elif args.trace_command == "tree":
        print(render_tree(spans, max_children=args.max_children))
    else:
        print(render_critical_path(spans))
    return 0


def _cmd_docs(args: argparse.Namespace) -> int:
    from repro.api.catalog import catalog_markdown, check_catalog

    if args.check is not None:
        if check_catalog(args.check):
            print(f"{args.check} is up to date")
            return 0
        print(
            f"error: {args.check} is stale; regenerate with "
            f"`python -m repro docs --write {args.check}`",
            file=sys.stderr,
        )
        return 1
    text = catalog_markdown()
    if args.write is not None:
        with open(args.write, "w") as handle:
            handle.write(text)
        print(f"wrote {args.write}")
        return 0
    print(text, end="")
    return 0


def _configure_logging(args: argparse.Namespace) -> None:
    """Apply the root --log-level/-v flags (timestamped stderr handler)."""
    import logging

    level_name = args.log_level
    if level_name is None and args.verbose:
        level_name = "debug" if args.verbose >= 2 else "info"
    if level_name is None:
        return
    logging.basicConfig(
        level=getattr(logging, level_name.upper()),
        stream=sys.stderr,
        format="%(asctime)s %(levelname)-7s %(name)s: %(message)s",
        datefmt="%H:%M:%S",
    )


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    _configure_logging(args)
    handlers = {
        "list": _cmd_list,
        "describe": _cmd_describe,
        "run": _cmd_run,
        "sweep": _cmd_sweep,
        "campaign": _cmd_campaign,
        "worker": _cmd_worker,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "status": _cmd_status,
        "fetch": _cmd_fetch,
        "study": _cmd_study,
        "merge": _cmd_merge,
        "query": _cmd_query,
        "migrate": _cmd_migrate,
        "cache": _cmd_cache,
        "perf-report": _cmd_perf_report,
        "trace": _cmd_trace,
        "docs": _cmd_docs,
    }
    try:
        trace_path = getattr(args, "trace_path", None)
        if trace_path is None:
            return handlers[args.command](args)
        # --trace: record spans for the whole invocation under one root
        # span, so everything the command spawns (pool chunks, claimed
        # jobs, daemons it hands the carrier to) shares one trace_id.
        from contextlib import ExitStack

        from repro.obs.trace import trace_span, tracing

        with ExitStack() as scope:
            scope.enter_context(tracing(trace_path))
            scope.enter_context(trace_span(f"cli.{args.command}"))
            return handlers[args.command](args)
    except (ExperimentError, ValueError) as error:
        # ValueError covers user-input rejections from Engine/SweepSpec
        # construction (bad --workers, malformed axes, ...).
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ServiceError as error:
        # The service rejected the request or is unreachable; the message
        # carries the server's explanation (or the socket error).
        print(f"error: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; that's a clean exit.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
