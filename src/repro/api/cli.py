"""``python -m repro`` -- reproduce any figure or table from the shell.

Subcommands
-----------

``list``
    Enumerate the registered experiments (name, tags, description).
``describe NAME``
    Show an experiment's parameters, kinds and defaults.
``run NAME [-p key=value ...]``
    Execute one experiment and print its records as an aligned text table;
    ``--csv`` / ``--json`` write the ResultSet to files.
``sweep NAME (--grid | --zip) key=v1,v2 ...``
    Expand a declarative sweep and fan it out, optionally in parallel
    (``--executor thread|process --workers N``).

Examples::

    python -m repro list
    python -m repro describe fig9
    python -m repro run fig9 -p mwcnt_diameters_nm=10,22 --csv fig9.csv
    python -m repro sweep fig12 --grid contact_resistance=100e3,250e3 \\
        --executor process --workers 4
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Sequence

from repro.api.engine import EXECUTORS, Engine
from repro.api.experiment import (
    ExperimentError,
    get_experiment,
    list_experiments,
)
from repro.api.results import ResultSet
from repro.api.sweep import SweepSpec


def _parse_assignment(text: str) -> tuple[str, str]:
    if "=" not in text:
        raise argparse.ArgumentTypeError(
            f"expected key=value, got {text!r}"
        )
    key, value = text.split("=", 1)
    return key.strip(), value.strip()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the paper's figures and tables from the shell.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="enumerate registered experiments")
    list_parser.add_argument("--tag", default=None, help="only experiments with this tag")

    describe = subparsers.add_parser("describe", help="show an experiment's parameters")
    describe.add_argument("name", help="experiment name (see `list`)")

    def add_execution_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--cache-dir", default=None, help="on-disk memoisation cache directory")
        sub.add_argument("--no-cache", action="store_true", help="bypass the cache")
        sub.add_argument("--csv", default=None, metavar="PATH", help="write records as CSV")
        sub.add_argument("--json", default=None, metavar="PATH", help="write the ResultSet as JSON")
        sub.add_argument("--limit", type=int, default=40, help="table rows to print (0: all)")

    run = subparsers.add_parser("run", help="execute one experiment")
    run.add_argument("name", help="experiment name (see `list`)")
    run.add_argument(
        "-p", "--param", action="append", default=[], type=_parse_assignment,
        metavar="KEY=VALUE", help="override one parameter (repeatable)",
    )
    add_execution_options(run)

    sweep = subparsers.add_parser("sweep", help="fan an experiment out over a sweep")
    sweep.add_argument("name", help="experiment name (see `list`)")
    mode = sweep.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--grid", nargs="+", type=_parse_assignment, metavar="KEY=V1,V2",
        help="Cartesian-product sweep axes",
    )
    mode.add_argument(
        "--zip", nargs="+", type=_parse_assignment, metavar="KEY=V1,V2",
        dest="zip_axes", help="lock-step sweep axes (equal lengths)",
    )
    sweep.add_argument(
        "-p", "--param", action="append", default=[], type=_parse_assignment,
        metavar="KEY=VALUE", help="fixed base parameter (repeatable)",
    )
    sweep.add_argument("--executor", choices=EXECUTORS, default="serial")
    sweep.add_argument("--workers", type=int, default=None, help="pool size for parallel executors")
    add_execution_options(sweep)

    return parser


def _coerced_overrides(name: str, assignments: Sequence[tuple[str, str]]) -> dict[str, Any]:
    experiment = get_experiment(name)
    return {key: experiment.spec(key).coerce(value) for key, value in assignments}


def _coerced_axes(name: str, assignments: Sequence[tuple[str, str]]) -> dict[str, list[Any]]:
    """Parse sweep axes, coercing each comma-separated value per its ParamSpec.

    For scalar parameter kinds every comma-separated token is one sweep
    value; for tuple kinds each token would be ambiguous, so axis values for
    those are separated with ``;`` (e.g. ``lengths_um=1,10;1,100``).
    """
    experiment = get_experiment(name)
    axes: dict[str, list[Any]] = {}
    for key, value in assignments:
        spec = experiment.spec(key)
        if spec.kind in ("floats", "ints", "strs"):
            tokens = [t for t in value.split(";") if t != ""]
        else:
            tokens = [t for t in value.split(",") if t != ""]
        axes[key] = [spec.coerce(token) for token in tokens]
    return axes


def _print_result(result: ResultSet, args: argparse.Namespace) -> None:
    from repro.analysis.report import format_table

    records = result.to_records()
    shown = records if args.limit in (0, None) else records[: args.limit]
    title = (
        f"{result.meta.get('experiment', '?')}: {len(records)} records"
        + (f" (showing {len(shown)})" if len(shown) < len(records) else "")
        + (" [cache hit]" if result.meta.get("cache_hit") else "")
    )
    print(format_table(shown, title=title))
    wall = result.meta.get("wall_time_s")
    if wall is not None:
        print(f"wall time: {wall:.3f} s")
    print(f"content hash: {result.content_hash[:16]}")
    if args.csv:
        result.to_csv(args.csv)
        print(f"wrote {args.csv}")
    if args.json:
        result.to_json(args.json)
        print(f"wrote {args.json}")


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_table

    rows = [
        {
            "name": experiment.name,
            "tags": ",".join(experiment.tags),
            "params": len(experiment.params),
            "description": experiment.description,
        }
        for experiment in list_experiments(tag=args.tag)
    ]
    print(format_table(rows, title=f"{len(rows)} registered experiments"))
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_table

    experiment = get_experiment(args.name)
    print(f"{experiment.name} (version {experiment.version}): {experiment.description}")
    if experiment.tags:
        print(f"tags: {', '.join(experiment.tags)}")
    def default_text(spec):
        if spec.default is None:
            return "(required)"
        text = repr(spec.default)
        return text if len(text) <= 48 else text[:45] + "..."

    rows = [
        {
            "param": spec.name,
            "kind": spec.kind,
            "default": default_text(spec),
            "help": spec.help,
        }
        for spec in experiment.params
    ]
    print(format_table(rows, title=f"{len(rows)} parameters"))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    engine = Engine(cache_dir=args.cache_dir)
    result = engine.run(
        args.name,
        params=_coerced_overrides(args.name, args.param),
        use_cache=not args.no_cache,
    )
    _print_result(result, args)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    assignments = args.grid if args.grid is not None else args.zip_axes
    axes = _coerced_axes(args.name, assignments)
    spec = SweepSpec(mode="grid" if args.grid is not None else "zip", axes=axes)
    engine = Engine(
        cache_dir=args.cache_dir, executor=args.executor, max_workers=args.workers
    )
    result = engine.sweep(
        args.name,
        spec,
        base_params=_coerced_overrides(args.name, args.param),
        use_cache=not args.no_cache,
    )
    print(f"sweep: {spec.mode} over {spec.axis_names}, {len(spec)} points")
    _print_result(result, args)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "describe": _cmd_describe,
        "run": _cmd_run,
        "sweep": _cmd_sweep,
    }
    try:
        return handlers[args.command](args)
    except (ExperimentError, ValueError) as error:
        # ValueError covers user-input rejections from Engine/SweepSpec
        # construction (bad --workers, malformed axes, ...).
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; that's a clean exit.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
