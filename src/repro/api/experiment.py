"""Experiment abstraction and global registry.

An :class:`Experiment` wraps one reproducible computation of the paper --
a figure panel, a table, or an extension study -- behind a uniform contract:

* a unique registry name (``"fig9"``, ``"table_ampacity"``, ...),
* typed, JSON-serialisable parameters described by :class:`ParamSpec`
  (so sweeps, caching and the CLI can manipulate them generically),
* a typed output schema described by :class:`OutputSpec` (optional but
  recommended: declared outputs are validated on every run and documented in
  the generated catalog),
* optional upstream dependencies described by :class:`Consumes`: a composite
  experiment declares *which* other experiments produce its input artifacts
  and how its own parameters bind to theirs.  The engine resolves the
  resulting DAG, runs upstream stages first and injects their
  :class:`~repro.api.results.ResultSet`\\ s into the experiment function as
  keyword arguments (see :mod:`repro.api.study`),
* a callable returning a list of records (dicts of scalars).

Experiments are registered with the :func:`register_experiment` decorator and
looked up by name via :func:`get_experiment` / :func:`list_experiments`.
Registering all of the paper's drivers happens in
:mod:`repro.analysis.experiments`, which :func:`ensure_registered` imports on
demand so that engines (including pool worker processes) always see a
populated registry.
"""

from __future__ import annotations

import difflib
import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence


class ExperimentError(Exception):
    """Base class for registry and parameter errors."""


class ExperimentNotFoundError(ExperimentError, KeyError):
    """Raised when looking up a name that is not registered."""

    # KeyError.__str__ repr-quotes the message; keep the plain text.
    __str__ = Exception.__str__


class DuplicateExperimentError(ExperimentError, ValueError):
    """Raised when registering a name twice without ``replace=True``."""


class ParameterError(ExperimentError, ValueError):
    """Raised for unknown parameter names or un-coercible values."""


class OutputSchemaError(ExperimentError, TypeError):
    """Raised when an experiment's records violate its declared output schema."""


class PipelineError(ExperimentError, RuntimeError):
    """Raised for dependency-contract violations (missing inputs, cycles, ...)."""


def suggest_names(name: str, known: Sequence[str], n: int = 3) -> list[str]:
    """Closest registered names to a mistyped one (for error messages)."""
    return difflib.get_close_matches(name, list(known), n=n, cutoff=0.5)


def _did_you_mean(name: str, known: Sequence[str]) -> str:
    """`` (did you mean: a, b?)`` suffix, or ``""`` when nothing is close."""
    close = suggest_names(name, known)
    return f" (did you mean: {', '.join(close)}?)" if close else ""


_COERCERS: dict[str, Callable[[Any], Any]] = {
    "float": float,
    "int": int,
    "str": str,
}


def _coerce_bool(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in ("true", "1", "yes", "on"):
            return True
        if lowered in ("false", "0", "no", "off"):
            return False
        raise ValueError(f"not a boolean: {value!r}")
    return bool(value)


def _coerce_sequence(value: Any, item: Callable[[Any], Any]) -> tuple:
    if isinstance(value, str):
        parts = [p for p in value.split(",") if p.strip() != ""]
        return tuple(item(p.strip()) for p in parts)
    if hasattr(value, "__iter__"):
        return tuple(item(v) for v in value)
    return (item(value),)


@dataclass(frozen=True)
class ParamSpec:
    """Typed description of one experiment parameter.

    Attributes
    ----------
    name:
        Parameter name (must match a keyword of the experiment function).
    kind:
        One of ``float``, ``int``, ``bool``, ``str``, ``floats``, ``ints``,
        ``strs`` (the plural kinds are homogeneous tuples and accept
        comma-separated strings from the CLI).
    default:
        Default value; ``None`` means the parameter is required.
    help:
        One-line description shown by ``python -m repro describe``.
    choices:
        Optional closed set of allowed values (after coercion).
    """

    name: str
    kind: str = "float"
    default: Any = None
    help: str = ""
    choices: tuple | None = None

    _KINDS = ("float", "int", "bool", "str", "floats", "ints", "strs")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(f"unknown param kind {self.kind!r}; use one of {self._KINDS}")

    def coerce(self, value: Any) -> Any:
        """Coerce a raw (possibly CLI string) value to the declared kind."""
        try:
            if self.kind == "bool":
                result: Any = _coerce_bool(value)
            elif self.kind == "floats":
                result = _coerce_sequence(value, float)
            elif self.kind == "ints":
                result = _coerce_sequence(value, int)
            elif self.kind == "strs":
                result = _coerce_sequence(value, str)
            else:
                result = _COERCERS[self.kind](value)
        except (TypeError, ValueError) as error:
            raise ParameterError(
                f"parameter {self.name!r} expects kind {self.kind!r}, "
                f"got {value!r} ({error})"
            ) from None
        if self.choices is not None and result not in self.choices:
            raise ParameterError(
                f"parameter {self.name!r} must be one of {self.choices}, got {result!r}"
            )
        return result


_OUTPUT_KINDS: dict[str, tuple[type, ...]] = {
    "float": (float, int),
    "int": (int,),
    "bool": (bool,),
    "str": (str,),
}


@dataclass(frozen=True)
class OutputSpec:
    """Typed description of one output column of an experiment's records.

    Declared outputs make a :class:`~repro.api.results.ResultSet` a *typed
    artifact*: every record of every run is checked to carry the declared
    columns with cells of the declared kind (records may carry extra,
    undeclared columns -- the schema is a floor, not a ceiling).  Downstream
    experiments that :class:`Consumes` the artifact can rely on the columns
    being present.

    Attributes
    ----------
    name:
        Column name in the produced records.
    kind:
        One of ``float``, ``int``, ``bool``, ``str`` (``float`` accepts
        integer cells; booleans are never accepted as numbers).
    help:
        One-line description shown by ``describe`` and the catalog.
    """

    name: str
    kind: str = "float"
    help: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _OUTPUT_KINDS:
            raise ValueError(
                f"unknown output kind {self.kind!r}; use one of {tuple(_OUTPUT_KINDS)}"
            )

    def check(self, value: Any) -> bool:
        """Whether one cell value conforms to the declared kind."""
        if isinstance(value, bool):
            return self.kind == "bool"
        return isinstance(value, _OUTPUT_KINDS[self.kind])


@dataclass(frozen=True)
class Consumes:
    """One upstream dependency of a composite experiment.

    ``Consumes("variability", inject="variability_result",
    bind={"length_um": "length_um"})`` declares: before this experiment runs,
    run the registered experiment ``"variability"`` and pass its
    :class:`~repro.api.results.ResultSet` to this experiment's function as the
    keyword argument ``variability_result``.  ``bind`` forwards parameter
    values *downstream -> upstream*: the upstream parameter named by each key
    is set to this experiment's resolved value of the parameter named by the
    corresponding value, so sweeping the downstream parameter sweeps the
    upstream invocation with it.  Unbound upstream parameters use their
    defaults (overridable per stage through a
    :class:`~repro.api.study.Study`'s ``params``).

    Attributes
    ----------
    experiment:
        Upstream registry name (resolved lazily, so registration order does
        not matter).
    inject:
        Keyword under which the upstream ResultSet is passed to the
        experiment function.  Must not collide with a declared parameter.
    bind:
        Mapping of ``upstream parameter name -> this experiment's parameter
        name`` (both sides validated when the pipeline is resolved).
    """

    experiment: str
    inject: str
    bind: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.experiment:
            raise ValueError("Consumes needs an upstream experiment name")
        if not self.inject.isidentifier():
            raise ValueError(
                f"inject name {self.inject!r} must be a valid Python identifier"
            )
        object.__setattr__(self, "bind", dict(self.bind))


@dataclass(frozen=True)
class Experiment:
    """One registered, reproducible experiment of the paper.

    Attributes
    ----------
    name:
        Unique registry key (``"fig9"``).
    fn:
        Callable accepting the declared parameters as keywords and returning
        a list of record dicts (or a single dict, which is wrapped).
    params:
        Parameter specifications; the only parameter keywords ``fn`` will
        receive (injected artifacts arrive under their ``Consumes.inject``
        names on top).
    outputs:
        Optional typed output schema; when declared, every run's records are
        validated against it (see :func:`validate_records`).
    consumes:
        Upstream dependencies; non-empty makes this a *composite* experiment
        that can only execute with its input artifacts injected (the engine
        resolves them -- see :meth:`run_with_inputs`).
    batch_fn:
        Optional batched evaluator: a callable taking a *list* of resolved
        parameter dicts and returning one record list per dict, each
        float-identical to what ``fn`` would return for that dict alone.
        The engine's ``batch`` executor routes pending sweep points through
        it (see :meth:`run_batch`); experiments without one always run
        point by point.  Only self-contained experiments (empty
        ``consumes``) may declare a ``batch_fn``.
    description:
        One-line summary for ``python -m repro list``.
    tags:
        Free-form labels (``"figure"``, ``"table"``, ``"extension"``).
    version:
        Bump when the implementation changes meaningfully; part of the
        engine's cache key so stale cache entries are never replayed.
    """

    name: str
    fn: Callable[..., Any]
    params: tuple[ParamSpec, ...] = ()
    description: str = ""
    tags: tuple[str, ...] = ()
    version: str = "1"
    outputs: tuple[OutputSpec, ...] = ()
    consumes: tuple[Consumes, ...] = ()
    batch_fn: Callable[[list[dict[str, Any]]], Any] | None = None

    def __post_init__(self) -> None:
        if self.batch_fn is not None and self.consumes:
            raise ValueError(
                f"experiment {self.name!r}: batch_fn is only supported for "
                "self-contained experiments (empty consumes)"
            )
        names = [spec.name for spec in self.params]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate parameter names in experiment {self.name!r}")
        output_names = [spec.name for spec in self.outputs]
        if len(set(output_names)) != len(output_names):
            raise ValueError(f"duplicate output names in experiment {self.name!r}")
        injects = [dep.inject for dep in self.consumes]
        if len(set(injects)) != len(injects):
            raise ValueError(f"duplicate inject names in experiment {self.name!r}")
        for dep in self.consumes:
            if dep.inject in names:
                raise ValueError(
                    f"experiment {self.name!r}: inject name {dep.inject!r} "
                    "collides with a declared parameter"
                )
            for downstream in dep.bind.values():
                if downstream not in names:
                    raise ValueError(
                        f"experiment {self.name!r} binds unknown parameter "
                        f"{downstream!r} to upstream {dep.experiment!r}; "
                        f"declared: {names}"
                    )

    @property
    def param_names(self) -> list[str]:
        return [spec.name for spec in self.params]

    def spec(self, name: str) -> ParamSpec:
        for candidate in self.params:
            if candidate.name == name:
                return candidate
        raise ParameterError(
            f"experiment {self.name!r} has no parameter {name!r}; "
            f"available: {self.param_names}"
        )

    def defaults(self) -> dict[str, Any]:
        """Default value of every parameter that has one."""
        return {spec.name: spec.default for spec in self.params if spec.default is not None}

    def resolve_params(self, overrides: Mapping[str, Any] | None = None) -> dict[str, Any]:
        """Merge defaults with coerced overrides, rejecting unknown names."""
        resolved = self.defaults()
        for name, value in (overrides or {}).items():
            resolved[name] = self.spec(name).coerce(value)
        missing = [s.name for s in self.params if s.default is None and s.name not in resolved]
        if missing:
            raise ParameterError(f"experiment {self.name!r} missing required params {missing}")
        return resolved

    def run(self, **overrides: Any) -> list[dict[str, Any]]:
        """Execute directly (no engine, no cache) and return record dicts.

        Only valid for self-contained experiments: a composite experiment
        (non-empty ``consumes``) needs its upstream artifacts resolved first,
        which is the engine's job -- use ``Engine.run`` (or pass the
        artifacts explicitly through :meth:`run_with_inputs`).
        """
        return self.run_with_inputs({}, self.resolve_params(overrides))

    def run_with_inputs(
        self,
        inputs: Mapping[str, Any],
        resolved: Mapping[str, Any],
    ) -> list[dict[str, Any]]:
        """Execute with pre-resolved parameters and injected input artifacts.

        ``inputs`` maps each dependency's ``inject`` name to its upstream
        :class:`~repro.api.results.ResultSet`; ``resolved`` is the full
        parameter dict (as returned by :meth:`resolve_params`).  Declared
        outputs are validated on the returned records.
        """
        missing = [dep.inject for dep in self.consumes if dep.inject not in inputs]
        if missing:
            raise PipelineError(
                f"experiment {self.name!r} consumes upstream results "
                f"{[d.experiment for d in self.consumes]} but inputs "
                f"{missing} were not provided; run it through Engine.run / "
                "Engine.run_study, which resolve the dependency pipeline"
            )
        unexpected = sorted(set(inputs) - {dep.inject for dep in self.consumes})
        if unexpected:
            raise PipelineError(
                f"experiment {self.name!r} received undeclared inputs {unexpected}"
            )
        records = normalize_records(self.fn(**dict(resolved), **dict(inputs)))
        validate_records(records, self.outputs, self.name)
        return records

    def run_batch(
        self, resolved_list: Sequence[Mapping[str, Any]]
    ) -> list[list[dict[str, Any]]]:
        """Execute many pre-resolved invocations through :attr:`batch_fn`.

        Returns one record list per parameter dict, in order, each
        normalised and validated exactly like a :meth:`run_with_inputs`
        return value.  Raises :class:`PipelineError` when no ``batch_fn``
        is declared or when it returns the wrong number of results --
        callers (the engine's ``batch`` executor) fall back to per-point
        execution on any exception, so a buggy batch function can cost
        performance but never correctness.
        """
        if self.batch_fn is None:
            raise PipelineError(
                f"experiment {self.name!r} declares no batch_fn; "
                "run its points individually"
            )
        results = self.batch_fn([dict(resolved) for resolved in resolved_list])
        if not isinstance(results, Sequence) or len(results) != len(resolved_list):
            raise PipelineError(
                f"experiment {self.name!r} batch_fn must return one record "
                f"list per parameter set ({len(resolved_list)} expected)"
            )
        records_list = [normalize_records(result) for result in results]
        for records in records_list:
            validate_records(records, self.outputs, self.name)
        return records_list


def normalize_records(result: Any) -> list[dict[str, Any]]:
    """Coerce an experiment return value into a list of record dicts.

    Accepts a list of mappings (the common case), a single mapping (wrapped
    into a one-record list) or a dataclass instance (converted via its
    fields).  Anything else is a contract violation.
    """
    if isinstance(result, Mapping):
        return [dict(result)]
    if hasattr(result, "__dataclass_fields__"):
        return [
            {name: getattr(result, name) for name in result.__dataclass_fields__}
        ]
    if isinstance(result, Sequence) and not isinstance(result, (str, bytes)):
        records = []
        for entry in result:
            if not isinstance(entry, Mapping):
                raise TypeError(
                    f"experiment records must be mappings, got {type(entry).__name__}"
                )
            records.append(dict(entry))
        return records
    raise TypeError(
        f"experiment must return records (list of dicts), got {type(result).__name__}"
    )


def validate_records(
    records: Sequence[Mapping[str, Any]],
    outputs: Sequence[OutputSpec],
    name: str,
) -> None:
    """Check records against a declared output schema (no-op when empty).

    Every record must carry every declared output column with a cell of the
    declared kind; extra columns are allowed.  Violations raise
    :class:`OutputSchemaError` naming the first offending record.
    """
    if not outputs:
        return
    for index, record in enumerate(records):
        for spec in outputs:
            if spec.name not in record:
                raise OutputSchemaError(
                    f"experiment {name!r} record {index} is missing declared "
                    f"output {spec.name!r}; got columns {sorted(record)}"
                )
            value = record[spec.name]
            if not spec.check(value):
                raise OutputSchemaError(
                    f"experiment {name!r} record {index} output {spec.name!r} "
                    f"expects kind {spec.kind!r}, got {value!r} "
                    f"({type(value).__name__})"
                )


# --- registry ---------------------------------------------------------------

_REGISTRY: dict[str, Experiment] = {}


def register_experiment(
    name: str,
    *,
    params: Sequence[ParamSpec] = (),
    description: str = "",
    tags: Sequence[str] = (),
    version: str = "1",
    outputs: Sequence[OutputSpec] = (),
    consumes: Sequence[Consumes] = (),
    batch_fn: Callable[[list[dict[str, Any]]], Any] | None = None,
    replace: bool = False,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Decorator registering a function as a named experiment.

    The decorated function is returned unchanged; the registry stores an
    :class:`Experiment` wrapper around it.  ``description`` defaults to the
    first line of the function's docstring.
    """

    def decorator(fn: Callable[..., Any]) -> Callable[..., Any]:
        doc = description
        if not doc and fn.__doc__:
            doc = inspect.cleandoc(fn.__doc__).splitlines()[0]
        experiment = Experiment(
            name=name,
            fn=fn,
            params=tuple(params),
            description=doc,
            tags=tuple(tags),
            version=version,
            outputs=tuple(outputs),
            consumes=tuple(consumes),
            batch_fn=batch_fn,
        )
        if name in _REGISTRY and not replace:
            raise DuplicateExperimentError(
                f"experiment {name!r} is already registered "
                f"(by {_REGISTRY[name].fn.__module__}.{_REGISTRY[name].fn.__qualname__}); "
                "pass replace=True to override"
            )
        _REGISTRY[name] = experiment
        return fn

    return decorator


def unregister_experiment(name: str) -> None:
    """Remove one experiment from the registry (mostly for tests)."""
    _REGISTRY.pop(name, None)


def get_experiment(name: str) -> Experiment:
    """Look up a registered experiment, with a helpful error on miss.

    A miss suggests the nearest registered names before listing everything,
    so ``get_experiment("varibility")`` points at ``variability`` instead of
    drowning the typo in a 20-name dump.
    """
    ensure_registered()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ExperimentNotFoundError(
            f"no experiment {name!r}{_did_you_mean(name, _REGISTRY)}; "
            f"registered: {sorted(_REGISTRY)}"
        ) from None


def list_experiments(tag: str | None = None) -> list[Experiment]:
    """All registered experiments sorted by name, optionally tag-filtered."""
    ensure_registered()
    experiments = sorted(_REGISTRY.values(), key=lambda e: e.name)
    if tag is not None:
        experiments = [e for e in experiments if tag in e.tags]
    return experiments


def ensure_registered() -> None:
    """Import the standard experiment definitions exactly once.

    Safe to call repeatedly and from pool worker processes; it is what makes
    ``Engine.run("fig9")`` work without the caller importing
    :mod:`repro.analysis.experiments` first.  Covers both the paper's
    figure/table drivers and the extension studies
    (:mod:`repro.analysis.studies`).
    """
    import repro.analysis.experiments  # noqa: F401  (import has the side effect)
    import repro.analysis.studies  # noqa: F401  (import has the side effect)
