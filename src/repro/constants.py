"""Physical constants used throughout the CNT interconnect models.

All values are in SI units unless the name says otherwise.  The handful of
CNT-specific constants (quantum conductance, quantum capacitance per channel,
kinetic inductance per channel, shell pitch) are the ones the paper quotes in
Section III; they are derived from the fundamental constants below so that the
relationships between them stay consistent.
"""

from __future__ import annotations

import math

# --- fundamental constants (SI, 2019 redefinition) -------------------------

ELEMENTARY_CHARGE = 1.602176634e-19
"""Elementary charge ``e`` in coulomb."""

PLANCK = 6.62607015e-34
"""Planck constant ``h`` in joule second."""

HBAR = PLANCK / (2.0 * math.pi)
"""Reduced Planck constant in joule second."""

BOLTZMANN = 1.380649e-23
"""Boltzmann constant ``k_B`` in joule per kelvin."""

BOLTZMANN_EV = BOLTZMANN / ELEMENTARY_CHARGE
"""Boltzmann constant in electronvolt per kelvin (~8.617e-5 eV/K)."""

VACUUM_PERMITTIVITY = 8.8541878128e-12
"""Vacuum permittivity ``epsilon_0`` in farad per metre."""

ROOM_TEMPERATURE = 300.0
"""Default simulation temperature in kelvin."""

# --- quantum transport ------------------------------------------------------

QUANTUM_CONDUCTANCE = 2.0 * ELEMENTARY_CHARGE**2 / PLANCK
"""Conductance quantum ``G0 = 2 e^2 / h`` of one spin-degenerate channel.

Approximately 77.5 uS, i.e. the 0.077 mS the paper quotes below Eq. (1).
"""

QUANTUM_RESISTANCE = 1.0 / QUANTUM_CONDUCTANCE
"""Resistance quantum ``h / 2 e^2``, approximately 12.9 kOhm (Eq. 4 text)."""

FERMI_VELOCITY = 8.0e5
"""Fermi velocity of graphene/CNT pi electrons in metre per second."""

QUANTUM_CAPACITANCE_PER_CHANNEL = 2.0 * ELEMENTARY_CHARGE**2 / (PLANCK * FERMI_VELOCITY)
"""Quantum capacitance per conducting channel in farad per metre.

Evaluates to ~96.8 aF/um, matching the 96.5 aF/um value of Eq. (5)
(difference is the rounding of the Fermi velocity used by the authors).
"""

KINETIC_INDUCTANCE_PER_CHANNEL = PLANCK / (2.0 * ELEMENTARY_CHARGE**2 * FERMI_VELOCITY)
"""Kinetic inductance per conducting channel in henry per metre (~16 nH/um)."""

# --- graphene / CNT lattice -------------------------------------------------

CC_BOND_LENGTH = 0.142e-9
"""Carbon-carbon bond length ``a_cc`` in metre."""

GRAPHENE_LATTICE_CONSTANT = CC_BOND_LENGTH * math.sqrt(3.0)
"""Graphene lattice constant ``a = sqrt(3) a_cc`` (~0.246 nm) in metre."""

TB_HOPPING_EV = 2.7
"""Nearest-neighbour pi-orbital tight-binding hopping energy in eV."""

VDW_SHELL_PITCH = 0.34e-9
"""Inter-shell (van der Waals) spacing of a MWCNT in metre."""

MFP_DIAMETER_RATIO = 1000.0
"""Mean free path over diameter for a metallic shell at 300 K.

The Naeemi-Meindl compact model (paper reference [19]) takes the electron
mean free path of an undamaged metallic shell as approximately 1000 times
its diameter at room temperature.
"""

# --- copper reference values ------------------------------------------------

COPPER_BULK_RESISTIVITY = 1.72e-8
"""Bulk copper resistivity at 300 K in ohm metre (1.72 uOhm cm)."""

COPPER_MEAN_FREE_PATH = 39.0e-9
"""Electron mean free path of bulk copper at 300 K in metre."""

COPPER_THERMAL_CONDUCTIVITY = 385.0
"""Thermal conductivity of copper in watt per metre kelvin (paper Sec. I)."""

COPPER_EM_CURRENT_DENSITY_LIMIT = 1.0e10
"""Electromigration-limited current density of Cu in ampere per square metre.

The paper quotes 1e6 A/cm^2, i.e. 1e10 A/m^2.
"""

CNT_MAX_CURRENT_DENSITY = 1.0e13
"""Breakdown current density of metallic SWCNT bundles in ampere per square metre.

The paper quotes 1e9 A/cm^2, i.e. 1e13 A/m^2.
"""

CNT_THERMAL_CONDUCTIVITY_RANGE = (3000.0, 10000.0)
"""Room-temperature thermal conductivity range of SWCNT bundles in W/(m K)."""

CNT_MAX_CURRENT_PER_TUBE = 25.0e-6
"""Maximum current carried by a single ~1 nm CNT in ampere (20-25 uA, Sec. I)."""

CU_REFERENCE_LINE_MAX_CURRENT = 50.0e-6
"""Maximum current of the paper's reference 100 nm x 50 nm Cu line in ampere."""

MIN_CNT_DENSITY_FOR_DELAY = 0.096e18
"""Minimum CNT areal density (tubes per square metre) required for pure CNT
interconnects to beat Cu on resistance, quoted as 0.096 nm^-2 in Sec. I."""
