"""Circuit-level simulation substrate for the Figs. 11-12 benchmark.

The paper benchmarks doped MWCNT interconnects by placing them between CMOS
45 nm inverters and measuring propagation delay in a SPICE-class simulator.
This subpackage provides the equivalent machinery:

* :mod:`repro.circuit.elements` -- linear elements and source waveforms,
* :mod:`repro.circuit.mosfet` -- an analytic square-law MOSFET large-signal
  model with smooth Newton stamps,
* :mod:`repro.circuit.technology` -- 45 nm / 14 nm technology-node parameters,
* :mod:`repro.circuit.netlist` -- the circuit container (nodes, elements,
  SPICE-like export),
* :mod:`repro.circuit.mna` -- modified nodal analysis assembly (dense),
* :mod:`repro.circuit.compiled` -- compiled sparse stamping with
  factorization reuse (the fast path for large circuits),
* :mod:`repro.circuit.dc` -- Newton DC operating point,
* :mod:`repro.circuit.transient` -- backward-Euler / trapezoidal transient,
* :mod:`repro.circuit.inverter` -- CMOS inverter cells and chains,
* :mod:`repro.circuit.rcline` -- distributed RC ladder expansion of
  interconnect lines,
* :mod:`repro.circuit.delay` -- propagation-delay and slew measurement.
"""

from repro.circuit.elements import (
    Capacitor,
    CurrentSource,
    Inductor,
    PieceWiseLinear,
    Pulse,
    Resistor,
    Step,
    VoltageSource,
)
from repro.circuit.compiled import (
    SPARSE_SIZE_THRESHOLD,
    CompiledMNA,
    resolve_backend,
    solver_backend,
)
from repro.circuit.netlist import Circuit
from repro.circuit.mosfet import MOSFET, MOSFETParameters
from repro.circuit.technology import TechnologyNode, NODE_45NM, NODE_14NM
from repro.circuit.inverter import Inverter
from repro.circuit.dc import dc_operating_point
from repro.circuit.transient import TransientResult, transient_analysis
from repro.circuit.rcline import add_rc_ladder
from repro.circuit.delay import (
    crossing_time,
    propagation_delay,
    rise_time,
    measure_inverter_line_delay,
)

__all__ = [
    "Resistor",
    "Capacitor",
    "Inductor",
    "VoltageSource",
    "CurrentSource",
    "Step",
    "Pulse",
    "PieceWiseLinear",
    "Circuit",
    "CompiledMNA",
    "SPARSE_SIZE_THRESHOLD",
    "resolve_backend",
    "solver_backend",
    "MOSFET",
    "MOSFETParameters",
    "TechnologyNode",
    "NODE_45NM",
    "NODE_14NM",
    "Inverter",
    "dc_operating_point",
    "transient_analysis",
    "TransientResult",
    "add_rc_ladder",
    "crossing_time",
    "propagation_delay",
    "rise_time",
    "measure_inverter_line_delay",
]
