"""Modified nodal analysis (MNA) assembly (dense reference path).

The assembler maps a :class:`~repro.circuit.netlist.Circuit` onto the dense
MNA matrix equation ``A x = b`` where ``x`` stacks the non-ground node
voltages followed by the branch currents of the independent voltage sources.
Nonlinear MOSFETs are handled by Newton iteration: each call to
:meth:`MNAAssembler.assemble` linearises them around the supplied operating
point, so repeated solves converge to the nonlinear solution.

This is the *reference* implementation: every stamp is written out
explicitly, one Python statement per matrix entry, which makes it the
ground truth the compiled sparse path
(:class:`repro.circuit.compiled.CompiledMNA` -- topology compiled once,
values refreshed per step, LU factorizations reused) is parity-tested
against.  It is also the faster backend below
:data:`~repro.circuit.compiled.SPARSE_SIZE_THRESHOLD` unknowns, where a
dense LAPACK solve on a contiguous array beats any sparse setup, so
:func:`repro.circuit.transient.transient_analysis` still routes small
circuits (and :mod:`repro.circuit.dc` all one-shot DC solves) through it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.netlist import Circuit, is_ground

GMIN = 1.0e-12
"""Minimum conductance from every node to ground (keeps matrices regular)."""


@dataclass
class CompanionState:
    """Dynamic-element state carried between transient time steps.

    Attributes
    ----------
    capacitor_voltages:
        Voltage across each capacitor at the previous accepted time point.
    capacitor_currents:
        Current through each capacitor at the previous accepted time point
        (needed by the trapezoidal rule).
    inductor_currents:
        Current through each inductor at the previous accepted time point.
    inductor_voltages:
        Voltage across each inductor at the previous accepted time point.
    """

    capacitor_voltages: dict[str, float]
    capacitor_currents: dict[str, float]
    inductor_currents: dict[str, float]
    inductor_voltages: dict[str, float]

    @classmethod
    def initial(cls, circuit: Circuit) -> "CompanionState":
        """State before the first time step (element initial conditions)."""
        return cls(
            capacitor_voltages={c.name: c.initial_voltage for c in circuit.capacitors},
            capacitor_currents={c.name: 0.0 for c in circuit.capacitors},
            inductor_currents={l.name: l.initial_current for l in circuit.inductors},
            inductor_voltages={l.name: 0.0 for l in circuit.inductors},
        )


class MNAAssembler:
    """Maps a circuit onto dense MNA matrices."""

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self.node_names = circuit.nodes()
        self._node_index = {name: i for i, name in enumerate(self.node_names)}
        self.n_nodes = len(self.node_names)
        self.n_vsources = len(circuit.voltage_sources)
        self.size = self.n_nodes + self.n_vsources

    # --- index helpers --------------------------------------------------------------

    def node_index(self, name: str) -> int | None:
        """Matrix row/column of a node, or None for ground."""
        if is_ground(name):
            return None
        try:
            return self._node_index[name]
        except KeyError:
            raise KeyError(f"node {name!r} is not part of the circuit") from None

    def vsource_index(self, position: int) -> int:
        """Matrix row/column of the ``position``-th voltage-source branch current."""
        return self.n_nodes + position

    def node_voltage(self, solution: np.ndarray, name: str) -> float:
        """Voltage of a node in a solution vector (0 for ground)."""
        index = self.node_index(name)
        return 0.0 if index is None else float(solution[index])

    def branch_current(self, solution: np.ndarray, source_name: str) -> float:
        """Current through a named voltage source in a solution vector."""
        for position, source in enumerate(self.circuit.voltage_sources):
            if source.name == source_name:
                return float(solution[self.vsource_index(position)])
        raise KeyError(f"no voltage source named {source_name!r}")

    # --- stamping helpers ----------------------------------------------------------------

    @staticmethod
    def _stamp_conductance(matrix: np.ndarray, a: int | None, b: int | None, g: float) -> None:
        if a is not None:
            matrix[a, a] += g
        if b is not None:
            matrix[b, b] += g
        if a is not None and b is not None:
            matrix[a, b] -= g
            matrix[b, a] -= g

    @staticmethod
    def _stamp_current(rhs: np.ndarray, a: int | None, b: int | None, current: float) -> None:
        """Stamp a current source pushing ``current`` from node ``a`` into node ``b``."""
        if a is not None:
            rhs[a] -= current
        if b is not None:
            rhs[b] += current

    # --- assembly -----------------------------------------------------------------------------

    def assemble(
        self,
        time: float,
        guess: np.ndarray,
        state: CompanionState | None = None,
        dt: float | None = None,
        method: str = "trapezoidal",
        capacitors_open: bool = False,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Assemble the linearised MNA system ``A x = b``.

        Parameters
        ----------
        time:
            Simulation time used to evaluate source waveforms.
        guess:
            Current Newton estimate of the solution vector (used to linearise
            the MOSFETs).
        state:
            Previous-step dynamic state; required unless ``capacitors_open``.
        dt:
            Time-step size; required unless ``capacitors_open``.
        method:
            ``"trapezoidal"`` or ``"backward_euler"`` companion models.
        capacitors_open:
            DC mode -- capacitors are removed and inductors become shorts
            (modelled as very large conductances).
        """
        if method not in ("trapezoidal", "backward_euler"):
            raise ValueError(f"unknown integration method {method!r}")
        if not capacitors_open and (state is None or dt is None or dt <= 0):
            raise ValueError("transient assembly needs a previous state and a positive dt")

        matrix = np.zeros((self.size, self.size))
        rhs = np.zeros(self.size)

        # gmin keeps nodes that are only touched by gates / open capacitors regular.
        for i in range(self.n_nodes):
            matrix[i, i] += GMIN

        for resistor in self.circuit.resistors:
            self._stamp_conductance(
                matrix,
                self.node_index(resistor.a),
                self.node_index(resistor.b),
                1.0 / resistor.resistance,
            )

        for capacitor in self.circuit.capacitors:
            if capacitors_open or capacitor.capacitance == 0.0:
                continue
            a = self.node_index(capacitor.a)
            b = self.node_index(capacitor.b)
            v_prev = state.capacitor_voltages[capacitor.name]
            i_prev = state.capacitor_currents[capacitor.name]
            if method == "backward_euler":
                geq = capacitor.capacitance / dt
                ieq = geq * v_prev
            else:
                geq = 2.0 * capacitor.capacitance / dt
                ieq = geq * v_prev + i_prev
            self._stamp_conductance(matrix, a, b, geq)
            # The companion current source pushes ieq from b into a (it opposes
            # the conductance term so that v = v_prev gives zero current).
            self._stamp_current(rhs, b, a, ieq)

        for inductor in self.circuit.inductors:
            a = self.node_index(inductor.a)
            b = self.node_index(inductor.b)
            if capacitors_open:
                # DC: an inductor is a short; model as a large conductance.
                self._stamp_conductance(matrix, a, b, 1.0e9)
                continue
            i_prev = state.inductor_currents[inductor.name]
            v_prev = state.inductor_voltages[inductor.name]
            if method == "backward_euler":
                geq = dt / inductor.inductance
                ieq = i_prev
            else:
                geq = dt / (2.0 * inductor.inductance)
                ieq = i_prev + geq * v_prev
            self._stamp_conductance(matrix, a, b, geq)
            self._stamp_current(rhs, a, b, ieq)

        for source in self.circuit.current_sources:
            self._stamp_current(
                rhs,
                self.node_index(source.positive),
                self.node_index(source.negative),
                source.value(time),
            )

        for position, source in enumerate(self.circuit.voltage_sources):
            row = self.vsource_index(position)
            p = self.node_index(source.positive)
            n = self.node_index(source.negative)
            if p is not None:
                matrix[p, row] += 1.0
                matrix[row, p] += 1.0
            if n is not None:
                matrix[n, row] -= 1.0
                matrix[row, n] -= 1.0
            rhs[row] += source.value(time)

        for mosfet in self.circuit.mosfets:
            d = self.node_index(mosfet.drain)
            g = self.node_index(mosfet.gate)
            s = self.node_index(mosfet.source)
            v_d = 0.0 if d is None else guess[d]
            v_g = 0.0 if g is None else guess[g]
            v_s = 0.0 if s is None else guess[s]
            i_ds, gm, gds = mosfet.evaluate(v_g - v_s, v_d - v_s)

            # Linearised drain current:
            # i = i_ds + gm (v_gs - v_gs0) + gds (v_ds - v_ds0)
            #   = gm v_g + gds v_d - (gm + gds) v_s + i_eq
            i_eq = i_ds - gm * (v_g - v_s) - gds * (v_d - v_s)

            # Conductance part: current leaves the drain node, enters the source node.
            if d is not None:
                if g is not None:
                    matrix[d, g] += gm
                if d is not None:
                    matrix[d, d] += gds
                if s is not None:
                    matrix[d, s] -= gm + gds
            if s is not None:
                if g is not None:
                    matrix[s, g] -= gm
                if d is not None:
                    matrix[s, d] -= gds
                matrix[s, s] += gm + gds
            # Constant part of the linearisation acts like a current source
            # pushing i_eq from drain into source.
            self._stamp_current(rhs, d, s, i_eq)

        return matrix, rhs

    # --- dynamic-state update ----------------------------------------------------------------------

    def update_state(
        self,
        solution: np.ndarray,
        state: CompanionState,
        dt: float,
        method: str = "trapezoidal",
    ) -> CompanionState:
        """Compute the dynamic-element state after an accepted time step."""
        new_cap_v: dict[str, float] = {}
        new_cap_i: dict[str, float] = {}
        for capacitor in self.circuit.capacitors:
            v_now = self.node_voltage(solution, capacitor.a) - self.node_voltage(
                solution, capacitor.b
            )
            v_prev = state.capacitor_voltages[capacitor.name]
            i_prev = state.capacitor_currents[capacitor.name]
            if method == "backward_euler":
                i_now = capacitor.capacitance / dt * (v_now - v_prev)
            else:
                i_now = 2.0 * capacitor.capacitance / dt * (v_now - v_prev) - i_prev
            new_cap_v[capacitor.name] = v_now
            new_cap_i[capacitor.name] = i_now

        new_ind_i: dict[str, float] = {}
        new_ind_v: dict[str, float] = {}
        for inductor in self.circuit.inductors:
            v_now = self.node_voltage(solution, inductor.a) - self.node_voltage(
                solution, inductor.b
            )
            i_prev = state.inductor_currents[inductor.name]
            v_prev = state.inductor_voltages[inductor.name]
            if method == "backward_euler":
                i_now = i_prev + dt / inductor.inductance * v_now
            else:
                i_now = i_prev + dt / (2.0 * inductor.inductance) * (v_now + v_prev)
            new_ind_i[inductor.name] = i_now
            new_ind_v[inductor.name] = v_now

        return CompanionState(
            capacitor_voltages=new_cap_v,
            capacitor_currents=new_cap_i,
            inductor_currents=new_ind_i,
            inductor_voltages=new_ind_v,
        )


def newton_solve(
    assembler: MNAAssembler,
    time: float,
    initial_guess: np.ndarray,
    state: CompanionState | None = None,
    dt: float | None = None,
    method: str = "trapezoidal",
    capacitors_open: bool = False,
    max_iterations: int = 60,
    tolerance: float = 1.0e-9,
    damping_limit: float = 1.0,
) -> np.ndarray:
    """Newton-Raphson solve of the (possibly nonlinear) MNA system.

    Parameters
    ----------
    assembler:
        The circuit's :class:`MNAAssembler`.
    time:
        Simulation time for source evaluation.
    initial_guess:
        Starting solution vector (previous time point or zeros).
    state, dt, method, capacitors_open:
        Passed through to :meth:`MNAAssembler.assemble`.
    max_iterations:
        Newton iteration cap.
    tolerance:
        Convergence threshold on the infinity norm of the update (volt).
    damping_limit:
        Maximum per-iteration change of any unknown (volt / ampere); larger
        proposed updates are scaled down, which stabilises the MOSFET
        exponential sub-threshold region.

    Raises
    ------
    RuntimeError
        If the iteration does not converge.
    """
    solution = initial_guess.astype(float).copy()
    nonlinear = bool(assembler.circuit.mosfets)

    for _ in range(max_iterations):
        matrix, rhs = assembler.assemble(
            time, solution, state=state, dt=dt, method=method, capacitors_open=capacitors_open
        )
        try:
            new_solution = np.linalg.solve(matrix, rhs)
        except np.linalg.LinAlgError as error:
            raise RuntimeError(f"singular MNA matrix at t={time}: {error}") from error

        if not nonlinear:
            # Linear circuits are solved exactly in one step; damping would
            # only distort the solution.
            return new_solution

        delta = new_solution - solution
        max_delta = float(np.max(np.abs(delta))) if delta.size else 0.0
        if max_delta > damping_limit:
            delta *= damping_limit / max_delta
            solution = solution + delta
        else:
            solution = new_solution

        if max_delta < tolerance:
            return solution

    raise RuntimeError(
        f"Newton iteration did not converge at t={time} after {max_iterations} iterations"
    )
