"""Compiled sparse MNA: one-time topology compilation, cheap per-step updates.

The dense :class:`~repro.circuit.mna.MNAAssembler` re-stamps a full
``np.zeros((size, size))`` matrix element-by-element in Python on every call,
which dominates the wall-clock of transient analyses the moment a line is
expanded into more than a few dozen RC segments.  This module splits the work
the way production SPICE engines do:

*compile* (once per circuit and time step)
    Walk the netlist a single time and record, for every stamp the dense
    assembler would make, its matrix coordinate and -- when the value cannot
    change during the analysis -- the value itself.  For a fixed time step
    the companion-model conductances of capacitors and inductors are as
    static as the resistors, so the only *dynamic* matrix entries left are
    the MOSFET linearisations.  The coordinate list is converted to a CSR
    pattern once, together with a gather map from stamp slots to CSR data
    positions.

*update* (per time step / Newton iteration)
    Refresh the few dynamic values (MOSFET ``gm``/``gds`` stamps into the
    preallocated value buffer, companion currents and source values into the
    right-hand side) and rebuild ``csr.data`` with one ``bincount`` -- no
    Python loop over the topology, no allocation proportional to
    ``size**2``.

*solve* (per time step / Newton iteration)
    ``scipy.sparse.linalg.splu``.  For a linear circuit (no MOSFETs) the
    matrix values cannot change between steps, so the numeric LU
    factorization is computed once and reused for every remaining step --
    each step then costs one right-hand-side build plus two sparse
    triangular solves.  Nonlinear circuits keep the compiled pattern (and
    all static values) and factorize through a precomputed CSC twin of the
    pattern -- the CSR->CSC conversion happens once at compile time, not
    per Newton iteration.  How often the *numeric* factorization is redone
    is a :class:`SolverOptions` policy:

    ``newton="exact"`` (default)
        Refactorize every iteration -- the historical, bitwise-stable
        semantics every cache entry and parity test was recorded under.
    ``newton="freeze"``
        Modified Newton: one LU is reused across iterations *and* steps as
        the update ``delta = LU^-1 (b(x) - A(x) x)``.  The fixed point of
        that update satisfies ``A(x) x = b(x)`` exactly, so a stale
        Jacobian can only slow convergence, never bend the answer; slow
        contraction (or an iteration budget) triggers a refresh from the
        current iterate.  Opt-in because the iterates (hence the last few
        bits of the result) differ from exact mode -- parity vs. the dense
        reference is gated at 1e-9 by the perf harness and the solver
        parity suite.

Backend selection is centralised in :func:`resolve_backend`: circuits below
:data:`SPARSE_SIZE_THRESHOLD` unknowns keep the exact legacy dense path
(where dense LAPACK wins), larger ones take the compiled sparse path, and
:func:`solver_backend` lets tests force either side to assert parity.
:func:`solver_options` is the matching override for the Newton policy, so a
whole call stack (``transient_analysis`` -> ``measure_inverter_line_delay``
-> registry experiments) can be flipped to freeze mode without threading the
knob through every signature.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from time import perf_counter
from dataclasses import dataclass
from typing import Iterator

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.circuit.mna import GMIN, CompanionState, MNAAssembler
from repro.circuit.netlist import Circuit

SPARSE_SIZE_THRESHOLD = 64
"""Number of MNA unknowns above which the compiled sparse path is selected.

Below this, a dense LAPACK solve on a contiguous array beats the sparse
setup cost; above it, Python re-stamping plus dense LU lose badly to the
compiled update + factorization reuse.  The crossover was measured with
``benchmarks/perf`` (see docs/PERFORMANCE.md)."""

BACKENDS = ("dense", "sparse")

_BACKEND_OVERRIDE: str | None = None


def resolve_backend(size: int, backend: str | None = None) -> str:
    """Pick the MNA solver backend for a system of ``size`` unknowns.

    Precedence: an explicit ``backend`` argument, then an active
    :func:`solver_backend` override, then the size heuristic against
    :data:`SPARSE_SIZE_THRESHOLD`.
    """
    chosen = backend if backend is not None else _BACKEND_OVERRIDE
    if chosen is not None:
        if chosen not in BACKENDS:
            raise ValueError(f"unknown MNA backend {chosen!r}; use one of {BACKENDS}")
        return chosen
    return "sparse" if size >= SPARSE_SIZE_THRESHOLD else "dense"


@contextmanager
def solver_backend(backend: str | None) -> Iterator[None]:
    """Force every transient analysis in the block onto one backend.

    ``None`` restores automatic (size-based) selection.  The parity tests use
    this to run identical workloads through both paths::

        with solver_backend("dense"):
            reference = transient_analysis(circuit, stop, dt)
        with solver_backend("sparse"):
            fast = transient_analysis(circuit, stop, dt)
    """
    if backend is not None and backend not in BACKENDS:
        raise ValueError(f"unknown MNA backend {backend!r}; use one of {BACKENDS}")
    global _BACKEND_OVERRIDE
    previous = _BACKEND_OVERRIDE
    _BACKEND_OVERRIDE = backend
    try:
        yield
    finally:
        _BACKEND_OVERRIDE = previous


NEWTON_MODES = ("exact", "freeze")


@dataclass(frozen=True)
class SolverOptions:
    """Newton policy for the compiled sparse path (see module docstring).

    ``newton="exact"`` refactorizes every iteration and is bitwise-stable
    with the historical behaviour; ``newton="freeze"`` reuses one numeric
    factorization across iterations and steps (modified Newton) and
    refreshes it when the per-iteration contraction of ``max|delta|`` is
    slower than ``refresh_contraction`` or a single step spends more than
    ``max_frozen_iterations`` iterations on the same factorization.
    """

    newton: str = "exact"
    refresh_contraction: float = 0.25
    max_frozen_iterations: int = 10

    def __post_init__(self) -> None:
        if self.newton not in NEWTON_MODES:
            raise ValueError(
                f"unknown newton mode {self.newton!r}; use one of {NEWTON_MODES}"
            )
        if not 0.0 < self.refresh_contraction < 1.0:
            raise ValueError("refresh_contraction must be in (0, 1)")
        if self.max_frozen_iterations < 1:
            raise ValueError("max_frozen_iterations must be >= 1")


DEFAULT_SOLVER_OPTIONS = SolverOptions()

_SOLVER_OPTIONS_OVERRIDE: SolverOptions | None = None


def resolve_solver_options(options: SolverOptions | None = None) -> SolverOptions:
    """Pick the Newton policy: explicit argument, then any active
    :func:`solver_options` override, then the exact-mode default."""
    if options is not None:
        return options
    if _SOLVER_OPTIONS_OVERRIDE is not None:
        return _SOLVER_OPTIONS_OVERRIDE
    return DEFAULT_SOLVER_OPTIONS


@contextmanager
def solver_options(options: SolverOptions | None) -> Iterator[None]:
    """Force every compiled solve in the block onto one Newton policy.

    The analogue of :func:`solver_backend` for :class:`SolverOptions`:
    call sites that pass ``solver_opts=None`` (the default everywhere)
    pick up the override, so a whole experiment stack can be flipped to
    freeze mode without changing any signature::

        with solver_options(SolverOptions(newton="freeze")):
            fast = measure_inverter_line_delay(line, backend="sparse")
    """
    global _SOLVER_OPTIONS_OVERRIDE
    previous = _SOLVER_OPTIONS_OVERRIDE
    _SOLVER_OPTIONS_OVERRIDE = options
    try:
        yield
    finally:
        _SOLVER_OPTIONS_OVERRIDE = previous


@dataclass
class SolverStats:
    """Counters a :class:`CompiledMNA` accumulates across solve calls.

    ``factorizations`` counts numeric LU factorizations, ``iterations``
    Newton iterations, ``steps`` calls to :meth:`CompiledMNA.solve_step`
    and ``refreshes`` freeze-mode refactorizations triggered by slow
    contraction or the per-step iteration budget.  The reuse tests and the
    ``newton_reuse`` perf case assert against these.
    """

    factorizations: int = 0
    iterations: int = 0
    steps: int = 0
    refreshes: int = 0

    def as_dict(self) -> dict[str, int]:
        """Counter snapshot (feeds the ``repro.obs`` solver metrics and spans)."""
        return {
            "factorizations": self.factorizations,
            "iterations": self.iterations,
            "steps": self.steps,
            "refreshes": self.refreshes,
        }


# Context-local so concurrently profiled blocks (one per thread-pool worker
# under Engine(executor="thread", profile=True)) each accumulate their own
# solver time instead of clobbering a shared module global.
_PROFILE_ACCUMULATOR: ContextVar[dict[str, float] | None] = ContextVar(
    "repro_profile_accumulator", default=None
)


@contextmanager
def profiled_solves() -> Iterator[dict[str, float]]:
    """Accumulate compiled-solver wall time for the duration of the block.

    Yields a dict whose ``"solve_s"`` entry collects the wall-clock seconds
    spent inside :meth:`CompiledMNA.solve_step` (assembly, factorization and
    triangular solves) while the block is active.  The engine's ``profile``
    mode wraps each experiment execution in this to split a sweep point's
    wall time into solver vs. everything-else; when no block is active the
    solver pays a single ``is None`` check per step.  The accumulator is
    context-local (see above), so profiled blocks running concurrently in
    pool threads stay independent.
    """
    token = _PROFILE_ACCUMULATOR.set({"solve_s": 0.0})
    try:
        yield _PROFILE_ACCUMULATOR.get()
    finally:
        _PROFILE_ACCUMULATOR.reset(token)


def _gather(solution: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Solution values at ``indices``; entries of ``-1`` (ground) read 0."""
    return np.where(indices >= 0, solution[indices], 0.0)


@dataclass
class ArrayState:
    """Vectorised companion-model state (array twin of :class:`CompanionState`).

    Arrays are aligned with ``circuit.capacitors`` / ``circuit.inductors``
    order, which lets the per-step state update run as four numpy
    expressions instead of a Python loop over element dicts.
    """

    capacitor_voltages: np.ndarray
    capacitor_currents: np.ndarray
    inductor_currents: np.ndarray
    inductor_voltages: np.ndarray

    @classmethod
    def zeros(cls, circuit: Circuit) -> "ArrayState":
        """All-zero state (DC solves and cold transient starts)."""
        n_cap = len(circuit.capacitors)
        n_ind = len(circuit.inductors)
        return cls(
            capacitor_voltages=np.zeros(n_cap),
            capacitor_currents=np.zeros(n_cap),
            inductor_currents=np.zeros(n_ind),
            inductor_voltages=np.zeros(n_ind),
        )

    @classmethod
    def from_companion(cls, state: CompanionState, circuit: Circuit) -> "ArrayState":
        """Pack a dict-based :class:`CompanionState` into aligned arrays."""
        return cls(
            capacitor_voltages=np.array(
                [state.capacitor_voltages[c.name] for c in circuit.capacitors]
            ),
            capacitor_currents=np.array(
                [state.capacitor_currents[c.name] for c in circuit.capacitors]
            ),
            inductor_currents=np.array(
                [state.inductor_currents[l.name] for l in circuit.inductors]
            ),
            inductor_voltages=np.array(
                [state.inductor_voltages[l.name] for l in circuit.inductors]
            ),
        )

    def to_companion(self, circuit: Circuit) -> CompanionState:
        """Unpack back into the dict-based state (debugging / interop)."""
        return CompanionState(
            capacitor_voltages={
                c.name: float(v) for c, v in zip(circuit.capacitors, self.capacitor_voltages)
            },
            capacitor_currents={
                c.name: float(i) for c, i in zip(circuit.capacitors, self.capacitor_currents)
            },
            inductor_currents={
                l.name: float(i) for l, i in zip(circuit.inductors, self.inductor_currents)
            },
            inductor_voltages={
                l.name: float(v) for l, v in zip(circuit.inductors, self.inductor_voltages)
            },
        )


class CompiledMNA:
    """Sparse MNA system compiled for one circuit at a fixed transient step.

    Parameters
    ----------
    circuit:
        The circuit to compile.
    dt:
        Fixed transient time-step size in second (companion conductances are
        baked into the static value buffer, which is what makes the per-step
        update cheap).  ``None`` is allowed only with ``capacitors_open``.
    method:
        ``"trapezoidal"`` or ``"backward_euler"``, matching
        :meth:`MNAAssembler.assemble`.
    assembler:
        An existing :class:`MNAAssembler` of the same circuit to reuse for
        index bookkeeping (avoids walking the netlist twice); one is built
        when omitted.
    capacitors_open:
        DC mode, mirroring ``MNAAssembler.assemble(capacitors_open=True)``:
        capacitors are removed, inductors become shorts (large
        conductances), no companion models are stamped.  The compiled
        system then solves the operating point
        (:func:`repro.circuit.dc.dc_operating_point` routes large circuits
        through it); :meth:`update_state` is transient-only and raises.
    """

    def __init__(
        self,
        circuit: Circuit,
        dt: float | None,
        method: str = "trapezoidal",
        assembler: MNAAssembler | None = None,
        capacitors_open: bool = False,
    ):
        if method not in ("trapezoidal", "backward_euler"):
            raise ValueError(f"unknown integration method {method!r}")
        if not capacitors_open and (dt is None or dt <= 0):
            raise ValueError("compiled transient assembly needs a positive dt")
        self.circuit = circuit
        self.base = assembler if assembler is not None else MNAAssembler(circuit)
        self.size = self.base.size
        self.dt = dt
        self.method = method
        self.capacitors_open = capacitors_open
        self._trapezoidal = method == "trapezoidal"
        self.nonlinear = bool(circuit.mosfets)
        self._lu = None  # cached numeric factorization (linear circuits only)
        self._newton_lu = None  # frozen factorization (freeze-mode Newton)
        self.stats = SolverStats()

        index = self.base.node_index
        rows: list[int] = []
        cols: list[int] = []
        vals: list[float] = []

        def stamp_conductance(a: int | None, b: int | None, g: float) -> None:
            if a is not None:
                rows.append(a), cols.append(a), vals.append(g)
            if b is not None:
                rows.append(b), cols.append(b), vals.append(g)
            if a is not None and b is not None:
                rows.append(a), cols.append(b), vals.append(-g)
                rows.append(b), cols.append(a), vals.append(-g)

        for i in range(self.base.n_nodes):
            rows.append(i), cols.append(i), vals.append(GMIN)

        for resistor in circuit.resistors:
            stamp_conductance(index(resistor.a), index(resistor.b), 1.0 / resistor.resistance)

        # Capacitor companion conductances: static for a fixed dt.  The rhs
        # companion current changes per step, so record the index/geq arrays
        # the vectorised rhs build needs.  Zero-capacitance elements are
        # skipped exactly like the dense assembler skips them.
        cap_active: list[int] = []
        cap_a: list[int] = []
        cap_b: list[int] = []
        cap_geq: list[float] = []
        for position, capacitor in enumerate(circuit.capacitors):
            cap_a.append(-1 if index(capacitor.a) is None else index(capacitor.a))
            cap_b.append(-1 if index(capacitor.b) is None else index(capacitor.b))
            if capacitors_open or capacitor.capacitance == 0.0:
                continue
            geq = (
                2.0 * capacitor.capacitance / dt
                if self._trapezoidal
                else capacitor.capacitance / dt
            )
            stamp_conductance(index(capacitor.a), index(capacitor.b), geq)
            cap_active.append(position)
            cap_geq.append(geq)
        self._cap_a = np.asarray(cap_a, dtype=np.intp)
        self._cap_b = np.asarray(cap_b, dtype=np.intp)
        self._cap_active = np.asarray(cap_active, dtype=np.intp)
        self._cap_geq = np.asarray(cap_geq)
        self._cap_c = np.array([c.capacitance for c in circuit.capacitors])

        ind_a: list[int] = []
        ind_b: list[int] = []
        ind_geq: list[float] = []
        for inductor in circuit.inductors:
            if capacitors_open:
                # DC: an inductor is a short, modelled as a large conductance
                # exactly like the dense assembler; no companion state.
                stamp_conductance(index(inductor.a), index(inductor.b), 1.0e9)
                continue
            geq = (
                dt / (2.0 * inductor.inductance)
                if self._trapezoidal
                else dt / inductor.inductance
            )
            stamp_conductance(index(inductor.a), index(inductor.b), geq)
            ind_a.append(-1 if index(inductor.a) is None else index(inductor.a))
            ind_b.append(-1 if index(inductor.b) is None else index(inductor.b))
            ind_geq.append(geq)
        self._ind_a = np.asarray(ind_a, dtype=np.intp)
        self._ind_b = np.asarray(ind_b, dtype=np.intp)
        self._ind_geq = np.asarray(ind_geq)
        self._ind_l = np.array([l.inductance for l in circuit.inductors])

        self._vsource_rows: list[tuple[int, object]] = []
        for position, source in enumerate(circuit.voltage_sources):
            row = self.base.vsource_index(position)
            p = index(source.positive)
            n = index(source.negative)
            if p is not None:
                rows.append(p), cols.append(row), vals.append(1.0)
                rows.append(row), cols.append(p), vals.append(1.0)
            if n is not None:
                rows.append(n), cols.append(row), vals.append(-1.0)
                rows.append(row), cols.append(n), vals.append(-1.0)
            self._vsource_rows.append((row, source))

        self._isources = [
            (index(s.positive), index(s.negative), s) for s in circuit.current_sources
        ]

        # MOSFET stamps occupy the dynamic tail of the value buffer; each
        # entry remembers which linearised coefficient fills it per Newton
        # iteration (codes 0-5: +gm, +gds, -(gm+gds), -gm, -gds, +(gm+gds),
        # mirroring MNAAssembler.assemble exactly).
        self._static_nnz = len(vals)
        self._mosfets: list[tuple[int | None, int | None, int | None, list[int]]] = []
        for mosfet in circuit.mosfets:
            d, g, s = index(mosfet.drain), index(mosfet.gate), index(mosfet.source)
            codes: list[int] = []

            def stamp_mosfet(row: int, col: int, code: int) -> None:
                rows.append(row), cols.append(col), vals.append(0.0)
                codes.append(code)

            if d is not None:
                if g is not None:
                    stamp_mosfet(d, g, 0)  # +gm
                stamp_mosfet(d, d, 1)  # +gds
                if s is not None:
                    stamp_mosfet(d, s, 2)  # -(gm + gds)
            if s is not None:
                if g is not None:
                    stamp_mosfet(s, g, 3)  # -gm
                if d is not None:
                    stamp_mosfet(s, d, 4)  # -gds
                stamp_mosfet(s, s, 5)  # +(gm + gds)
            self._mosfets.append((d, g, s, codes))

        self._values = np.asarray(vals)
        row_array = np.asarray(rows, dtype=np.intp)
        col_array = np.asarray(cols, dtype=np.intp)

        # Collapse duplicate coordinates into the canonical CSR pattern once;
        # ``_slot_to_csr`` maps every stamp slot to its data position so the
        # per-step rebuild is a single bincount over the value buffer.
        linear = row_array * self.size + col_array
        unique, inverse = np.unique(linear, return_inverse=True)
        self._slot_to_csr = inverse
        self._nnz = unique.size
        self._csr = sp.csr_matrix(
            (np.zeros(self._nnz), (unique // self.size, unique % self.size)),
            shape=(self.size, self.size),
        )
        self._csr.sort_indices()
        if self._csr.nnz != self._nnz:  # pragma: no cover - structural invariant
            raise AssertionError("CSR pattern lost entries during compilation")
        if self.nonlinear:
            self._static_data = np.bincount(
                self._slot_to_csr[: self._static_nnz],
                weights=self._values[: self._static_nnz],
                minlength=self._nnz,
            )
        else:
            self._csr.data[:] = np.bincount(
                self._slot_to_csr, weights=self._values, minlength=self._nnz
            )

        # The factorization wants CSC.  The pattern is static, so convert
        # once and record the CSR->CSC data permutation: refreshing the CSC
        # values is then a single gather, bitwise-identical to (and much
        # cheaper than) calling ``tocsc()`` per factorization.  The marker
        # matrix carries data *positions* through the conversion; with no
        # duplicate coordinates left, its converted data IS the permutation.
        marker = sp.csr_matrix(
            (np.arange(self._nnz, dtype=np.intp), self._csr.indices, self._csr.indptr),
            shape=(self.size, self.size),
        ).tocsc()
        self._csr_to_csc = marker.data.astype(np.intp)
        self._csc = self._csr.tocsc()

    # --- per-step update --------------------------------------------------

    def assemble(
        self, time: float, guess: np.ndarray, state: ArrayState
    ) -> tuple[sp.csr_matrix, np.ndarray]:
        """Refresh dynamic values and return the system ``(A, b)``.

        The returned matrix is the internally cached CSR instance -- callers
        must factorize/solve before the next :meth:`assemble` call.
        """
        rhs = np.zeros(self.size)

        if self._cap_active.size:
            v_prev = state.capacitor_voltages[self._cap_active]
            i_prev = state.capacitor_currents[self._cap_active]
            if self._trapezoidal:
                ieq = self._cap_geq * v_prev + i_prev
            else:
                ieq = self._cap_geq * v_prev
            # The companion source pushes ieq from b into a (see the dense
            # assembler): rhs[b] -= ieq, rhs[a] += ieq.
            a = self._cap_a[self._cap_active]
            b = self._cap_b[self._cap_active]
            np.add.at(rhs, a[a >= 0], ieq[a >= 0])
            np.add.at(rhs, b[b >= 0], -ieq[b >= 0])

        if self._ind_a.size:
            i_prev = state.inductor_currents
            if self._trapezoidal:
                ieq = i_prev + self._ind_geq * state.inductor_voltages
            else:
                ieq = i_prev
            np.add.at(rhs, self._ind_a[self._ind_a >= 0], -ieq[self._ind_a >= 0])
            np.add.at(rhs, self._ind_b[self._ind_b >= 0], ieq[self._ind_b >= 0])

        for p, n, source in self._isources:
            current = source.value(time)
            if p is not None:
                rhs[p] -= current
            if n is not None:
                rhs[n] += current

        for row, source in self._vsource_rows:
            rhs[row] += source.value(time)

        if self.nonlinear:
            tail = np.empty(self._values.size - self._static_nnz)
            offset = 0
            for mosfet, (d, g, s, codes) in zip(self.circuit.mosfets, self._mosfets):
                v_d = 0.0 if d is None else guess[d]
                v_g = 0.0 if g is None else guess[g]
                v_s = 0.0 if s is None else guess[s]
                i_ds, gm, gds = mosfet.evaluate(v_g - v_s, v_d - v_s)
                coefficients = (gm, gds, -(gm + gds), -gm, -gds, gm + gds)
                for code in codes:
                    tail[offset] = coefficients[code]
                    offset += 1
                i_eq = i_ds - gm * (v_g - v_s) - gds * (v_d - v_s)
                if d is not None:
                    rhs[d] -= i_eq
                if s is not None:
                    rhs[s] += i_eq
            self._csr.data[:] = self._static_data + np.bincount(
                self._slot_to_csr[self._static_nnz :], weights=tail, minlength=self._nnz
            )

        return self._csr, rhs

    # --- solve ------------------------------------------------------------

    def _factorize(self, time: float):
        """Numeric LU of the current matrix values through the CSC twin."""
        self._csc.data[:] = self._csr.data[self._csr_to_csc]
        try:
            lu = spla.splu(self._csc)
        except RuntimeError as error:
            raise RuntimeError(f"singular MNA matrix at t={time}: {error}") from error
        self.stats.factorizations += 1
        return lu

    def solve_step(
        self,
        time: float,
        initial_guess: np.ndarray,
        state: ArrayState,
        max_iterations: int = 60,
        tolerance: float = 1.0e-9,
        damping_limit: float = 1.0,
        options: SolverOptions | None = None,
    ) -> np.ndarray:
        """Solve one transient step (Newton iteration for nonlinear circuits).

        Mirrors :func:`repro.circuit.mna.newton_solve` -- same damping, same
        convergence test -- with the dense assemble/solve replaced by the
        compiled update plus sparse LU.  For linear circuits the cached
        factorization makes this a single pair of triangular solves.  For
        nonlinear circuits the resolved :class:`SolverOptions` decide between
        exact Newton and the frozen-factorization update.
        """
        accumulator = _PROFILE_ACCUMULATOR.get()
        if accumulator is not None:
            start = perf_counter()
            try:
                return self._solve_step_impl(
                    time, initial_guess, state, max_iterations, tolerance,
                    damping_limit, options,
                )
            finally:
                accumulator["solve_s"] += perf_counter() - start
        return self._solve_step_impl(
            time, initial_guess, state, max_iterations, tolerance, damping_limit, options
        )

    def _solve_step_impl(
        self,
        time: float,
        initial_guess: np.ndarray,
        state: ArrayState,
        max_iterations: int,
        tolerance: float,
        damping_limit: float,
        options: SolverOptions | None,
    ) -> np.ndarray:
        self.stats.steps += 1
        if not self.nonlinear:
            _, rhs = self.assemble(time, initial_guess, state)
            if self._lu is None:
                # The matrix values cannot change for a linear circuit at a
                # fixed dt: factorize once, reuse for every remaining step.
                self._lu = self._factorize(time)
            return self._lu.solve(rhs)

        opts = resolve_solver_options(options)
        if opts.newton == "freeze":
            return self._solve_step_frozen(
                time, initial_guess, state, max_iterations, tolerance, damping_limit, opts
            )

        solution = initial_guess.astype(float).copy()
        for _ in range(max_iterations):
            _, rhs = self.assemble(time, solution, state)
            lu = self._factorize(time)
            new_solution = lu.solve(rhs)
            self.stats.iterations += 1

            delta = new_solution - solution
            max_delta = float(np.max(np.abs(delta))) if delta.size else 0.0
            if max_delta > damping_limit:
                delta *= damping_limit / max_delta
                solution = solution + delta
            else:
                solution = new_solution

            if max_delta < tolerance:
                return solution

        raise RuntimeError(
            f"Newton iteration did not converge at t={time} after {max_iterations} iterations"
        )

    def _solve_step_frozen(
        self,
        time: float,
        initial_guess: np.ndarray,
        state: ArrayState,
        max_iterations: int,
        tolerance: float,
        damping_limit: float,
        opts: SolverOptions,
    ) -> np.ndarray:
        """Modified Newton: reuse one LU across iterations *and* steps.

        The frozen factorization drives the residual update
        ``delta = LU^-1 (b(x) - A(x) x)``.  Its fixed point satisfies
        ``A(x) x = b(x)`` exactly -- the same fixed point exact Newton
        converges to -- so a stale Jacobian can only slow convergence,
        never bend the answer.  When the step is easy (the vast majority:
        the previous solution is an excellent guess and the MOSFETs barely
        move) a handful of frozen iterations converge with zero
        factorizations.  When contraction of ``max|delta|`` stalls -- the
        switching region, where the Jacobian genuinely changes -- the step
        *restarts* from the initial guess with the exact refactorizing
        loop, whose last factorization then becomes the new frozen LU.
        Restarting (rather than continuing from the frozen iterate) keeps
        the refresh path inside exact Newton's damping basin, so freeze
        mode converges wherever exact mode does.
        """
        if self._newton_lu is not None:
            solution = initial_guess.astype(float).copy()
            previous_delta: float | None = None
            for _ in range(opts.max_frozen_iterations):
                matrix, rhs = self.assemble(time, solution, state)
                residual = rhs - matrix @ solution
                delta = self._newton_lu.solve(residual)
                self.stats.iterations += 1

                max_delta = float(np.max(np.abs(delta))) if delta.size else 0.0
                if max_delta > damping_limit:
                    delta = delta * (damping_limit / max_delta)
                solution = solution + delta

                if max_delta < tolerance:
                    return solution
                if (
                    previous_delta is not None
                    and max_delta > opts.refresh_contraction * previous_delta
                ):
                    break  # stalled: the frozen Jacobian is too stale
                previous_delta = max_delta
            self.stats.refreshes += 1
            self._newton_lu = None

        # Exact refactorizing loop (identical semantics to exact mode);
        # keep the last factorization frozen for the steps that follow.
        solution = initial_guess.astype(float).copy()
        for _ in range(max_iterations):
            _, rhs = self.assemble(time, solution, state)
            self._newton_lu = self._factorize(time)
            new_solution = self._newton_lu.solve(rhs)
            self.stats.iterations += 1

            delta = new_solution - solution
            max_delta = float(np.max(np.abs(delta))) if delta.size else 0.0
            if max_delta > damping_limit:
                delta *= damping_limit / max_delta
                solution = solution + delta
            else:
                solution = new_solution

            if max_delta < tolerance:
                return solution

        raise RuntimeError(
            f"Newton iteration did not converge at t={time} after {max_iterations} iterations"
        )

    # --- dynamic-state update ---------------------------------------------

    def update_state(self, solution: np.ndarray, state: ArrayState) -> ArrayState:
        """Vectorised twin of :meth:`MNAAssembler.update_state`."""
        if self.capacitors_open:
            raise RuntimeError(
                "update_state needs companion models; a DC-compiled system "
                "(capacitors_open=True) has none"
            )
        v_now_cap = _gather(solution, self._cap_a) - _gather(solution, self._cap_b)
        if self._trapezoidal:
            i_now_cap = (
                2.0 * self._cap_c / self.dt * (v_now_cap - state.capacitor_voltages)
                - state.capacitor_currents
            )
        else:
            i_now_cap = self._cap_c / self.dt * (v_now_cap - state.capacitor_voltages)

        v_now_ind = _gather(solution, self._ind_a) - _gather(solution, self._ind_b)
        if self._trapezoidal:
            i_now_ind = state.inductor_currents + self.dt / (2.0 * self._ind_l) * (
                v_now_ind + state.inductor_voltages
            )
        else:
            i_now_ind = state.inductor_currents + self.dt / self._ind_l * v_now_ind

        return ArrayState(
            capacitor_voltages=v_now_cap,
            capacitor_currents=i_now_cap,
            inductor_currents=i_now_ind,
            inductor_voltages=v_now_ind,
        )
