"""Linear circuit elements and source waveforms.

Elements know how to *stamp* themselves into the MNA matrices; waveforms are
small callables evaluating a source value at a given time.  Everything is in
SI units (ohm, farad, henry, volt, ampere, second).
"""

from __future__ import annotations

from dataclasses import dataclass, field


# --- waveforms -----------------------------------------------------------------


@dataclass(frozen=True)
class Step:
    """A step from ``initial`` to ``final`` at ``delay`` with linear ``rise_time``."""

    initial: float = 0.0
    final: float = 1.0
    delay: float = 0.0
    rise_time: float = 1.0e-12

    def __call__(self, time: float) -> float:
        if time <= self.delay:
            return self.initial
        if time >= self.delay + self.rise_time:
            return self.final
        fraction = (time - self.delay) / self.rise_time
        return self.initial + fraction * (self.final - self.initial)


@dataclass(frozen=True)
class Pulse:
    """A periodic trapezoidal pulse (SPICE ``PULSE`` semantics, single period by default)."""

    low: float = 0.0
    high: float = 1.0
    delay: float = 0.0
    rise_time: float = 1.0e-12
    fall_time: float = 1.0e-12
    width: float = 1.0e-9
    period: float | None = None

    def __call__(self, time: float) -> float:
        if time < self.delay:
            return self.low
        local = time - self.delay
        if self.period is not None and self.period > 0:
            local = local % self.period
        if local < self.rise_time:
            return self.low + (self.high - self.low) * local / self.rise_time
        local -= self.rise_time
        if local < self.width:
            return self.high
        local -= self.width
        if local < self.fall_time:
            return self.high - (self.high - self.low) * local / self.fall_time
        return self.low


@dataclass(frozen=True)
class PieceWiseLinear:
    """Piece-wise-linear waveform defined by (time, value) points."""

    points: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if len(self.points) < 1:
            raise ValueError("need at least one PWL point")
        times = [t for t, _ in self.points]
        if any(b < a for a, b in zip(times, times[1:])):
            raise ValueError("PWL times must be non-decreasing")

    def __call__(self, time: float) -> float:
        points = self.points
        if time <= points[0][0]:
            return points[0][1]
        for (t0, v0), (t1, v1) in zip(points, points[1:]):
            if time <= t1:
                if t1 == t0:
                    return v1
                return v0 + (v1 - v0) * (time - t0) / (t1 - t0)
        return points[-1][1]


Waveform = Step | Pulse | PieceWiseLinear | float
"""A source value: either a constant or a time-dependent waveform object."""


def evaluate_waveform(waveform: Waveform, time: float) -> float:
    """Value of a waveform (or constant) at ``time``."""
    if callable(waveform):
        return float(waveform(time))
    return float(waveform)


# --- elements --------------------------------------------------------------------


@dataclass(frozen=True)
class Resistor:
    """A two-terminal resistor between nodes ``a`` and ``b``."""

    name: str
    a: str
    b: str
    resistance: float

    def __post_init__(self) -> None:
        if self.resistance <= 0:
            raise ValueError(f"resistor {self.name}: resistance must be positive")


@dataclass(frozen=True)
class Capacitor:
    """A two-terminal capacitor between nodes ``a`` and ``b``."""

    name: str
    a: str
    b: str
    capacitance: float
    initial_voltage: float = 0.0

    def __post_init__(self) -> None:
        if self.capacitance < 0:
            raise ValueError(f"capacitor {self.name}: capacitance cannot be negative")


@dataclass(frozen=True)
class Inductor:
    """A two-terminal inductor between nodes ``a`` and ``b``."""

    name: str
    a: str
    b: str
    inductance: float
    initial_current: float = 0.0

    def __post_init__(self) -> None:
        if self.inductance <= 0:
            raise ValueError(f"inductor {self.name}: inductance must be positive")


@dataclass(frozen=True)
class VoltageSource:
    """An independent voltage source from ``positive`` to ``negative`` node."""

    name: str
    positive: str
    negative: str
    waveform: Waveform = 0.0

    def value(self, time: float) -> float:
        """Source voltage at ``time`` in volt."""
        return evaluate_waveform(self.waveform, time)


@dataclass(frozen=True)
class CurrentSource:
    """An independent current source pushing current from ``positive`` into ``negative``."""

    name: str
    positive: str
    negative: str
    waveform: Waveform = 0.0

    def value(self, time: float) -> float:
        """Source current at ``time`` in ampere."""
        return evaluate_waveform(self.waveform, time)
