"""Transient analysis with trapezoidal or backward-Euler integration.

The solver marches the circuit from a consistent starting point (by default
the DC operating point at ``t = 0``) with a fixed time step, solving the
nonlinear MNA system by Newton iteration at every step.  Results are exposed
as numpy arrays per node, which is what the delay-measurement helpers of
:mod:`repro.circuit.delay` operate on.

Two solver backends share this front end (see
:mod:`repro.circuit.compiled`): small circuits keep the legacy dense
assembler, larger ones run through the compiled sparse stamping path with
factorization reuse.  Both record every step into one preallocated
``(n_steps + 1, size)`` trace array; the per-node waveform dict is cut from
it once at the end instead of being filled name-by-name inside the step
loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.compiled import ArrayState, CompiledMNA, SolverOptions, resolve_backend
from repro.circuit.dc import dc_operating_point
from repro.circuit.mna import CompanionState, MNAAssembler, newton_solve
from repro.circuit.netlist import Circuit, is_ground
from repro.obs.metrics import record_solver_stats
from repro.obs.trace import trace_span


@dataclass(frozen=True)
class TransientResult:
    """Waveforms produced by a transient analysis.

    Attributes
    ----------
    times:
        1-D array of time points in second.
    node_voltages:
        Mapping from node name to a 1-D voltage array (same length as
        ``times``).
    source_currents:
        Mapping from voltage-source name to a 1-D branch-current array.
    """

    times: np.ndarray
    node_voltages: dict[str, np.ndarray]
    source_currents: dict[str, np.ndarray]

    def voltage(self, node: str) -> np.ndarray:
        """Voltage waveform of a node (zeros for ground)."""
        if node in self.node_voltages:
            return self.node_voltages[node]
        if is_ground(node):
            return np.zeros_like(self.times)
        raise KeyError(f"unknown node {node!r}")

    def current(self, source_name: str) -> np.ndarray:
        """Branch-current waveform of a voltage source."""
        return self.source_currents[source_name]

    def final_voltage(self, node: str) -> float:
        """Last computed voltage of a node in volt."""
        return float(self.voltage(node)[-1])

    @property
    def n_points(self) -> int:
        """Number of stored time points."""
        return int(self.times.size)


def transient_analysis(
    circuit: Circuit,
    stop_time: float,
    time_step: float,
    method: str = "trapezoidal",
    use_dc_start: bool = True,
    max_newton_iterations: int = 60,
    backend: str | None = None,
    solver_opts: SolverOptions | None = None,
) -> TransientResult:
    """Run a fixed-step transient analysis.

    Parameters
    ----------
    circuit:
        The circuit to simulate.
    stop_time:
        Final simulation time in second.
    time_step:
        Fixed step size in second.
    method:
        ``"trapezoidal"`` (default) or ``"backward_euler"``.
    use_dc_start:
        When True the initial condition is the DC operating point with the
        sources at their ``t = 0`` values; when False all node voltages start
        at 0 V and capacitor initial voltages are honoured.
    max_newton_iterations:
        Per-step Newton cap.
    backend:
        ``"dense"``, ``"sparse"`` or ``None`` (default) for automatic
        size-based selection -- see :func:`repro.circuit.compiled.resolve_backend`.
        Both backends produce the same waveforms to solver precision.
    solver_opts:
        Newton policy for the compiled sparse backend
        (:class:`repro.circuit.compiled.SolverOptions`); ``None`` picks up
        any active :func:`repro.circuit.compiled.solver_options` override,
        else exact mode.  The dense backend always runs exact Newton.

    Returns
    -------
    TransientResult
    """
    if stop_time <= 0 or time_step <= 0:
        raise ValueError("stop time and time step must be positive")
    if time_step > stop_time:
        raise ValueError("time step cannot exceed the stop time")

    assembler = MNAAssembler(circuit)
    n_steps = int(round(stop_time / time_step))
    times = np.linspace(0.0, n_steps * time_step, n_steps + 1)

    solution = np.zeros(assembler.size)
    state = CompanionState.initial(circuit)

    if use_dc_start and assembler.size > 0:
        # Forward the backend so a parity run (dense vs sparse) exercises one
        # consistent solver stack end to end, DC start included.
        dc = dc_operating_point(circuit, time=0.0, backend=backend)
        for name, voltage in dc.node_voltages.items():
            solution[assembler.node_index(name)] = voltage
        for position, source in enumerate(circuit.voltage_sources):
            solution[assembler.vsource_index(position)] = dc.source_currents[source.name]
        # Capacitors start charged to their DC voltages.
        state = CompanionState(
            capacitor_voltages={
                c.name: dc.voltage(c.a) - dc.voltage(c.b) for c in circuit.capacitors
            },
            capacitor_currents={c.name: 0.0 for c in circuit.capacitors},
            inductor_currents={l.name: 0.0 for l in circuit.inductors},
            inductor_voltages={l.name: 0.0 for l in circuit.inductors},
        )

    trace = np.empty((n_steps + 1, assembler.size))
    trace[0] = solution

    resolved_backend = resolve_backend(assembler.size, backend)
    with trace_span(
        "circuit.transient",
        backend=resolved_backend,
        size=assembler.size,
        n_steps=n_steps,
    ) as span:
        if resolved_backend == "sparse":
            compiled = CompiledMNA(
                circuit, dt=time_step, method=method, assembler=assembler
            )
            array_state = ArrayState.from_companion(state, circuit)
            for step in range(1, n_steps + 1):
                solution = compiled.solve_step(
                    times[step],
                    solution,
                    array_state,
                    max_iterations=max_newton_iterations,
                    options=solver_opts,
                )
                array_state = compiled.update_state(solution, array_state)
                trace[step] = solution
            # One sync per analysis: the compiled solver's counters feed the
            # shared registry (and the open span) without per-step overhead.
            record_solver_stats(compiled.stats)
            span.set("solver", compiled.stats.as_dict())
        else:
            for step in range(1, n_steps + 1):
                time = times[step]
                solution = newton_solve(
                    assembler,
                    time,
                    solution,
                    state=state,
                    dt=time_step,
                    method=method,
                    max_iterations=max_newton_iterations,
                )
                state = assembler.update_state(
                    solution, state, time_step, method=method
                )
                trace[step] = solution

    voltages = {
        name: np.ascontiguousarray(trace[:, assembler.node_index(name)])
        for name in assembler.node_names
    }
    currents = {
        source.name: np.ascontiguousarray(trace[:, assembler.vsource_index(position)])
        for position, source in enumerate(circuit.voltage_sources)
    }
    return TransientResult(times=times, node_voltages=voltages, source_currents=currents)
