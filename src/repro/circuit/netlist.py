"""Circuit container: nodes, elements and SPICE-like export.

A :class:`Circuit` holds named nodes and elements.  Node ``"0"`` (and the
aliases ``"gnd"``/``"GND"``) is ground.  Elements are added through typed
helper methods which also guard against duplicate names; the container knows
nothing about simulation -- that is the job of :mod:`repro.circuit.mna`,
:mod:`repro.circuit.dc` and :mod:`repro.circuit.transient`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.elements import (
    Capacitor,
    CurrentSource,
    Inductor,
    Resistor,
    VoltageSource,
    Waveform,
)
from repro.circuit.mosfet import MOSFET, MOSFETParameters

GROUND_NAMES = ("0", "gnd", "GND", "ground")
"""Node names treated as the ground reference."""


def is_ground(node: str) -> bool:
    """True when ``node`` refers to the ground reference."""
    return node in GROUND_NAMES


@dataclass
class Circuit:
    """A flat netlist of linear elements, sources and MOSFETs.

    Attributes
    ----------
    title:
        Free-text circuit title (appears in SPICE export).
    """

    title: str = "untitled"
    resistors: list[Resistor] = field(default_factory=list)
    capacitors: list[Capacitor] = field(default_factory=list)
    inductors: list[Inductor] = field(default_factory=list)
    voltage_sources: list[VoltageSource] = field(default_factory=list)
    current_sources: list[CurrentSource] = field(default_factory=list)
    mosfets: list[MOSFET] = field(default_factory=list)

    # --- bookkeeping ------------------------------------------------------------

    def _check_name(self, name: str) -> None:
        if name in self.element_names():
            raise ValueError(f"duplicate element name {name!r}")

    def element_names(self) -> set[str]:
        """Names of all elements currently in the circuit."""
        names = set()
        for group in (
            self.resistors,
            self.capacitors,
            self.inductors,
            self.voltage_sources,
            self.current_sources,
            self.mosfets,
        ):
            names.update(element.name for element in group)
        return names

    def nodes(self) -> list[str]:
        """All non-ground node names, sorted for deterministic ordering."""
        found: set[str] = set()
        for r in self.resistors:
            found.update((r.a, r.b))
        for c in self.capacitors:
            found.update((c.a, c.b))
        for l in self.inductors:
            found.update((l.a, l.b))
        for v in self.voltage_sources:
            found.update((v.positive, v.negative))
        for i in self.current_sources:
            found.update((i.positive, i.negative))
        for m in self.mosfets:
            found.update((m.drain, m.gate, m.source))
        return sorted(node for node in found if not is_ground(node))

    @property
    def element_count(self) -> int:
        """Total number of elements."""
        return len(self.element_names())

    # --- element helpers -----------------------------------------------------------

    def add_resistor(self, name: str, a: str, b: str, resistance: float) -> Resistor:
        """Add a resistor and return it."""
        self._check_name(name)
        element = Resistor(name, a, b, resistance)
        self.resistors.append(element)
        return element

    def add_capacitor(
        self, name: str, a: str, b: str, capacitance: float, initial_voltage: float = 0.0
    ) -> Capacitor:
        """Add a capacitor and return it."""
        self._check_name(name)
        element = Capacitor(name, a, b, capacitance, initial_voltage)
        self.capacitors.append(element)
        return element

    def add_inductor(
        self, name: str, a: str, b: str, inductance: float, initial_current: float = 0.0
    ) -> Inductor:
        """Add an inductor and return it."""
        self._check_name(name)
        element = Inductor(name, a, b, inductance, initial_current)
        self.inductors.append(element)
        return element

    def add_voltage_source(
        self, name: str, positive: str, negative: str, waveform: Waveform = 0.0
    ) -> VoltageSource:
        """Add an independent voltage source and return it."""
        self._check_name(name)
        element = VoltageSource(name, positive, negative, waveform)
        self.voltage_sources.append(element)
        return element

    def add_current_source(
        self, name: str, positive: str, negative: str, waveform: Waveform = 0.0
    ) -> CurrentSource:
        """Add an independent current source and return it."""
        self._check_name(name)
        element = CurrentSource(name, positive, negative, waveform)
        self.current_sources.append(element)
        return element

    def add_mosfet(
        self, name: str, drain: str, gate: str, source: str, parameters: MOSFETParameters
    ) -> MOSFET:
        """Add a MOSFET and return it."""
        self._check_name(name)
        element = MOSFET(name, drain, gate, source, parameters)
        self.mosfets.append(element)
        return element

    # --- export ---------------------------------------------------------------------

    def to_spice(self) -> str:
        """Render the circuit as a SPICE-like netlist string.

        Time-dependent waveforms are rendered by their class name; the export
        exists for inspection and for hand-off to external tools, mirroring
        the paper's "extracted RC netlists are provided in a SPICE-like
        format" workflow.
        """
        lines = [f"* {self.title}"]
        for r in self.resistors:
            lines.append(f"R{r.name} {r.a} {r.b} {r.resistance:.6g}")
        for c in self.capacitors:
            lines.append(f"C{c.name} {c.a} {c.b} {c.capacitance:.6g}")
        for l in self.inductors:
            lines.append(f"L{l.name} {l.a} {l.b} {l.inductance:.6g}")
        for v in self.voltage_sources:
            description = (
                f"{v.waveform:.6g}" if isinstance(v.waveform, (int, float)) else type(v.waveform).__name__
            )
            lines.append(f"V{v.name} {v.positive} {v.negative} {description}")
        for i in self.current_sources:
            description = (
                f"{i.waveform:.6g}" if isinstance(i.waveform, (int, float)) else type(i.waveform).__name__
            )
            lines.append(f"I{i.name} {i.positive} {i.negative} {description}")
        for m in self.mosfets:
            kind = "NMOS" if m.parameters.polarity > 0 else "PMOS"
            lines.append(
                f"M{m.name} {m.drain} {m.gate} {m.source} {m.source} {kind} "
                f"W={m.parameters.width:.4g} L={m.parameters.length:.4g}"
            )
        lines.append(".end")
        return "\n".join(lines)
