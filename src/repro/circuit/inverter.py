"""CMOS inverter cells and inverter chains.

The paper's circuit benchmark (Fig. 11) drives MWCNT interconnects with
45 nm-node inverters and observes the signal at a receiving inverter.  The
:class:`Inverter` helper instantiates the NMOS/PMOS pair of a given
technology node into a circuit, and :func:`add_inverter_chain` builds the
driver / receiver arrangement used by the delay benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.netlist import Circuit
from repro.circuit.technology import NODE_45NM, TechnologyNode


@dataclass(frozen=True)
class Inverter:
    """A static CMOS inverter instance.

    Attributes
    ----------
    name:
        Instance name, used to derive device and node names.
    input_node, output_node:
        Signal nodes the inverter connects to.
    supply_node:
        Positive supply node (``vdd`` by convention).
    technology:
        Technology node providing device parameters.
    size:
        Drive-strength multiplier applied to both device widths.
    """

    name: str
    input_node: str
    output_node: str
    supply_node: str = "vdd"
    technology: TechnologyNode = field(default=NODE_45NM)
    size: float = 1.0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("inverter size must be positive")

    @property
    def input_capacitance(self) -> float:
        """Gate capacitance presented at the inverter input in farad."""
        return self.technology.inverter_input_capacitance * self.size

    def output_resistance(self) -> float:
        """Switching-effective output resistance in ohm (average of N and P)."""
        from repro.circuit.mosfet import MOSFET

        nmos = MOSFET("tmp_n", "d", "g", "s", self.technology.nmos_parameters(self.size))
        pmos = MOSFET("tmp_p", "d", "g", "s", self.technology.pmos_parameters(self.size))
        v_dd = self.technology.supply_voltage
        return 0.5 * (nmos.effective_resistance(v_dd) + pmos.effective_resistance(v_dd))

    def add_to(self, circuit: Circuit) -> None:
        """Instantiate the NMOS/PMOS pair (plus output diffusion cap) into a circuit."""
        circuit.add_mosfet(
            f"{self.name}_n",
            drain=self.output_node,
            gate=self.input_node,
            source="0",
            parameters=self.technology.nmos_parameters(self.size),
        )
        circuit.add_mosfet(
            f"{self.name}_p",
            drain=self.output_node,
            gate=self.input_node,
            source=self.supply_node,
            parameters=self.technology.pmos_parameters(self.size),
        )
        # Output (drain diffusion) self-loading, approximated as half the input
        # gate capacitance -- standard logical-effort bookkeeping.
        circuit.add_capacitor(
            f"{self.name}_cout", self.output_node, "0", 0.5 * self.input_capacitance
        )


def add_supply(circuit: Circuit, technology: TechnologyNode = NODE_45NM, node: str = "vdd") -> None:
    """Add the DC supply source of a technology node to a circuit."""
    circuit.add_voltage_source(f"supply_{node}", node, "0", technology.supply_voltage)


def add_inverter_chain(
    circuit: Circuit,
    node_names: list[str],
    technology: TechnologyNode = NODE_45NM,
    sizes: list[float] | None = None,
    name_prefix: str = "inv",
) -> list[Inverter]:
    """Add a chain of inverters between consecutive nodes of ``node_names``.

    ``node_names`` has one more entry than the number of inverters: the chain
    input, the intermediate nodes and the chain output.

    Parameters
    ----------
    circuit:
        Circuit to add the devices to (must already contain the supply).
    node_names:
        Signal nodes, in order.
    technology:
        Technology node for all inverters.
    sizes:
        Optional per-inverter drive strengths (defaults to all 1x).

    Returns
    -------
    list of the created :class:`Inverter` helpers.
    """
    if len(node_names) < 2:
        raise ValueError("an inverter chain needs at least an input and an output node")
    n_inverters = len(node_names) - 1
    if sizes is None:
        sizes = [1.0] * n_inverters
    if len(sizes) != n_inverters:
        raise ValueError("sizes must have one entry per inverter")

    inverters = []
    for index in range(n_inverters):
        inverter = Inverter(
            name=f"{name_prefix}{index}",
            input_node=node_names[index],
            output_node=node_names[index + 1],
            technology=technology,
            size=sizes[index],
        )
        inverter.add_to(circuit)
        inverters.append(inverter)
    return inverters
