"""Repeater insertion and sizing for long interconnects.

The paper's conclusion calls for "physical design, design space exploration"
tooling on top of the CNT compact models.  The classic knob for long
global-level wires is repeater insertion: splitting a line of total
resistance ``R_w`` and capacitance ``C_w`` into ``k`` segments driven by
inverters of size ``h`` minimises the delay at

    k_opt = sqrt( 0.4 R_w C_w / (0.7 R_0 C_0) )
    h_opt = sqrt( R_0 C_w / (R_w C_0) )

with ``R_0``/``C_0`` the unit inverter's output resistance and input
capacitance (Bakoglu's formulas).  Because doped CNT lines have a different
R/C balance than copper, the optimal repeater count, the achievable delay and
the energy cost all shift -- which is exactly the design-space question the
reproduction's E12 extension experiments explore.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from repro.circuit.inverter import Inverter
from repro.circuit.technology import NODE_45NM, TechnologyNode
from repro.core.line import DistributedRC, InterconnectLine

SWITCHING_ACTIVITY_DEFAULT = 0.15
"""Default signal switching activity used for energy estimates."""


@dataclass(frozen=True)
class RepeaterDesign:
    """A repeater insertion solution for one interconnect.

    Attributes
    ----------
    n_repeaters:
        Number of repeater stages ``k`` (1 means a single driver, no
        intermediate repeaters).
    repeater_size:
        Drive strength ``h`` of each repeater relative to a unit inverter.
    total_delay:
        End-to-end 50 % delay estimate in second.
    delay_per_length:
        Delay divided by line length, in second per metre.
    total_energy:
        Energy per transition (line + repeater capacitance switched) in joule.
    energy_delay_product:
        ``total_energy * total_delay`` in joule second.
    repeater_area:
        Total repeater gate width in metre (a proxy for area cost).
    """

    n_repeaters: int
    repeater_size: float
    total_delay: float
    delay_per_length: float
    total_energy: float
    energy_delay_product: float
    repeater_area: float


@lru_cache(maxsize=None)
def _unit_driver(technology: TechnologyNode) -> tuple[float, float]:
    """(output resistance, input capacitance) of a unit inverter.

    Cached per technology node: the repeater-count search below evaluates
    many candidate designs and each one only needs these two scalars, not a
    freshly built inverter cell.
    """
    unit = Inverter("unit", "a", "b", technology=technology, size=1.0)
    return unit.output_resistance(), unit.input_capacitance


def _segmented_delay(
    ladder: DistributedRC,
    n_repeaters: int,
    repeater_size: float,
    r_unit: float,
    c_unit: float,
) -> float:
    """Delay of a pre-expanded ladder split into repeater-driven segments."""
    driver_resistance = r_unit / repeater_size
    load_capacitance = c_unit * repeater_size

    segment = ladder.resized(max(1, ladder.n_segments // n_repeaters))
    segment_rc = type(segment)(
        total_resistance=ladder.total_resistance / n_repeaters,
        total_capacitance=ladder.total_capacitance / n_repeaters,
        contact_resistance=ladder.contact_resistance / n_repeaters,
        n_segments=segment.n_segments,
    )
    per_stage = segment_rc.elmore_delay(driver_resistance, load_capacitance)
    return n_repeaters * per_stage


def segment_delay(
    line: InterconnectLine,
    n_repeaters: int,
    repeater_size: float,
    technology: TechnologyNode = NODE_45NM,
) -> float:
    """Delay of a line split into ``n_repeaters`` equal repeater-driven segments.

    Each segment is modelled with the Elmore expression of
    :meth:`repro.core.line.DistributedRC.elmore_delay`; the repeater's own
    switching delay (driving the next repeater's input capacitance) is
    included through the load term.
    """
    if n_repeaters < 1:
        raise ValueError("need at least one driver stage")
    if repeater_size <= 0:
        raise ValueError("repeater size must be positive")

    r_unit, c_unit = _unit_driver(technology)
    return _segmented_delay(line.distributed(), n_repeaters, repeater_size, r_unit, c_unit)


def optimal_repeater_design(
    line: InterconnectLine,
    technology: TechnologyNode = NODE_45NM,
    max_repeaters: int = 200,
    supply_voltage: float | None = None,
    switching_activity: float = SWITCHING_ACTIVITY_DEFAULT,
) -> RepeaterDesign:
    """Delay-optimal repeater insertion for an interconnect line.

    Starts from Bakoglu's closed-form estimate and refines the integer
    repeater count by local search around it, then reports delay, energy and
    area of the chosen design.

    Parameters
    ----------
    line:
        The interconnect to optimise (CNT, Cu or composite).
    technology:
        Technology node of the repeaters.
    max_repeaters:
        Upper bound on the repeater count.
    supply_voltage:
        Supply used for the energy estimate; defaults to the node's nominal.
    switching_activity:
        Fraction of cycles the wire toggles (energy bookkeeping only).
    """
    if max_repeaters < 1:
        raise ValueError("max repeaters must be at least 1")
    r_unit, c_unit = _unit_driver(technology)
    v_dd = supply_voltage if supply_voltage is not None else technology.supply_voltage

    r_wire = max(line.total_resistance, 1e-3)
    c_wire = max(line.total_capacitance, 1e-21)

    k_estimate = math.sqrt(0.4 * r_wire * c_wire / (0.7 * r_unit * c_unit))
    h_optimal = math.sqrt(r_unit * c_wire / (r_wire * c_unit))
    h_optimal = max(1.0, min(h_optimal, 200.0))

    candidates = sorted(
        {
            max(1, min(max_repeaters, k))
            for k in (
                1,
                int(math.floor(k_estimate)),
                int(math.ceil(k_estimate)),
                int(round(k_estimate * 0.5)),
                int(round(k_estimate * 1.5)),
                int(round(k_estimate * 2.0)),
            )
            if k >= 1
        }
    )
    if not candidates:
        candidates = [1]

    # Expand the line once; every candidate evaluation below reuses it.
    ladder = line.distributed()

    best: tuple[float, int] | None = None
    for k in candidates:
        delay = _segmented_delay(ladder, k, h_optimal, r_unit, c_unit)
        if best is None or delay < best[0]:
            best = (delay, k)
    best_delay, best_k = best

    # Local refinement around the best candidate.
    improved = True
    while improved:
        improved = False
        for k in (best_k - 1, best_k + 1):
            if k < 1 or k > max_repeaters:
                continue
            delay = _segmented_delay(ladder, k, h_optimal, r_unit, c_unit)
            if delay < best_delay:
                best_delay, best_k = delay, k
                improved = True

    repeater_capacitance = best_k * h_optimal * c_unit * 1.5  # input + output loading
    switched_capacitance = line.total_capacitance + repeater_capacitance
    energy = switching_activity * switched_capacitance * v_dd**2
    area = best_k * h_optimal * (technology.nmos_width + technology.pmos_width)

    return RepeaterDesign(
        n_repeaters=best_k,
        repeater_size=h_optimal,
        total_delay=best_delay,
        delay_per_length=best_delay / line.length,
        total_energy=energy,
        energy_delay_product=energy * best_delay,
        repeater_area=area,
    )


def compare_repeated_lines(
    lines: dict[str, InterconnectLine],
    technology: TechnologyNode = NODE_45NM,
) -> list[dict]:
    """Optimal-repeater comparison across materials (design-space table).

    Parameters
    ----------
    lines:
        Mapping from a label ("Cu", "MWCNT pristine", ...) to the line to
        optimise; all lines should share the same length for a fair table.

    Returns
    -------
    One record per label with repeater count, delay, energy and EDP.
    """
    records = []
    for label, line in lines.items():
        design = optimal_repeater_design(line, technology=technology)
        records.append(
            {
                "line": label,
                "length_um": line.length * 1e6,
                "n_repeaters": design.n_repeaters,
                "repeater_size": design.repeater_size,
                "delay_ps": design.total_delay * 1e12,
                "delay_ps_per_mm": design.delay_per_length * 1e12 * 1e-3,
                "energy_fJ": design.total_energy * 1e15,
                "edp_fJ_ns": design.energy_delay_product * 1e15 * 1e9,
            }
        )
    return records
