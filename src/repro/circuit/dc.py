"""DC operating-point analysis.

Capacitors are opened, inductors are shorted, sources are evaluated at a
given time (default 0) and the nonlinear system is solved by Newton
iteration.  The result seeds transient analyses so that simulations start
from a consistent bias point.

Like the transient front end, the solve is backend-routed (see
:func:`repro.circuit.compiled.resolve_backend`): circuits below the sparse
threshold keep the dense one-shot assembly, large ladders compile the
topology once and solve through sparse LU -- same Newton damping, same
convergence test, identical operating points to solver precision.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.compiled import ArrayState, CompiledMNA, resolve_backend
from repro.circuit.mna import MNAAssembler, newton_solve
from repro.circuit.netlist import Circuit


@dataclass(frozen=True)
class DCResult:
    """Result of a DC operating-point analysis.

    Attributes
    ----------
    node_voltages:
        Mapping from node name to voltage in volt (ground excluded).
    source_currents:
        Mapping from voltage-source name to branch current in ampere.
    """

    node_voltages: dict[str, float]
    source_currents: dict[str, float]

    def voltage(self, node: str) -> float:
        """Voltage of a node (0 for ground)."""
        if node in self.node_voltages:
            return self.node_voltages[node]
        from repro.circuit.netlist import is_ground

        if is_ground(node):
            return 0.0
        raise KeyError(f"unknown node {node!r}")

    def current(self, source_name: str) -> float:
        """Branch current of a voltage source in ampere."""
        return self.source_currents[source_name]


def dc_operating_point(
    circuit: Circuit,
    time: float = 0.0,
    max_iterations: int = 200,
    tolerance: float = 1.0e-9,
    backend: str | None = None,
) -> DCResult:
    """Solve the DC operating point of a circuit.

    Parameters
    ----------
    circuit:
        The circuit to solve.
    time:
        Time at which source waveforms are evaluated (waveform-driven inputs
        take their ``t = time`` value as a DC level).
    max_iterations:
        Newton iteration cap.
    tolerance:
        Convergence threshold in volt.
    backend:
        ``"dense"``, ``"sparse"`` or ``None`` (default) for automatic
        size-based selection -- see
        :func:`repro.circuit.compiled.resolve_backend`.

    Returns
    -------
    DCResult
    """
    assembler = MNAAssembler(circuit)
    if assembler.size == 0:
        return DCResult(node_voltages={}, source_currents={})

    guess = np.zeros(assembler.size)
    # A supply-aware starting guess speeds up and stabilises CMOS circuits:
    # start every node halfway to the largest DC source magnitude.
    supply_levels = [abs(v.value(time)) for v in circuit.voltage_sources]
    if supply_levels:
        guess[: assembler.n_nodes] = 0.5 * max(supply_levels)

    if resolve_backend(assembler.size, backend) == "sparse":
        compiled = CompiledMNA(
            circuit, dt=None, assembler=assembler, capacitors_open=True
        )
        solution = compiled.solve_step(
            time,
            guess,
            ArrayState.zeros(circuit),
            max_iterations=max_iterations,
            tolerance=tolerance,
        )
    else:
        solution = newton_solve(
            assembler,
            time,
            guess,
            capacitors_open=True,
            max_iterations=max_iterations,
            tolerance=tolerance,
        )

    node_voltages = {
        name: float(solution[assembler.node_index(name)]) for name in assembler.node_names
    }
    source_currents = {
        source.name: float(solution[assembler.vsource_index(position)])
        for position, source in enumerate(circuit.voltage_sources)
    }
    return DCResult(node_voltages=node_voltages, source_currents=source_currents)
