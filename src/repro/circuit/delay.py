"""Propagation-delay and slew measurement.

These helpers turn transient waveforms into the scalar metrics the paper's
Fig. 12 reports (propagation delay, and from it the delay ratio between doped
and pristine interconnects), plus the standard rise/fall-time measures.  The
module also provides :func:`measure_inverter_line_delay`, the complete
"inverter - interconnect - inverter" benchmark of Fig. 11 as a single call.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.batched import TransientJob, batched_transient_analysis
from repro.circuit.compiled import SolverOptions
from repro.circuit.elements import Step
from repro.circuit.inverter import Inverter, add_supply
from repro.circuit.netlist import Circuit
from repro.circuit.rcline import add_rc_ladder
from repro.circuit.technology import NODE_45NM, TechnologyNode
from repro.circuit.transient import TransientResult, transient_analysis
from repro.core.line import DistributedRC, InterconnectLine


def crossing_time(
    times: np.ndarray,
    values: np.ndarray,
    threshold: float,
    rising: bool | None = None,
    start_time: float = 0.0,
) -> float:
    """First time the waveform crosses a threshold, with linear interpolation.

    Parameters
    ----------
    times, values:
        Waveform samples.
    threshold:
        Crossing level in volt.
    rising:
        Restrict to rising (True) or falling (False) crossings; ``None``
        accepts either.
    start_time:
        Ignore crossings before this time.

    Raises
    ------
    ValueError
        If no crossing is found.
    """
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    if times.shape != values.shape:
        raise ValueError("times and values must have the same shape")

    for i in range(1, times.size):
        if times[i] < start_time:
            continue
        v0, v1 = values[i - 1], values[i]
        crossed_up = v0 < threshold <= v1
        crossed_down = v0 > threshold >= v1
        if rising is True and not crossed_up:
            continue
        if rising is False and not crossed_down:
            continue
        if not (crossed_up or crossed_down):
            continue
        if v1 == v0:
            return float(times[i])
        fraction = (threshold - v0) / (v1 - v0)
        return float(times[i - 1] + fraction * (times[i] - times[i - 1]))

    raise ValueError(f"waveform never crosses {threshold} V after t={start_time}")


def propagation_delay(
    result: TransientResult,
    input_node: str,
    output_node: str,
    supply_voltage: float,
    threshold_fraction: float = 0.5,
) -> float:
    """Propagation delay between the 50 % crossings of two nodes in second."""
    threshold = threshold_fraction * supply_voltage
    t_in = crossing_time(result.times, result.voltage(input_node), threshold)
    t_out = crossing_time(result.times, result.voltage(output_node), threshold, start_time=t_in)
    return t_out - t_in


def rise_time(
    result: TransientResult,
    node: str,
    supply_voltage: float,
    low_fraction: float = 0.1,
    high_fraction: float = 0.9,
) -> float:
    """10 %-90 % rise (or fall) time of a node waveform in second."""
    waveform = result.voltage(node)
    rising = waveform[-1] > waveform[0]
    low = low_fraction * supply_voltage
    high = high_fraction * supply_voltage
    if rising:
        t_low = crossing_time(result.times, waveform, low, rising=True)
        t_high = crossing_time(result.times, waveform, high, rising=True, start_time=t_low)
    else:
        t_high = crossing_time(result.times, waveform, high, rising=False)
        t_low = crossing_time(result.times, waveform, low, rising=False, start_time=t_high)
        return t_low - t_high
    return t_high - t_low


@dataclass(frozen=True)
class DelayMeasurement:
    """Outcome of the inverter - line - inverter benchmark.

    Attributes
    ----------
    propagation_delay:
        50 %-to-50 % delay from the driver input to the far end of the line
        (the receiver input) in second.
    receiver_output_delay:
        50 %-to-50 % delay from the driver input to the receiver output in
        second (includes the receiving gate's own delay).
    far_end_rise_time:
        10-90 % transition time at the far end of the line in second.
    result:
        The full transient result, for plotting or further inspection.
    """

    propagation_delay: float
    receiver_output_delay: float
    far_end_rise_time: float
    result: TransientResult


def _build_delay_benchmark(
    line: DistributedRC | InterconnectLine,
    technology: TechnologyNode,
    driver_size: float,
    receiver_size: float,
    input_rise_time: float,
    rising_input: bool,
    simulation_margin: float,
    n_time_steps: int,
) -> tuple[Circuit, float, float, float]:
    """Build the Fig. 11 benchmark circuit and its simulation window.

    Shared by the serial and batched measurement paths so both simulate the
    exact same netlist with the exact same ``(stop_time, time_step)``.
    Returns ``(circuit, stop_time, time_step, v_dd)``.
    """
    if isinstance(line, InterconnectLine):
        ladder = line.distributed()
    else:
        ladder = line

    v_dd = technology.supply_voltage

    circuit = Circuit(title="inverter - interconnect - inverter delay benchmark")
    add_supply(circuit, technology)

    if rising_input:
        stimulus = Step(initial=0.0, final=v_dd, delay=2.0e-12, rise_time=input_rise_time)
    else:
        stimulus = Step(initial=v_dd, final=0.0, delay=2.0e-12, rise_time=input_rise_time)
    circuit.add_voltage_source("vin", "in", "0", stimulus)

    driver = Inverter("driver", "in", "near", technology=technology, size=driver_size)
    driver.add_to(circuit)

    add_rc_ladder(circuit, ladder, "near", "far", name_prefix="dut")

    receiver = Inverter("receiver", "far", "out", technology=technology, size=receiver_size)
    receiver.add_to(circuit)

    # Choose a window long enough for the slowest case: driver + line Elmore
    # estimate, several times over.
    elmore = ladder.elmore_delay(
        driver_resistance=driver.output_resistance(),
        load_capacitance=receiver.input_capacitance,
    )
    stop_time = max(simulation_margin * (elmore + input_rise_time), 50.0e-12)
    time_step = stop_time / n_time_steps
    return circuit, stop_time, time_step, v_dd


def _measure_from_result(result: TransientResult, v_dd: float) -> DelayMeasurement:
    """Extract the benchmark metrics from a finished transient result."""
    delay_far = propagation_delay(result, "in", "far", v_dd)
    delay_out = propagation_delay(result, "in", "out", v_dd)
    slew = rise_time(result, "far", v_dd)
    return DelayMeasurement(
        propagation_delay=delay_far,
        receiver_output_delay=delay_out,
        far_end_rise_time=slew,
        result=result,
    )


def measure_inverter_line_delay(
    line: DistributedRC | InterconnectLine,
    technology: TechnologyNode = NODE_45NM,
    driver_size: float = 1.0,
    receiver_size: float = 1.0,
    input_rise_time: float = 5.0e-12,
    rising_input: bool = True,
    simulation_margin: float = 8.0,
    n_time_steps: int = 600,
    method: str = "trapezoidal",
    backend: str | None = None,
    solver_opts: SolverOptions | None = None,
) -> DelayMeasurement:
    """Run the Fig. 11 benchmark: driver inverter -> interconnect -> receiver inverter.

    The input is a step applied to the driver inverter; the measured
    propagation delay is between the 50 % crossing of the input and of the far
    end of the interconnect (the receiver input), matching the paper's
    definition of interconnect propagation delay.

    Parameters
    ----------
    line:
        Distributed description of the interconnect under test.
    technology:
        Technology node of the driver/receiver inverters (45 nm in the paper).
    driver_size, receiver_size:
        Inverter drive strengths.
    input_rise_time:
        Rise time of the stimulus step in second.
    rising_input:
        Direction of the input step; the far-end response has the opposite
        polarity because of the inverting driver.
    simulation_margin:
        Simulation window as a multiple of the line's Elmore-delay estimate
        (plus the input transition), so slow lines still settle.
    n_time_steps:
        Number of fixed transient steps.
    method:
        Integration method passed to the transient engine.
    backend:
        MNA solver backend (``"dense"``/``"sparse"``); ``None`` selects by
        circuit size (:func:`repro.circuit.compiled.resolve_backend`).
    solver_opts:
        Newton policy forwarded to :func:`transient_analysis` (sparse
        backend only).

    Returns
    -------
    DelayMeasurement
    """
    circuit, stop_time, time_step, v_dd = _build_delay_benchmark(
        line,
        technology,
        driver_size,
        receiver_size,
        input_rise_time,
        rising_input,
        simulation_margin,
        n_time_steps,
    )
    result = transient_analysis(
        circuit, stop_time, time_step, method=method, backend=backend, solver_opts=solver_opts
    )
    return _measure_from_result(result, v_dd)


def measure_inverter_line_delay_batch(
    lines: list[DistributedRC | InterconnectLine],
    technology: TechnologyNode = NODE_45NM,
    driver_size: float = 1.0,
    receiver_size: float = 1.0,
    input_rise_time: float = 5.0e-12,
    rising_input: bool = True,
    simulation_margin: float = 8.0,
    n_time_steps: int = 600,
    method: str = "trapezoidal",
    backend: str | None = None,
) -> list[DelayMeasurement]:
    """Batched :func:`measure_inverter_line_delay` over same-topology lines.

    Every line gets the exact circuit and simulation window the serial
    function would build; the transients are then evaluated together by
    :func:`repro.circuit.batched.batched_transient_analysis`, which groups
    same-topology jobs into stacked solves and is bitwise-identical to
    per-job serial runs.  Lines whose segment counts differ simply land in
    different groups -- correctness never depends on the batching.
    """
    jobs = []
    windows = []
    for line in lines:
        circuit, stop_time, time_step, v_dd = _build_delay_benchmark(
            line,
            technology,
            driver_size,
            receiver_size,
            input_rise_time,
            rising_input,
            simulation_margin,
            n_time_steps,
        )
        jobs.append(
            TransientJob(circuit=circuit, stop_time=stop_time, time_step=time_step, method=method)
        )
        windows.append(v_dd)
    results = batched_transient_analysis(jobs, backend=backend)
    return [
        _measure_from_result(result, v_dd) for result, v_dd in zip(results, windows)
    ]
