"""Batched transient evaluation of same-topology circuits.

Sweep points over one interconnect topology differ only in element *values*
(resistances, capacitances, source waveforms, MOSFET parameters) -- the MNA
pattern, node numbering and step count are identical.  The serial path pays
the full Python re-stamping cost per point per step; this module evaluates a
whole batch of such circuits in lockstep instead:

* the static part of every dense MNA matrix (GMIN, resistors, companion
  conductances, voltage-source rows) is built **once** into a stacked
  ``(n_jobs, size, size)`` array -- the per-step / per-iteration Python
  re-stamp the serial path does disappears entirely;
* the linear solve of every job becomes one stacked LAPACK call
  (``np.linalg.solve`` over the leading batch axis);
* only the genuinely scalar work -- MOSFET linearisation and source waveform
  evaluation -- still runs per job, exactly like the serial path.

**Bitwise identity is a hard contract.**  The batched kernel replays the
exact floating-point statement sequence of the dense reference
(:class:`repro.circuit.mna.MNAAssembler` + :func:`~repro.circuit.mna.newton_solve`
as driven by :func:`repro.circuit.transient.transient_analysis`), vectorised
over the batch axis: elementwise numpy arithmetic performs the same IEEE
operations as the scalar statements, a stacked ``np.linalg.solve`` is
bitwise-identical to per-slice solves, and per-job Newton damping /
convergence decisions are taken with the same scalar arithmetic in the same
order.  Batched results therefore carry the same content hashes as serial
per-point runs -- the engine's cache and the CI identity checks rely on it.

Jobs are grouped by a structural signature (matrix size, element topology,
zero-capacitance pattern, step count, method, Newton budget); singleton
groups, circuits that resolve to the sparse backend, and any group whose
stacked solve fails for one job fall back to per-job
:func:`~repro.circuit.transient.transient_analysis`, so batching can change
performance but never results.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.dc import dc_operating_point
from repro.circuit.mna import GMIN, CompanionState, MNAAssembler
from repro.circuit.netlist import Circuit
from repro.circuit.compiled import resolve_backend
from repro.circuit.transient import TransientResult, transient_analysis
from repro.obs import metrics
from repro.obs.trace import trace_span

NEWTON_TOLERANCE = 1.0e-9
NEWTON_DAMPING_LIMIT = 1.0


@dataclass(frozen=True)
class TransientJob:
    """One transient analysis to run inside a batch.

    Fields mirror the :func:`~repro.circuit.transient.transient_analysis`
    signature; jobs whose derived step count, method, Newton budget and
    circuit topology match are evaluated together.
    """

    circuit: Circuit
    stop_time: float
    time_step: float
    method: str = "trapezoidal"
    use_dc_start: bool = True
    max_newton_iterations: int = 60


def _node(assembler: MNAAssembler, name: str) -> int | None:
    return assembler.node_index(name)


def topology_signature(job: TransientJob, assembler: MNAAssembler) -> tuple:
    """Structural key deciding which jobs may share a stacked solve.

    Two jobs with equal signatures stamp the same matrix coordinates in the
    same order for the same number of steps -- only values differ, which is
    exactly what the batched kernel vectorises over.
    """
    circuit = job.circuit
    index = assembler.node_index
    n_steps = int(round(job.stop_time / job.time_step))
    return (
        assembler.size,
        assembler.n_nodes,
        n_steps,
        job.method,
        job.use_dc_start,
        job.max_newton_iterations,
        tuple((index(r.a), index(r.b)) for r in circuit.resistors),
        tuple(
            (index(c.a), index(c.b), c.capacitance == 0.0) for c in circuit.capacitors
        ),
        tuple((index(l.a), index(l.b)) for l in circuit.inductors),
        tuple((index(s.positive), index(s.negative)) for s in circuit.current_sources),
        tuple(
            (assembler.vsource_index(p), index(s.positive), index(s.negative))
            for p, s in enumerate(circuit.voltage_sources)
        ),
        tuple((index(m.drain), index(m.gate), index(m.source)) for m in circuit.mosfets),
    )


def _validate(job: TransientJob) -> None:
    """The argument checks of ``transient_analysis``, same messages."""
    if job.stop_time <= 0 or job.time_step <= 0:
        raise ValueError("stop time and time step must be positive")
    if job.time_step > job.stop_time:
        raise ValueError("time step cannot exceed the stop time")
    if job.method not in ("trapezoidal", "backward_euler"):
        raise ValueError(f"unknown integration method {job.method!r}")


def _stamp_conductance_stack(
    matrices: np.ndarray, a: int | None, b: int | None, g: np.ndarray
) -> None:
    """Vector twin of ``MNAAssembler._stamp_conductance`` over the batch axis."""
    if a is not None:
        matrices[:, a, a] += g
    if b is not None:
        matrices[:, b, b] += g
    if a is not None and b is not None:
        matrices[:, a, b] -= g
        matrices[:, b, a] -= g


class _Batch:
    """Precompiled stacked dense system for one group of same-topology jobs."""

    def __init__(self, jobs: list[TransientJob], backend: str | None):
        self.jobs = jobs
        self.backend = backend
        self.n_jobs = len(jobs)
        self.assemblers = [MNAAssembler(job.circuit) for job in jobs]
        base = self.assemblers[0]
        self.size = base.size
        self.n_nodes = base.n_nodes
        first = jobs[0]
        self.method = first.method
        self.trapezoidal = first.method == "trapezoidal"
        self.use_dc_start = first.use_dc_start
        self.max_iterations = first.max_newton_iterations
        self.n_steps = int(round(first.stop_time / first.time_step))
        self.nonlinear = bool(first.circuit.mosfets)
        self.dt = np.array([job.time_step for job in jobs])
        # Per-job time axes, exactly as the serial path builds them.
        self.times = [
            np.linspace(0.0, self.n_steps * job.time_step, self.n_steps + 1)
            for job in jobs
        ]

        circuit = first.circuit
        index = base.node_index
        self.res_idx = [(index(r.a), index(r.b)) for r in circuit.resistors]
        self.cap_idx = [(index(c.a), index(c.b)) for c in circuit.capacitors]
        self.ind_idx = [(index(l.a), index(l.b)) for l in circuit.inductors]
        self.iso_idx = [(index(s.positive), index(s.negative)) for s in circuit.current_sources]
        self.vso_idx = [
            (base.vsource_index(p), index(s.positive), index(s.negative))
            for p, s in enumerate(circuit.voltage_sources)
        ]
        self.mos_idx = [
            (index(m.drain), index(m.gate), index(m.source)) for m in circuit.mosfets
        ]

        # Per-element value vectors across the batch axis.  The derived
        # conductances repeat the scalar expressions of MNAAssembler.assemble
        # elementwise, so every job's value is bit-for-bit the serial one.
        self.res_g = [
            1.0 / np.array([job.circuit.resistors[p].resistance for job in jobs])
            for p in range(len(circuit.resistors))
        ]
        self.cap_c = [
            np.array([job.circuit.capacitors[p].capacitance for job in jobs])
            for p in range(len(circuit.capacitors))
        ]
        self.cap_zero = [c.capacitance == 0.0 for c in circuit.capacitors]
        if self.trapezoidal:
            self.cap_geq = [2.0 * c / self.dt for c in self.cap_c]
        else:
            self.cap_geq = [c / self.dt for c in self.cap_c]
        self.ind_l = [
            np.array([job.circuit.inductors[p].inductance for job in jobs])
            for p in range(len(circuit.inductors))
        ]
        if self.trapezoidal:
            self.ind_geq = [self.dt / (2.0 * l) for l in self.ind_l]
        else:
            self.ind_geq = [self.dt / l for l in self.ind_l]

        # Static stacked matrix: everything MNAAssembler.assemble stamps
        # before the MOSFET loop, in the same statement order.  Matrix and
        # rhs accumulations never mix targets, so splitting them preserves
        # each entry's accumulation order (hence its bits).
        matrices = np.zeros((self.n_jobs, self.size, self.size))
        for i in range(self.n_nodes):
            matrices[:, i, i] += GMIN
        for p, (a, b) in enumerate(self.res_idx):
            _stamp_conductance_stack(matrices, a, b, self.res_g[p])
        for p, (a, b) in enumerate(self.cap_idx):
            if self.cap_zero[p]:
                continue
            _stamp_conductance_stack(matrices, a, b, self.cap_geq[p])
        for p, (a, b) in enumerate(self.ind_idx):
            _stamp_conductance_stack(matrices, a, b, self.ind_geq[p])
        for row, p, n in self.vso_idx:
            if p is not None:
                matrices[:, p, row] += 1.0
                matrices[:, row, p] += 1.0
            if n is not None:
                matrices[:, n, row] -= 1.0
                matrices[:, row, n] -= 1.0
        self.static_matrices = matrices

    # --- per-step right-hand side (everything before the MOSFET loop) ------

    def _base_rhs(self, step: int, cap_v, cap_i, ind_i, ind_v) -> np.ndarray:
        rhs = np.zeros((self.n_jobs, self.size))
        for p, (a, b) in enumerate(self.cap_idx):
            if self.cap_zero[p]:
                continue
            if self.trapezoidal:
                ieq = self.cap_geq[p] * cap_v[p] + cap_i[p]
            else:
                ieq = self.cap_geq[p] * cap_v[p]
            # _stamp_current(rhs, b, a, ieq): rhs[b] -= ieq; rhs[a] += ieq.
            if b is not None:
                rhs[:, b] -= ieq
            if a is not None:
                rhs[:, a] += ieq
        for p, (a, b) in enumerate(self.ind_idx):
            if self.trapezoidal:
                ieq = ind_i[p] + self.ind_geq[p] * ind_v[p]
            else:
                ieq = ind_i[p]
            if a is not None:
                rhs[:, a] -= ieq
            if b is not None:
                rhs[:, b] += ieq
        for p, (a, b) in enumerate(self.iso_idx):
            values = np.array(
                [
                    job.circuit.current_sources[p].value(self.times[k][step])
                    for k, job in enumerate(self.jobs)
                ]
            )
            if a is not None:
                rhs[:, a] -= values
            if b is not None:
                rhs[:, b] += values
        for p, (row, _, _) in enumerate(self.vso_idx):
            rhs[:, row] += np.array(
                [
                    job.circuit.voltage_sources[p].value(self.times[k][step])
                    for k, job in enumerate(self.jobs)
                ]
            )
        return rhs

    def _stamp_mosfets(
        self, matrices: np.ndarray, rhs: np.ndarray, rows: list[int], solutions: np.ndarray
    ) -> None:
        """Scalar MOSFET linearisation per job, mirroring the dense stamps."""
        for local, k in enumerate(rows):
            guess = solutions[k]
            for p, (d, g, s) in enumerate(self.mos_idx):
                mosfet = self.jobs[k].circuit.mosfets[p]
                v_d = 0.0 if d is None else guess[d]
                v_g = 0.0 if g is None else guess[g]
                v_s = 0.0 if s is None else guess[s]
                i_ds, gm, gds = mosfet.evaluate(v_g - v_s, v_d - v_s)
                i_eq = i_ds - gm * (v_g - v_s) - gds * (v_d - v_s)
                if d is not None:
                    if g is not None:
                        matrices[local, d, g] += gm
                    matrices[local, d, d] += gds
                    if s is not None:
                        matrices[local, d, s] -= gm + gds
                if s is not None:
                    if g is not None:
                        matrices[local, s, g] -= gm
                    if d is not None:
                        matrices[local, s, d] -= gds
                    matrices[local, s, s] += gm + gds
                if d is not None:
                    rhs[local, d] -= i_eq
                if s is not None:
                    rhs[local, s] += i_eq

    # --- full run ----------------------------------------------------------

    def run(self) -> list[TransientResult]:
        n_jobs, size = self.n_jobs, self.size
        solutions = np.zeros((n_jobs, size))

        n_cap = len(self.cap_idx)
        n_ind = len(self.ind_idx)
        cap_v = np.zeros((n_cap, n_jobs))
        cap_i = np.zeros((n_cap, n_jobs))
        ind_i = np.zeros((n_ind, n_jobs))
        ind_v = np.zeros((n_ind, n_jobs))
        for k, job in enumerate(self.jobs):
            initial = CompanionState.initial(job.circuit)
            for p, capacitor in enumerate(job.circuit.capacitors):
                cap_v[p, k] = initial.capacitor_voltages[capacitor.name]
            for p, inductor in enumerate(job.circuit.inductors):
                ind_i[p, k] = initial.inductor_currents[inductor.name]

        if self.use_dc_start and size > 0:
            for k, job in enumerate(self.jobs):
                assembler = self.assemblers[k]
                dc = dc_operating_point(job.circuit, time=0.0, backend=self.backend)
                for name, voltage in dc.node_voltages.items():
                    solutions[k, assembler.node_index(name)] = voltage
                for position, source in enumerate(job.circuit.voltage_sources):
                    solutions[k, assembler.vsource_index(position)] = dc.source_currents[
                        source.name
                    ]
                for p, capacitor in enumerate(job.circuit.capacitors):
                    cap_v[p, k] = dc.voltage(capacitor.a) - dc.voltage(capacitor.b)
                    cap_i[p, k] = 0.0
                ind_i[:, k] = 0.0
                ind_v[:, k] = 0.0

        trace = np.empty((n_jobs, self.n_steps + 1, size))
        trace[:, 0] = solutions

        all_rows = list(range(n_jobs))
        for step in range(1, self.n_steps + 1):
            base_rhs = self._base_rhs(step, cap_v, cap_i, ind_i, ind_v)
            if not self.nonlinear:
                # One linear solve per step, like newton_solve's early return.
                # The stacked solve is bitwise-identical to per-slice solves.
                solutions = np.linalg.solve(
                    self.static_matrices, base_rhs[..., None]
                )[..., 0]
            else:
                active = all_rows
                for _ in range(self.max_iterations):
                    matrices = self.static_matrices[active]
                    rhs = base_rhs[active]
                    self._stamp_mosfets(matrices, rhs, active, solutions)
                    new_solutions = np.linalg.solve(matrices, rhs[..., None])[..., 0]

                    still_active: list[int] = []
                    for local, k in enumerate(active):
                        delta = new_solutions[local] - solutions[k]
                        max_delta = float(np.max(np.abs(delta))) if delta.size else 0.0
                        if max_delta > NEWTON_DAMPING_LIMIT:
                            delta *= NEWTON_DAMPING_LIMIT / max_delta
                            solutions[k] = solutions[k] + delta
                        else:
                            solutions[k] = new_solutions[local]
                        if not max_delta < NEWTON_TOLERANCE:
                            still_active.append(k)
                    active = still_active
                    if not active:
                        break
                if active:
                    time = self.times[active[0]][step]
                    raise RuntimeError(
                        f"Newton iteration did not converge at t={time} "
                        f"after {self.max_iterations} iterations"
                    )

            # State update: vector twin of MNAAssembler.update_state.
            for p, (a, b) in enumerate(self.cap_idx):
                v_now = (0.0 if a is None else solutions[:, a]) - (
                    0.0 if b is None else solutions[:, b]
                )
                if self.trapezoidal:
                    i_now = 2.0 * self.cap_c[p] / self.dt * (v_now - cap_v[p]) - cap_i[p]
                else:
                    i_now = self.cap_c[p] / self.dt * (v_now - cap_v[p])
                cap_v[p] = v_now
                cap_i[p] = i_now
            for p, (a, b) in enumerate(self.ind_idx):
                v_now = (0.0 if a is None else solutions[:, a]) - (
                    0.0 if b is None else solutions[:, b]
                )
                if self.trapezoidal:
                    i_now = ind_i[p] + self.dt / (2.0 * self.ind_l[p]) * (v_now + ind_v[p])
                else:
                    i_now = ind_i[p] + self.dt / self.ind_l[p] * v_now
                ind_i[p] = i_now
                ind_v[p] = v_now

            trace[:, step] = solutions

        results = []
        for k, job in enumerate(self.jobs):
            assembler = self.assemblers[k]
            voltages = {
                name: np.ascontiguousarray(trace[k][:, assembler.node_index(name)])
                for name in assembler.node_names
            }
            currents = {
                source.name: np.ascontiguousarray(
                    trace[k][:, assembler.vsource_index(position)]
                )
                for position, source in enumerate(job.circuit.voltage_sources)
            }
            results.append(
                TransientResult(
                    times=self.times[k], node_voltages=voltages, source_currents=currents
                )
            )
        return results


def _run_serial(job: TransientJob, backend: str | None) -> TransientResult:
    return transient_analysis(
        job.circuit,
        job.stop_time,
        job.time_step,
        method=job.method,
        use_dc_start=job.use_dc_start,
        max_newton_iterations=job.max_newton_iterations,
        backend=backend,
    )


def batched_transient_analysis(
    jobs: list[TransientJob], backend: str | None = None
) -> list[TransientResult]:
    """Evaluate transient jobs, batching same-topology dense groups.

    Results are returned in job order and are bitwise-identical to calling
    :func:`~repro.circuit.transient.transient_analysis` per job (see module
    docstring).  Jobs that resolve to the sparse backend, singleton groups,
    and groups whose stacked kernel raises run per job through the serial
    path instead.
    """
    results: list[TransientResult | None] = [None] * len(jobs)
    groups: dict[tuple, list[int]] = {}
    serial_indices: list[int] = []
    for position, job in enumerate(jobs):
        _validate(job)
        assembler = MNAAssembler(job.circuit)
        if resolve_backend(assembler.size, backend) != "dense":
            serial_indices.append(position)
            continue
        groups.setdefault(topology_signature(job, assembler), []).append(position)

    for position in serial_indices:
        results[position] = _run_serial(jobs[position], backend)

    for indices in groups.values():
        if len(indices) == 1:
            metrics.counter("repro_batch_groups_total", mode="serial").inc()
            results[indices[0]] = _run_serial(jobs[indices[0]], backend)
            continue
        group_jobs = [jobs[i] for i in indices]
        try:
            with trace_span("circuit.batch", n_jobs=len(group_jobs)):
                group_results = _Batch(group_jobs, backend).run()
            metrics.counter("repro_batch_groups_total", mode="stacked").inc()
            metrics.histogram("repro_batch_group_points").observe(len(group_jobs))
        except Exception:
            # Never let batching change observable behaviour: rerun the
            # group serially so a genuinely failing job raises the same
            # error a serial caller would see.
            metrics.counter("repro_batch_groups_total", mode="fallback").inc()
            group_results = [_run_serial(job, backend) for job in group_jobs]
        for index, result in zip(indices, group_results):
            results[index] = result

    return results  # type: ignore[return-value]
