"""Technology-node parameter sets for the circuit benchmark.

The paper's circuit benchmark (Fig. 11) uses CMOS 45 nm inverters; the TCAD
extraction example (Fig. 10) refers to a 14 nm inverter layout.  The numbers
below are representative text-book/PTM-level values -- the reproduction does
not claim foundry accuracy, only a realistic drive resistance and input
capacitance so that the interconnect comparison of Fig. 12 is meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.mosfet import MOSFETParameters


@dataclass(frozen=True)
class TechnologyNode:
    """CMOS technology-node parameters used to build inverter cells.

    Attributes
    ----------
    name:
        Human-readable node name ("45nm", "14nm").
    supply_voltage:
        Nominal supply in volt.
    gate_length:
        Drawn channel length in metre.
    nmos_width, pmos_width:
        Default inverter device widths in metre (PMOS wider to balance the
        weaker hole mobility).
    nmos_threshold, pmos_threshold:
        Threshold-voltage magnitudes in volt.
    nmos_transconductance, pmos_transconductance:
        Process transconductance ``mu C_ox`` in A/V^2.
    gate_capacitance_per_area:
        Gate capacitance in F/m^2.
    wire_pitch:
        Minimum metal pitch of the node in metre (used by TCAD structures).
    metal_thickness:
        Typical M1/M2 thickness in metre.
    """

    name: str
    supply_voltage: float
    gate_length: float
    nmos_width: float
    pmos_width: float
    nmos_threshold: float
    pmos_threshold: float
    nmos_transconductance: float
    pmos_transconductance: float
    gate_capacitance_per_area: float
    wire_pitch: float
    metal_thickness: float

    def nmos_parameters(self, width_multiplier: float = 1.0) -> MOSFETParameters:
        """NMOS parameters for this node, optionally scaled in width."""
        return MOSFETParameters(
            polarity=+1,
            threshold_voltage=self.nmos_threshold,
            transconductance=self.nmos_transconductance,
            width=self.nmos_width * width_multiplier,
            length=self.gate_length,
            gate_capacitance_per_area=self.gate_capacitance_per_area,
        )

    def pmos_parameters(self, width_multiplier: float = 1.0) -> MOSFETParameters:
        """PMOS parameters for this node, optionally scaled in width."""
        return MOSFETParameters(
            polarity=-1,
            threshold_voltage=self.pmos_threshold,
            transconductance=self.pmos_transconductance,
            width=self.pmos_width * width_multiplier,
            length=self.gate_length,
            gate_capacitance_per_area=self.gate_capacitance_per_area,
        )

    @property
    def inverter_input_capacitance(self) -> float:
        """Gate capacitance presented by a 1x inverter input in farad."""
        return (
            self.nmos_parameters().gate_capacitance + self.pmos_parameters().gate_capacitance
        )


NODE_45NM = TechnologyNode(
    name="45nm",
    supply_voltage=1.0,
    gate_length=45.0e-9,
    nmos_width=135.0e-9,
    pmos_width=270.0e-9,
    nmos_threshold=0.35,
    pmos_threshold=0.35,
    nmos_transconductance=4.0e-4,
    pmos_transconductance=2.0e-4,
    gate_capacitance_per_area=0.012,
    wire_pitch=140.0e-9,
    metal_thickness=140.0e-9,
)
"""Representative 45 nm node (the paper's Fig. 11 benchmark drivers)."""

NODE_14NM = TechnologyNode(
    name="14nm",
    supply_voltage=0.8,
    gate_length=20.0e-9,
    nmos_width=80.0e-9,
    pmos_width=120.0e-9,
    nmos_threshold=0.30,
    pmos_threshold=0.30,
    nmos_transconductance=6.0e-4,
    pmos_transconductance=3.5e-4,
    gate_capacitance_per_area=0.018,
    wire_pitch=64.0e-9,
    metal_thickness=60.0e-9,
)
"""Representative 14 nm node (the paper's Fig. 10 TCAD inverter)."""


def node_by_name(name: str) -> TechnologyNode:
    """Look up a technology node by its name string ("45nm" or "14nm")."""
    nodes = {NODE_45NM.name: NODE_45NM, NODE_14NM.name: NODE_14NM}
    if name not in nodes:
        raise ValueError(f"unknown technology node {name!r}; available: {sorted(nodes)}")
    return nodes[name]
