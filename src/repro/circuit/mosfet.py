"""Analytic MOSFET large-signal model.

A compact square-law model with channel-length modulation and a smooth
sub-threshold tail, adequate for the delay benchmarking of Fig. 11-12 where
the transistor only has to provide a realistic drive current / effective
output resistance.  The model supplies the current and its derivatives
(``gm``, ``gds``) so Newton iterations in the DC and transient solvers
converge quickly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class MOSFETParameters:
    """Device parameters of the square-law model.

    Attributes
    ----------
    polarity:
        ``+1`` for NMOS, ``-1`` for PMOS.
    threshold_voltage:
        Magnitude of the threshold voltage in volt.
    transconductance:
        Process transconductance ``k' = mu C_ox`` in A/V^2.
    width, length:
        Drawn gate width / length in metre.
    channel_length_modulation:
        ``lambda`` in 1/V.
    subthreshold_slope:
        Exponential sub-threshold slope parameter ``n kT/q`` in volt; keeps
        the model smooth (and the Jacobian non-singular) below threshold.
    gate_capacitance_per_area:
        Gate oxide capacitance in F/m^2 (used by the inverter cell for input
        loading).
    """

    polarity: int
    threshold_voltage: float
    transconductance: float
    width: float
    length: float
    channel_length_modulation: float = 0.1
    subthreshold_slope: float = 0.035
    gate_capacitance_per_area: float = 0.012

    def __post_init__(self) -> None:
        if self.polarity not in (-1, 1):
            raise ValueError("polarity must be +1 (NMOS) or -1 (PMOS)")
        if self.threshold_voltage <= 0:
            raise ValueError("threshold voltage magnitude must be positive")
        if self.transconductance <= 0:
            raise ValueError("transconductance must be positive")
        if self.width <= 0 or self.length <= 0:
            raise ValueError("width and length must be positive")

    @property
    def beta(self) -> float:
        """Gain factor ``k' W / L`` in A/V^2."""
        return self.transconductance * self.width / self.length

    @property
    def gate_capacitance(self) -> float:
        """Total gate capacitance in farad (area term only)."""
        return self.gate_capacitance_per_area * self.width * self.length


@dataclass(frozen=True)
class MOSFET:
    """A MOSFET instance wired between drain, gate and source nodes.

    The bulk is assumed tied to the source (no body effect), which is the
    usual configuration of a static CMOS inverter.
    """

    name: str
    drain: str
    gate: str
    source: str
    parameters: MOSFETParameters

    # --- normalised (N-type, vds >= 0) model --------------------------------------

    def _normal_mode(self, vgs: float, vds: float) -> tuple[float, float, float]:
        """Current and derivatives of an N-type device with ``vds >= 0``.

        Returns ``(i_d, di/dvgs, di/dvds)``.  The gate overdrive is replaced by
        the softplus ``V_eff = n_s ln(1 + exp((V_gs - V_th) / n_s))`` so that
        the square-law expressions blend smoothly into an exponential
        sub-threshold tail; the current and both derivatives are continuous
        everywhere, which keeps the Newton iterations of the MNA solver stable
        around the switching threshold.
        """
        p = self.parameters
        beta = p.beta
        lam = p.channel_length_modulation
        slope = p.subthreshold_slope
        overdrive = vgs - p.threshold_voltage

        # Softplus effective overdrive and its derivative (logistic function).
        x = overdrive / slope
        if x > 30.0:
            v_eff = overdrive
            dv_eff = 1.0
        elif x < -30.0:
            v_eff = slope * math.exp(x)
            dv_eff = math.exp(x)
        else:
            v_eff = slope * math.log1p(math.exp(x))
            dv_eff = 1.0 / (1.0 + math.exp(-x))

        if vds < v_eff:
            # Triode region.
            core = v_eff * vds - 0.5 * vds**2
            i_d = beta * core * (1.0 + lam * vds)
            d_vgs = beta * vds * (1.0 + lam * vds) * dv_eff
            d_vds = beta * (v_eff - vds) * (1.0 + lam * vds) + beta * core * lam
            return i_d, d_vgs, d_vds

        # Saturation.
        i_d = 0.5 * beta * v_eff**2 * (1.0 + lam * vds)
        d_vgs = beta * v_eff * (1.0 + lam * vds) * dv_eff
        d_vds = 0.5 * beta * v_eff**2 * lam
        return i_d, d_vgs, d_vds

    # --- terminal-referred model -----------------------------------------------------

    def evaluate(self, v_gs: float, v_ds: float) -> tuple[float, float, float]:
        """Current and small-signal derivatives ``(i_ds, gm, gds)``.

        ``i_ds`` is the current flowing from the drain terminal to the source
        terminal (negative for a conducting PMOS).  ``gm = d i_ds / d v_gs``
        and ``gds = d i_ds / d v_ds`` are the derivatives with respect to the
        *terminal* voltages, which is what the MNA Newton stamps need.
        """
        sign = float(self.parameters.polarity)
        vgs_n = sign * v_gs
        vds_n = sign * v_ds

        if vds_n >= 0.0:
            i_n, d_vgs_n, d_vds_n = self._normal_mode(vgs_n, vds_n)
        else:
            # Reverse conduction: drain and source swap roles.  The controlling
            # voltage becomes v_gd and the current reverses.
            i_f, d_vg_f, d_vd_f = self._normal_mode(vgs_n - vds_n, -vds_n)
            i_n = -i_f
            d_vgs_n = -d_vg_f
            d_vds_n = d_vg_f + d_vd_f

        # d(sign * i_n)/d(v_gs) = sign * d(i_n)/d(vgs_n) * sign = d(i_n)/d(vgs_n)
        return sign * i_n, d_vgs_n, d_vds_n

    def drain_current(self, v_gs: float, v_ds: float) -> float:
        """Drain-to-source current in ampere for the given terminal voltages."""
        current, _, _ = self.evaluate(v_gs, v_ds)
        return current

    # --- convenience --------------------------------------------------------------

    def saturation_current(self, v_dd: float) -> float:
        """On-current magnitude with full gate and drain bias (ampere)."""
        p = self.parameters
        overdrive = v_dd - p.threshold_voltage
        if overdrive <= 0:
            return 0.0
        return 0.5 * p.beta * overdrive**2 * (1.0 + p.channel_length_modulation * v_dd)

    def effective_resistance(self, v_dd: float) -> float:
        """Switching-effective output resistance in ohm.

        Uses the standard ``R_eff ~ 3/4 * V_DD / I_on`` approximation for the
        average resistance during an output transition.
        """
        i_on = self.saturation_current(v_dd)
        if i_on <= 0:
            return float("inf")
        return 0.75 * v_dd / i_on
