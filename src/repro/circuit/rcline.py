"""Distributed RC ladder expansion of interconnect lines.

Turns a :class:`~repro.core.line.DistributedRC` description (or any compact
model wrapped in :class:`~repro.core.line.InterconnectLine`) into resistor /
capacitor elements of a :class:`~repro.circuit.netlist.Circuit`, which is how
the paper's "extracted RC netlists ... in a SPICE-like format" enter the
circuit benchmark of Fig. 11.
"""

from __future__ import annotations

from repro.circuit.netlist import Circuit
from repro.core.line import DistributedRC, InterconnectLine


def add_rc_ladder(
    circuit: Circuit,
    ladder: DistributedRC | InterconnectLine,
    input_node: str,
    output_node: str,
    name_prefix: str = "line",
    ground: str = "0",
) -> list[str]:
    """Add a distributed RC ladder between two nodes of a circuit.

    The ladder uses the standard pi-like segmentation: each of the
    ``n_segments`` segments contributes a series resistance followed by a
    shunt capacitance to ground; the lumped contact resistance (quantum +
    imperfect metal-CNT contact) is split between the two ends.

    Parameters
    ----------
    circuit:
        Circuit to add elements to.
    ladder:
        Distributed description of the line (an :class:`InterconnectLine` is
        expanded automatically).
    input_node, output_node:
        Nodes the line connects.
    name_prefix:
        Prefix for element and internal-node names (must be unique per line).
    ground:
        Ground node name for the shunt capacitors.

    Returns
    -------
    list of the internal node names created for this line, in order from the
    input side to the output side.
    """
    if isinstance(ladder, InterconnectLine):
        ladder = ladder.distributed()

    internal_nodes: list[str] = []
    n = ladder.n_segments
    segment_r = ladder.segment_resistance
    segment_c = ladder.segment_capacitance
    end_r = ladder.end_resistance

    # Entry contact resistance (if any).
    current_node = input_node
    if end_r > 0.0:
        node = f"{name_prefix}_in"
        circuit.add_resistor(f"{name_prefix}_rc_in", current_node, node, end_r)
        internal_nodes.append(node)
        current_node = node

    for index in range(n):
        is_last = index == n - 1
        if is_last and end_r <= 0.0:
            next_node = output_node
        else:
            next_node = f"{name_prefix}_{index + 1}"
            internal_nodes.append(next_node)

        if segment_r > 0.0:
            circuit.add_resistor(f"{name_prefix}_r{index}", current_node, next_node, segment_r)
        else:
            # Degenerate (resistance-free) segment: tie the nodes with a tiny resistor
            # so the ladder stays a connected two-port.
            circuit.add_resistor(f"{name_prefix}_r{index}", current_node, next_node, 1.0e-6)
        if segment_c > 0.0:
            circuit.add_capacitor(f"{name_prefix}_c{index}", next_node, ground, segment_c)
        current_node = next_node

    # Exit contact resistance (if any).
    if end_r > 0.0:
        circuit.add_resistor(f"{name_prefix}_rc_out", current_node, output_node, end_r)

    return internal_nodes
