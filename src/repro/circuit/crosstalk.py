"""Crosstalk noise analysis of coupled interconnects.

Fig. 10a of the paper highlights the electric-field streamlines coupling
neighbouring lines; this module closes the loop by quantifying the circuit
consequence: a switching aggressor line injects a noise glitch onto a quiet
victim line through the coupling capacitance extracted by the TCAD layer (or
the analytic coupled-line formula).  The victim/aggressor pair is simulated
with the MNA transient engine so the noise peak and the delay push-out of a
simultaneously switching victim are measured the way a signal-integrity flow
would.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.compiled import SolverOptions
from repro.circuit.delay import crossing_time
from repro.circuit.elements import Step
from repro.circuit.inverter import Inverter, add_supply
from repro.circuit.netlist import Circuit
from repro.circuit.rcline import add_rc_ladder
from repro.circuit.technology import NODE_45NM, TechnologyNode
from repro.circuit.transient import transient_analysis
from repro.core.line import InterconnectLine


@dataclass(frozen=True)
class CrosstalkResult:
    """Outcome of a victim/aggressor crosstalk simulation.

    Attributes
    ----------
    noise_peak:
        Peak glitch amplitude induced on the quiet victim's far end, in volt.
    noise_peak_fraction:
        Glitch amplitude as a fraction of the supply voltage.
    victim_delay_quiet:
        Victim delay when the aggressor is quiet, in second.
    victim_delay_opposite_switching:
        Victim delay when the aggressor switches in the opposite direction
        (worst-case Miller coupling), in second.
    delay_pushout:
        Relative delay increase caused by the opposite-switching aggressor.
    """

    noise_peak: float
    noise_peak_fraction: float
    victim_delay_quiet: float
    victim_delay_opposite_switching: float
    delay_pushout: float


def _build_pair(
    line: InterconnectLine,
    coupling_capacitance: float,
    technology: TechnologyNode,
    victim_switches: bool,
    aggressor_switches: bool,
    aggressor_rising: bool,
) -> tuple[Circuit, float]:
    """Victim + aggressor circuit with distributed coupling between the lines."""
    v_dd = technology.supply_voltage
    circuit = Circuit(title="crosstalk victim/aggressor pair")
    add_supply(circuit, technology)

    if victim_switches:
        circuit.add_voltage_source(
            "vin_v", "vin", "0", Step(0.0, v_dd, delay=2e-12, rise_time=5e-12)
        )
    else:
        circuit.add_voltage_source("vin_v", "vin", "0", v_dd)  # victim driven low (output high... inverted)

    if aggressor_switches:
        start, stop = (0.0, v_dd) if aggressor_rising else (v_dd, 0.0)
        circuit.add_voltage_source(
            "vin_a", "ain", "0", Step(start, stop, delay=2e-12, rise_time=5e-12)
        )
    else:
        circuit.add_voltage_source("vin_a", "ain", "0", 0.0)

    Inverter("vdrv", "vin", "vnear", technology=technology).add_to(circuit)
    Inverter("adrv", "ain", "anear", technology=technology).add_to(circuit)

    victim_nodes = add_rc_ladder(circuit, line, "vnear", "vfar", name_prefix="victim")
    aggressor_nodes = add_rc_ladder(circuit, line, "anear", "afar", name_prefix="aggr")

    Inverter("vrcv", "vfar", "vout", technology=technology).add_to(circuit)
    Inverter("arcv", "afar", "aout", technology=technology).add_to(circuit)

    # Distribute the coupling capacitance along the two ladders.
    shared = min(len(victim_nodes), len(aggressor_nodes))
    if shared == 0:
        circuit.add_capacitor("cc_end", "vfar", "afar", coupling_capacitance)
    else:
        per_node = coupling_capacitance / shared
        for index in range(shared):
            circuit.add_capacitor(
                f"cc_{index}", victim_nodes[index], aggressor_nodes[index], per_node
            )
    return circuit, v_dd


def analyze_crosstalk(
    line: InterconnectLine,
    coupling_capacitance: float,
    technology: TechnologyNode = NODE_45NM,
    simulation_margin: float = 10.0,
    n_time_steps: int = 500,
    backend: str | None = None,
    solver_opts: SolverOptions | None = None,
) -> CrosstalkResult:
    """Simulate the victim/aggressor pair and extract noise and delay push-out.

    Parameters
    ----------
    line:
        Interconnect model used for *both* the victim and the aggressor.
    coupling_capacitance:
        Total line-to-line coupling capacitance in farad (e.g. the
        ``coupling_capacitance`` of a TCAD extraction times the line length).
    technology:
        Driver/receiver technology node.
    simulation_margin:
        Simulation window as a multiple of the victim's Elmore delay.
    n_time_steps:
        Number of transient steps per simulation.
    backend:
        MNA solver backend (``"dense"``/``"sparse"``); ``None`` selects by
        circuit size (:func:`repro.circuit.compiled.resolve_backend`).
    solver_opts:
        Newton policy forwarded to every :func:`transient_analysis` call
        (sparse backend only).

    Returns
    -------
    CrosstalkResult
    """
    if coupling_capacitance < 0:
        raise ValueError("coupling capacitance cannot be negative")

    driver = Inverter("sizing", "a", "b", technology=technology)
    elmore = line.elmore_delay(driver.output_resistance(), driver.input_capacitance)
    stop_time = max(simulation_margin * elmore, 100e-12)
    dt = stop_time / n_time_steps

    # Case 1: quiet victim (held), switching aggressor -> glitch on the victim.
    circuit, v_dd = _build_pair(
        line, coupling_capacitance, technology, victim_switches=False,
        aggressor_switches=True, aggressor_rising=True,
    )
    result = transient_analysis(circuit, stop_time, dt, backend=backend, solver_opts=solver_opts)
    victim_far = result.voltage("vfar")
    baseline = victim_far[0]
    noise_peak = float(np.max(np.abs(victim_far - baseline)))

    # Case 2: victim switches alone.
    circuit_quiet, _ = _build_pair(
        line, coupling_capacitance, technology, victim_switches=True,
        aggressor_switches=False, aggressor_rising=True,
    )
    quiet = transient_analysis(circuit_quiet, stop_time, dt, backend=backend, solver_opts=solver_opts)
    t_in = crossing_time(quiet.times, quiet.voltage("vin"), v_dd / 2)
    t_quiet = crossing_time(quiet.times, quiet.voltage("vfar"), v_dd / 2, start_time=t_in) - t_in

    # Case 3: victim switches while the aggressor switches the other way.
    circuit_opp, _ = _build_pair(
        line, coupling_capacitance, technology, victim_switches=True,
        aggressor_switches=True, aggressor_rising=False,
    )
    opposite = transient_analysis(circuit_opp, stop_time, dt, backend=backend, solver_opts=solver_opts)
    t_in_opp = crossing_time(opposite.times, opposite.voltage("vin"), v_dd / 2)
    t_opposite = (
        crossing_time(opposite.times, opposite.voltage("vfar"), v_dd / 2, start_time=t_in_opp)
        - t_in_opp
    )

    return CrosstalkResult(
        noise_peak=noise_peak,
        noise_peak_fraction=noise_peak / v_dd,
        victim_delay_quiet=t_quiet,
        victim_delay_opposite_switching=t_opposite,
        delay_pushout=(t_opposite - t_quiet) / t_quiet if t_quiet > 0 else float("nan"),
    )
