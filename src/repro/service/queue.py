"""Durable on-disk spec queue with lease-based exactly-once job claiming.

A :class:`SpecQueue` is a directory that clients drop serialized
:class:`~repro.service.jobs.JobSpec` documents into and daemons drain.  The
coordination is *exactly* the :class:`~repro.dist.store.SharedStore`
lease/tombstone machinery that already makes sweep points race-safe, reused
one level up -- a job's **completion record** plays the role of a store
entry:

======================  ======================================================
``<id>.job.json``       the submitted spec (immutable, written once)
``<id>.done.json``      completion record (atomic publish removes the lease)
``<id>.done.json.lease``  a daemon's ttl-bounded claim while it executes
``<id>.done.json.failed`` failure tombstone (the job raised; not retried)
``<id>.progress.json``  live progress (single writer: the claiming daemon)
``<id>.result.json``    the job's merged ResultSet export
======================  ======================================================

``claim`` therefore inherits all of the store's guarantees: exactly one
live daemon holds a job at a time, a daemon killed mid-job merely loses its
lease (once the ttl lapses any surviving daemon claims the job again, and
the *points* it already published to the result store are not recomputed),
and publishing the completion record is atomic.  A job whose execution
raises gets a failure tombstone instead -- tombstoned jobs are **not**
retried (unlike sweep points, a job has no sibling claim that would succeed
where this one raised); :meth:`SpecQueue.requeue` clears the tombstone to
resubmit it after the cause is fixed.

A queue is safe to share between N daemons, M HTTP servers and any number
of submitting clients through the filesystem alone; no process is special.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from typing import Any, Iterator, Mapping

from repro.api.results import ResultSet
from repro.dist.store import (
    CLAIM_ACQUIRED,
    DEFAULT_LEASE_TTL,
    FAILED_SUFFIX,
    LEASE_SUFFIX,
    SharedStore,
    _atomic_write,
)
from repro.dist.worker import LeaseHeartbeat
from repro.obs.trace import current_carrier
from repro.service.jobs import (
    JOB_DONE,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_RUNNING,
    JobSpec,
)

JOB_SUFFIX = ".job.json"
DONE_SUFFIX = ".done.json"
PROGRESS_SUFFIX = ".progress.json"
RESULT_SUFFIX = ".result.json"


class UnknownJobError(KeyError):
    """Raised when looking up a job id the queue has never seen."""

    # KeyError.__str__ repr-quotes the message; keep the plain text.
    __str__ = Exception.__str__


class _QueueStore(SharedStore):
    """A :class:`SharedStore` whose entries are plain JSON documents.

    The claim/release/renew/tombstone machinery is inherited unchanged --
    only the entry payload differs: queue completion records are small JSON
    objects, not ResultSets, so ``load``/``publish`` (de)serialise dicts.
    A corrupt completion record loads as ``None``, which makes ``claim``
    dispose of it and re-grant the job, exactly like a torn store entry.
    """

    def load(self, path: str) -> dict | None:  # type: ignore[override]
        if not os.path.exists(path):
            return None
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    def publish(self, path: str, payload: Mapping[str, Any]) -> None:  # type: ignore[override]
        with self.lock():
            os.makedirs(self.directory, exist_ok=True)
            _atomic_write(self.directory, path, json.dumps(payload), fsync=True)
            self._unlink_lease(path)
            try:
                os.unlink(path + FAILED_SUFFIX)
            except FileNotFoundError:
                pass


def new_job_id() -> str:
    """A fresh, unguessable job id (``j-<12 hex>``)."""
    return f"j-{uuid.uuid4().hex[:12]}"


class SpecQueue:
    """One queue directory: submit, claim, track and complete jobs.

    All methods are safe to call from any process sharing the directory;
    the mutating ones coordinate through the queue's store lock exactly as
    distributed workers do on a result store.
    """

    def __init__(self, directory: str, poll_interval: float = 0.05) -> None:
        self.directory = str(directory)
        self._store = _QueueStore(self.directory, poll_interval=poll_interval)

    def __repr__(self) -> str:
        return f"SpecQueue({self.directory!r})"

    # --- layout -----------------------------------------------------------

    def _path(self, job_id: str, suffix: str) -> str:
        return os.path.join(self.directory, f"{job_id}{suffix}")

    def done_path(self, job_id: str) -> str:
        """The completion-record path -- the lease anchor of the job."""
        return self._path(job_id, DONE_SUFFIX)

    def result_path(self, job_id: str) -> str:
        """Where the job's merged ResultSet export lives once done."""
        return self._path(job_id, RESULT_SUFFIX)

    # --- submission -------------------------------------------------------

    def submit(self, job: JobSpec) -> str:
        """Append one job; returns its fresh id.

        The spec document is written atomically under a unique name, so
        submission needs no lock and a crashed submit leaves nothing
        half-written behind.
        """
        job_id = new_job_id()
        document = {
            "job_id": job_id,
            "submitted_at": time.time(),
            "spec": job.to_payload(),
        }
        # An active trace context rides along as a *top-level* document key
        # (JobSpec.from_payload rejects unknown spec fields), so the daemon
        # that eventually executes the job can continue the submitter's
        # trace.  Pure bookkeeping: never part of the spec or any hash.
        carrier = current_carrier()
        if carrier is not None:
            document["trace"] = carrier
        os.makedirs(self.directory, exist_ok=True)
        _atomic_write(
            self.directory, self._path(job_id, JOB_SUFFIX), json.dumps(document),
            fsync=True,
        )
        return job_id

    def _read_document(self, job_id: str) -> dict[str, Any]:
        path = self._path(job_id, JOB_SUFFIX)
        try:
            with open(path) as handle:
                document = json.load(handle)
        except FileNotFoundError:
            raise UnknownJobError(
                f"no job {job_id!r} in queue {self.directory}"
            ) from None
        except (OSError, ValueError) as error:
            raise UnknownJobError(
                f"job {job_id!r} in queue {self.directory} is unreadable: {error}"
            ) from None
        if not isinstance(document, dict):
            raise UnknownJobError(
                f"job {job_id!r} in queue {self.directory} is not a job document"
            )
        return document

    def get(self, job_id: str) -> JobSpec:
        """The parsed spec of one job (:class:`UnknownJobError` if absent)."""
        return JobSpec.from_payload(self._read_document(job_id).get("spec"))

    def read_trace(self, job_id: str) -> dict[str, Any] | None:
        """The trace carrier submitted with a job, if any (tolerant read)."""
        try:
            trace = self._read_document(job_id).get("trace")
        except UnknownJobError:
            return None
        return trace if isinstance(trace, dict) else None

    def job_ids(self) -> list[str]:
        """Every submitted job id, oldest first (submission-time order)."""
        if not os.path.isdir(self.directory):
            return []
        found: list[tuple[float, str]] = []
        for filename in os.listdir(self.directory):
            if not filename.endswith(JOB_SUFFIX):
                continue
            job_id = filename[: -len(JOB_SUFFIX)]
            try:
                submitted = float(self._read_document(job_id).get("submitted_at", 0.0))
            except (UnknownJobError, TypeError, ValueError):
                submitted = 0.0
            found.append((submitted, job_id))
        return [job_id for _, job_id in sorted(found)]

    # --- claiming (SharedStore lease semantics) ----------------------------

    def claim(
        self, job_id: str, worker_id: str, ttl: float = DEFAULT_LEASE_TTL
    ) -> str:
        """Claim one job: ``"acquired"``, ``"done"`` or ``"busy"``.

        Delegates to :meth:`SharedStore.claim` on the completion-record
        path, so stale leases of crashed daemons are taken over
        transparently and a published completion reports ``"done"``.
        """
        return self._store.claim(self.done_path(job_id), worker_id, ttl)

    def claim_next(
        self, worker_id: str, ttl: float = DEFAULT_LEASE_TTL
    ) -> tuple[str, Any] | None:
        """Claim the oldest claimable job, or ``None`` when nothing is.

        Returns ``(job_id, raw_spec_payload)`` -- the payload is handed back
        *unparsed* so the caller (the daemon) owns the malformed-spec
        policy: parse failures fail the job visibly instead of wedging the
        queue.  Jobs that are done, tombstoned (failed) or leased to a live
        daemon are skipped.
        """
        for job_id in self.job_ids():
            done_path = self.done_path(job_id)
            if os.path.exists(done_path):
                continue  # completed: nothing to claim
            if os.path.exists(done_path + FAILED_SUFFIX):
                continue  # failed: not retried until requeue() clears it
            if self.claim(job_id, worker_id, ttl) == CLAIM_ACQUIRED:
                try:
                    payload = self._read_document(job_id).get("spec")
                except UnknownJobError as error:
                    # The spec file vanished or rotted after submission;
                    # fail the job so it stops being offered.
                    self.fail(job_id, worker_id, str(error))
                    continue
                return job_id, payload
        return None

    def release(self, job_id: str, worker_id: str) -> None:
        """Give a claimed job up without completing it (re-queued)."""
        self._store.release(self.done_path(job_id), worker_id)

    def renew(
        self, job_id: str, worker_id: str, ttl: float = DEFAULT_LEASE_TTL
    ) -> bool:
        """Heartbeat one's own job lease (see :meth:`SharedStore.renew`)."""
        return self._store.renew(self.done_path(job_id), worker_id, ttl)

    def heartbeat(
        self, job_id: str, worker_id: str, ttl: float = DEFAULT_LEASE_TTL
    ) -> LeaseHeartbeat:
        """Context manager renewing the job lease while its body executes."""
        return LeaseHeartbeat(self._store, self.done_path(job_id), worker_id, ttl)

    # --- completion -------------------------------------------------------

    def record_progress(self, job_id: str, **fields: Any) -> None:
        """Overwrite the job's live progress document (claiming daemon only).

        Single-writer by construction (only the lease holder reports), so
        the atomic write needs no lock.
        """
        payload = {"updated_at": time.time(), **fields}
        _atomic_write(
            self.directory, self._path(job_id, PROGRESS_SUFFIX), json.dumps(payload)
        )

    def complete(self, job_id: str, summary: Mapping[str, Any]) -> None:
        """Publish the completion record (atomic; removes lease + tombstone)."""
        payload = {"state": JOB_DONE, "completed_at": time.time(), **summary}
        self._store.publish(self.done_path(job_id), payload)

    def fail(self, job_id: str, worker_id: str, error: str) -> None:
        """Record a job failure: release the lease, write the tombstone."""
        done_path = self.done_path(job_id)
        self._store.release(done_path, worker_id)
        self._store.record_failure(done_path, worker_id, error)

    def requeue(self, job_id: str) -> bool:
        """Clear a failed job's tombstone so daemons offer it again.

        Returns True when a tombstone was removed.  No-op (False) for jobs
        that are not in the failed state.
        """
        self._read_document(job_id)  # raises UnknownJobError for bogus ids
        with self._store.lock():
            try:
                os.unlink(self.done_path(job_id) + FAILED_SUFFIX)
                return True
            except FileNotFoundError:
                return False

    # --- inspection -------------------------------------------------------

    def _read_json(self, path: str) -> dict[str, Any] | None:
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    def status(self, job_id: str) -> dict[str, Any]:
        """One job's merged status view (spec summary + state + progress).

        State derivation mirrors the lease semantics: a completion record
        means ``done``, a tombstone means ``failed``, a live unexpired
        lease means ``running``, anything else is ``queued`` (an *expired*
        lease counts as queued -- the next daemon pass will take the job
        over, exactly like a stale sweep-point lease).
        """
        document = self._read_document(job_id)
        spec = document.get("spec") if isinstance(document.get("spec"), dict) else {}
        status: dict[str, Any] = {
            "job_id": job_id,
            "kind": spec.get("kind"),
            "name": spec.get("name"),
            "submitted_at": document.get("submitted_at"),
        }
        done_path = self.done_path(job_id)
        done = self._store.load(done_path)
        if done is not None:
            status.update(done)
            status["state"] = JOB_DONE
            return status
        tombstone = self._read_json(done_path + FAILED_SUFFIX)
        if tombstone is not None:
            status["state"] = JOB_FAILED
            status["error"] = tombstone.get("error")
            status["worker_id"] = tombstone.get("worker")
            status["failed_at"] = tombstone.get("failed_at")
            return status
        lease = self._store.read_lease(done_path)
        if lease is not None and not lease.expired():
            status["state"] = JOB_RUNNING
            status["worker_id"] = lease.worker
            progress = self._read_json(self._path(job_id, PROGRESS_SUFFIX))
            if progress is not None:
                status["progress"] = progress
            return status
        status["state"] = JOB_QUEUED
        return status

    def statuses(self) -> list[dict[str, Any]]:
        """Status views of every job, oldest first."""
        return [self.status(job_id) for job_id in self.job_ids()]

    def depth(self) -> dict[str, int]:
        """Job counts by state (the ``health`` endpoint's queue block)."""
        counts = {state: 0 for state in (JOB_QUEUED, JOB_RUNNING, JOB_DONE, JOB_FAILED)}
        for status in self.statuses():
            counts[status["state"]] += 1
        return counts

    def load_result(self, job_id: str) -> ResultSet:
        """The merged ResultSet of a completed job.

        Raises :class:`UnknownJobError` for unknown ids and
        :class:`ValueError` (carrying the job's current state) when the job
        has not produced a result yet.
        """
        state = self.status(job_id)["state"]
        path = self.result_path(job_id)
        if state != JOB_DONE or not os.path.exists(path):
            raise ValueError(
                f"job {job_id!r} has no results: state is {state!r}"
            )
        return ResultSet.from_json(path)

    def store_result(self, job_id: str, result: ResultSet) -> str:
        """Atomically export a job's merged ResultSet; returns the path.

        Written *before* the completion record is published, so a ``done``
        state always implies a readable result file.
        """
        path = self.result_path(job_id)
        os.makedirs(self.directory, exist_ok=True)
        _atomic_write(self.directory, path, result.to_json(), fsync=True)
        return path

    # --- maintenance ------------------------------------------------------

    def gc(self, now: float | None = None, dry_run: bool = False) -> list[str]:
        """Collect queue residue; returns the removed paths.

        Removes **expired or orphaned job leases** (a daemon died mid-job:
        the job is claimable again either way, the lease record is just
        clutter) and **superseded tombstones** (a completion record exists,
        so the recorded failure is history).  Failure tombstones of jobs
        that never completed are *kept* -- they encode the ``failed`` state
        (clear one explicitly with :meth:`requeue`).  Progress documents of
        settled (done/failed) jobs are dropped too.

        Lease and tombstone residue is collected through the store seam
        (:meth:`~repro.dist.store.ResultStore.collect_garbage` with pending
        failures kept), so the mechanics follow the store backend -- a
        locked directory sweep here, conditional ``DELETE`` statements for
        a SQL-backed queue store -- while progress documents, which are
        queue-level artifacts rather than store bookkeeping, are swept by
        the queue itself via :meth:`~repro.dist.store.ResultStore.exists`.
        """
        stale = self._store.collect_garbage(
            now=now, dry_run=dry_run, keep_pending_failures=True
        )
        progress: list[str] = []
        if os.path.isdir(self.directory):
            for filename in sorted(os.listdir(self.directory)):
                if not filename.endswith(PROGRESS_SUFFIX):
                    continue
                job_id = filename[: -len(PROGRESS_SUFFIX)]
                done_path = self.done_path(job_id)
                if self._store.exists(done_path) or self._store.exists(
                    done_path + FAILED_SUFFIX
                ):
                    progress.append(os.path.join(self.directory, filename))
        if not dry_run:
            for path in progress:
                try:
                    os.unlink(path)
                except FileNotFoundError:
                    pass
        return stale + progress

    def __iter__(self) -> Iterator[str]:
        return iter(self.job_ids())

    def __len__(self) -> int:
        return len(self.job_ids())
