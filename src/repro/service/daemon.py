"""Sweep daemon: claim jobs from a spec queue, execute, publish, repeat.

:func:`serve_queue` is the loop behind ``python -m repro worker --watch
QUEUE_DIR``.  A daemon binds one :class:`~repro.service.queue.SpecQueue`
(the work list) to one :class:`~repro.dist.store.SharedStore` (where the
point results live) and serves until stopped:

* **claim**: the oldest claimable job is leased through the queue's
  :class:`~repro.dist.store.SharedStore` semantics -- exactly one live
  daemon owns a job, and a crashed daemon's lease expires within one ttl so
  a sibling takes the job over (the points it already published are served
  from the store, not recomputed);
* **execute**: sweep jobs run through
  :func:`repro.dist.worker.run_worker` -- the same claim/execute/publish
  loop, heartbeats and shard-aware claiming a shell worker uses -- and
  study jobs resolve their pipeline stage-aware first, so N daemons on one
  store cooperate point by point even *within* one job; campaign jobs run
  the closed-loop :class:`~repro.campaign.Campaign` runner against the
  store, publishing every visited point; a background heartbeat renews the
  job lease the whole time;
* **publish**: the merged ResultSet (assembled from the store, hence
  bit-identical to a serial run) is exported next to the queue entry and
  the completion record is published atomically.  A job that raises gets a
  failure tombstone instead and is not retried (see
  :meth:`~repro.service.queue.SpecQueue.requeue`);
* **idle**: between jobs the daemon polls with jittered exponential
  backoff (:class:`~repro.dist.backoff.Backoff`), so a fleet of daemons on
  one queue does not hammer the store lock in lockstep.

Shutdown is cooperative: ``stop`` (a :class:`threading.Event`) is checked
between jobs, so setting it -- the SIGTERM handler of the CLI does --
finishes the in-flight job, publishes it, and exits cleanly.  With
``drain=True`` the daemon exits as soon as the queue has nothing claimable
instead of waiting for new work (the mode the CI smoke job and the tests
use).

Quick start::

    import tempfile

    from repro.api import SweepSpec
    from repro.dist import SharedStore
    from repro.service import JobSpec, SpecQueue, serve_queue

    queue = SpecQueue(tempfile.mkdtemp())
    store = SharedStore(tempfile.mkdtemp())
    job_id = queue.submit(JobSpec(
        kind="sweep", name="table_density",
        sweep=SweepSpec.grid(length_um=[1.0, 10.0]),
    ))

    report = serve_queue(queue, store, drain=True)
    print(report.summary())
    print(queue.status(job_id)["state"], len(queue.load_result(job_id)))
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.api.engine import Engine
from repro.api.study import get_study
from repro.dist.backoff import Backoff
from repro.dist.store import DEFAULT_LEASE_TTL, ResultStore, default_worker_id
from repro.dist.worker import run_worker
from repro.obs import metrics
from repro.obs.trace import activate_carrier, trace_span
from repro.service.jobs import JobSpec
from repro.service.queue import SpecQueue

logger = logging.getLogger("repro.service.daemon")


class JobExecutionError(RuntimeError):
    """A job's execution failed (some points raised, or a stage blew up)."""


@dataclass(frozen=True)
class DaemonReport:
    """What one daemon did over its serving lifetime.

    ``executed`` / ``failed`` hold job ids in completion order; a job a
    sibling daemon claimed first appears in neither list.
    """

    worker_id: str
    executed: list[str] = field(default_factory=list)
    failed: list[str] = field(default_factory=list)
    wall_time_s: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether every job this daemon claimed completed successfully."""
        return not self.failed

    def summary(self) -> str:
        """One-line human summary (what the CLI prints at exit)."""
        return (
            f"daemon {self.worker_id}: {len(self.executed)} jobs executed, "
            f"{len(self.failed)} failed ({self.wall_time_s:.3f} s)"
        )


def execute_job(
    job: JobSpec,
    store: ResultStore,
    worker_id: str,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    on_progress: Callable[[int, int], None] | None = None,
) -> Any:
    """Execute one claimed job against the result store; returns the ResultSet.

    Swept work flows through :func:`repro.dist.worker.run_worker` (lease
    claims, heartbeats, stage-aware upstream resolution), so cooperating
    daemons share points through the store; the merged ResultSet is then
    assembled from the store by a serial :class:`Engine` pass -- pure cache
    hits, which is what makes the fetched result bit-identical (content
    hash and all) to the same sweep run serially.  ``on_progress`` receives
    ``(points_done, points_total)`` as points land.

    Raises :class:`JobExecutionError` when any point fails; the caller
    records the job tombstone.
    """
    stage_params = dict(job.stage_params) or None
    if job.kind == "campaign":
        # The campaign runner drives the store-backed engine itself: every
        # visited point publishes into the shared store, so a re-submitted
        # or resumed campaign replays from cache like any sweep.
        from repro.campaign import Campaign, CampaignError

        settings = dict(job.campaign or {})
        try:
            campaign = Campaign(
                job.name,
                job.sweep,
                settings["objective"],
                mode=settings["mode"],
                strategy=settings["strategy"],
                batch_size=settings["batch"],
                budget=settings.get("budget"),
                seed=settings["seed"],
                base_params=dict(job.params),
                stage_params=stage_params,
                target=settings.get("target"),
                patience=settings.get("patience"),
                tolerance=settings["tolerance"],
                engine=Engine(store=store),
            )
            report = campaign.run(on_progress if on_progress is not None else None)
        except CampaignError as error:
            raise JobExecutionError(str(error))
        if report.result is None:
            raise JobExecutionError(
                "campaign stopped before visiting any point "
                f"({report.stop_reason})"
            )
        return report.result

    if job.kind == "study":
        study = get_study(job.name)
        merged: dict[str, dict[str, Any]] = {
            name: dict(values) for name, values in study.params.items()
        }
        for name, values in job.stage_params.items():
            merged.setdefault(name, {}).update(values)
        target = study.target
        base_params = merged.get(target, {})
        spec = job.sweep if job.sweep is not None else study.sweep
        worker_stage_params = merged
    else:
        target = job.name
        base_params = dict(job.params)
        spec = job.sweep
        worker_stage_params = stage_params

    if spec is not None:
        total = len(spec)
        done = {"count": 0}

        def on_result(point: Any) -> None:
            done["count"] += 1
            if on_progress is not None:
                on_progress(done["count"], total)

        report = run_worker(
            target,
            spec,
            store,
            base_params=base_params,
            worker_id=worker_id,
            lease_ttl=lease_ttl,
            on_result=on_result,
            stage_params=worker_stage_params,
        )
        if report.failed:
            raise JobExecutionError(
                f"{len(report.failed)} of {report.n_points} points failed "
                f"(point indices {sorted(report.failed)}); completed points "
                "stay published -- requeue the job after fixing the cause"
            )

    # Assemble the canonical merged ResultSet through the engine: with every
    # point already published this is a cache-only pass, and the assembly
    # (record order, sweep provenance) is byte-for-byte the serial path.
    engine = Engine(store=store)
    if job.kind == "study":
        return engine.run_study(
            get_study(job.name), stage_params=stage_params, sweep=job.sweep
        )
    return engine.sweep(
        target, spec, base_params=base_params, stage_params=stage_params
    )


def serve_queue(
    queue: SpecQueue,
    store: ResultStore,
    worker_id: str | None = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    poll_interval: float = 0.5,
    drain: bool = False,
    max_jobs: int | None = None,
    stop: threading.Event | None = None,
    on_event: Callable[[str], None] | None = None,
) -> DaemonReport:
    """Serve a spec queue until stopped, drained, or ``max_jobs`` executed.

    Parameters
    ----------
    queue:
        The :class:`SpecQueue` to claim jobs from.
    store:
        Result store the job's points execute against (a
        :class:`~repro.dist.store.SharedStore` when daemons cooperate).
    worker_id:
        Lease identity for both job and point claims; defaults to
        ``<hostname>-<pid>``.
    lease_ttl:
        Job/point lease duration; renewed by heartbeat while work runs, so
        it only bounds how long a *crashed* daemon blocks a job.
    poll_interval:
        Initial idle-poll sleep; idle polls back off geometrically with
        jitter (capped) and snap back on any claimed job.
    drain:
        Exit once nothing is claimable instead of waiting for new jobs.
    max_jobs:
        Exit after this many claimed jobs (``None``: unbounded).
    stop:
        Cooperative shutdown flag, checked between jobs and while idle --
        the in-flight job always completes and publishes.
    on_event:
        Optional line-oriented progress callback (the CLI's progress
        renderer).  Every event also goes to the ``repro.service.daemon``
        logger, so ``python -m repro --log-level info`` sees daemon
        activity with timestamps whether or not a callback is installed.
    """
    worker = worker_id if worker_id is not None else default_worker_id()
    halt = stop if stop is not None else threading.Event()
    backoff = Backoff(initial=poll_interval, maximum=max(poll_interval * 16, 5.0))
    executed: list[str] = []
    failed: list[str] = []
    start = time.perf_counter()

    def emit(message: str) -> None:
        logger.info(message)
        if on_event is not None:
            on_event(message)

    emit(f"daemon {worker}: watching {queue.directory}, store {store.directory}")
    while not halt.is_set():
        claimed = queue.claim_next(worker, lease_ttl)
        if claimed is None:
            if drain:
                break
            if halt.wait(backoff.next_delay()):
                break
            continue
        backoff.reset()
        job_id, payload = claimed
        # The heartbeat keeps the job lease alive for as long as execution
        # takes; the per-point leases inside run_worker have their own.
        # A job submitted under tracing carries its submitter's carrier:
        # adopt it so every span this execution produces (worker points,
        # solver spans, pool workers) joins the submitting client's trace.
        with queue.heartbeat(job_id, worker, lease_ttl), activate_carrier(
            queue.read_trace(job_id)
        ), trace_span("daemon.job", job_id=job_id, worker=worker):
            job_start = time.perf_counter()
            try:
                job = JobSpec.from_payload(payload).validate()
                emit(f"daemon {worker}: claimed {job_id} ({job.describe()})")
                queue.record_progress(job_id, points_done=0, points_total=None)
                result = execute_job(
                    job,
                    store,
                    worker_id=worker,
                    lease_ttl=lease_ttl,
                    on_progress=lambda done, total: queue.record_progress(
                        job_id, points_done=done, points_total=total
                    ),
                )
            except Exception as error:
                message = f"{type(error).__name__}: {error}"
                queue.fail(job_id, worker, message)
                failed.append(job_id)
                metrics.counter("repro_jobs_total", state="failed").inc()
                emit(f"daemon {worker}: {job_id} FAILED: {message}")
            else:
                queue.store_result(job_id, result)
                queue.complete(
                    job_id,
                    {
                        "worker_id": worker,
                        "content_hash": result.content_hash,
                        "n_records": len(result),
                        "wall_time_s": time.perf_counter() - job_start,
                    },
                )
                executed.append(job_id)
                metrics.counter("repro_jobs_total", state="done").inc()
                emit(
                    f"daemon {worker}: {job_id} done "
                    f"({len(result)} records, {result.content_hash[:16]})"
                )
        if max_jobs is not None and len(executed) + len(failed) >= max_jobs:
            break

    report = DaemonReport(
        worker_id=worker,
        executed=executed,
        failed=failed,
        wall_time_s=time.perf_counter() - start,
    )
    emit(report.summary())
    return report
