"""HTTP front end over a spec queue: submit work, poll status, fetch results.

Built on the stdlib :mod:`http.server` (no new dependencies); one
:class:`ServiceServer` fronts one :class:`~repro.service.queue.SpecQueue`.
The server never executes anything -- it writes jobs into the queue and
reads status/result files back -- so it stays responsive no matter what the
daemons are doing, and N servers on one queue directory are as safe as N
daemons.

Endpoint contract (all JSON; see ``docs/SERVICE.md`` for curl sessions):

``POST /submit_sweep``
    Body ``{"experiment", "sweep": {"mode", "axes"}, "params"?,
    "stage_params"?}``.  Validated against the registry at submit time
    (unknown experiment/axis/parameter -> 400 naming the field).  Returns
    ``{"job_id"}``.
``POST /submit_study``
    Body ``{"study", "sweep"?, "params"?}`` where ``params`` are per-stage
    overrides keyed by experiment name.  Returns ``{"job_id"}``.
``GET /status/<job_id>``
    The job's merged status view (state queued/running/done/failed,
    progress, worker, error).  404 for unknown ids.
``GET /fetch_results/<job_id>``
    The completed job's merged ResultSet as its canonical JSON export
    (load with ``ResultSet.from_json``).  409 while the job is not done.
``GET /list_jobs``
    ``{"jobs": [status, ...]}`` oldest first.
``GET /health``
    Liveness + capacity: package version, registry size (experiments and
    studies), queue depth by state.

Errors are ``{"error": message}`` with conventional status codes (400
malformed/invalid submission, 404 unknown job or route, 405 wrong method,
409 results not ready).
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import urlparse

from repro import __version__
from repro.api.experiment import ExperimentError, list_experiments
from repro.api.study import list_studies
from repro.service.jobs import JobSpec
from repro.service.queue import SpecQueue, UnknownJobError

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8765

MAX_BODY_BYTES = 1 << 20
"""Submission bodies above 1 MiB are rejected (413) -- a spec is small."""


class ServiceServer(ThreadingHTTPServer):
    """One HTTP server bound to one spec queue directory."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: tuple[str, int],
        queue: SpecQueue,
        quiet: bool = True,
    ) -> None:
        self.queue = queue
        self.quiet = quiet
        super().__init__(address, ServiceHandler)

    @property
    def url(self) -> str:
        """The server's reachable base URL (port resolved after bind)."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def make_server(
    queue_dir: str,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    quiet: bool = True,
) -> ServiceServer:
    """Bind a :class:`ServiceServer` over ``queue_dir`` (``port=0``: ephemeral).

    The caller owns the serve loop: ``server.serve_forever()`` blocks (the
    CLI's ``python -m repro serve``), or run it in a thread and
    ``server.shutdown()`` to stop (the tests do).
    """
    return ServiceServer((host, port), SpecQueue(queue_dir), quiet=quiet)


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes the endpoint contract; all responses are JSON."""

    server_version = f"repro-service/{__version__}"
    protocol_version = "HTTP/1.1"
    server: ServiceServer  # narrowed for type checkers

    # --- plumbing ---------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        if not self.server.quiet:
            super().log_message(format, *args)

    def _send_json(self, payload: Any, status: int = 200) -> None:
        body = (
            payload if isinstance(payload, bytes) else json.dumps(payload).encode()
        )
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json({"error": message}, status=status)

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise _HttpFault(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise _HttpFault(400, "empty request body; expected a JSON object")
        try:
            payload = json.loads(raw)
        except ValueError as error:
            raise _HttpFault(400, f"request body is not valid JSON: {error}")
        if not isinstance(payload, dict):
            raise _HttpFault(400, "request body must be a JSON object")
        return payload

    # --- routes -----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        path = urlparse(self.path).path.rstrip("/")
        try:
            if path == "/health":
                self._send_json(self._health())
            elif path == "/list_jobs":
                self._send_json({"jobs": self.server.queue.statuses()})
            elif path.startswith("/status/"):
                job_id = path[len("/status/"):]
                self._send_json(self.server.queue.status(job_id))
            elif path.startswith("/fetch_results/"):
                job_id = path[len("/fetch_results/"):]
                self._fetch_results(job_id)
            else:
                self._send_error_json(404, f"unknown endpoint {path!r}")
        except _HttpFault as fault:
            self._send_error_json(fault.status, fault.message)
        except UnknownJobError as error:
            self._send_error_json(404, str(error))
        except Exception as error:  # never let a handler kill the server
            self._send_error_json(500, f"{type(error).__name__}: {error}")

    def do_POST(self) -> None:  # noqa: N802 - http.server contract
        path = urlparse(self.path).path.rstrip("/")
        try:
            if path == "/submit_sweep":
                self._submit(self._sweep_payload(self._read_body()))
            elif path == "/submit_study":
                self._submit(self._study_payload(self._read_body()))
            elif path in ("/health", "/list_jobs") or path.startswith(
                ("/status/", "/fetch_results/")
            ):
                self._send_error_json(405, f"{path!r} is read-only; use GET")
            else:
                self._send_error_json(404, f"unknown endpoint {path!r}")
        except _HttpFault as fault:
            self._send_error_json(fault.status, fault.message)
        except Exception as error:
            self._send_error_json(500, f"{type(error).__name__}: {error}")

    # --- endpoint bodies --------------------------------------------------

    @staticmethod
    def _sweep_payload(body: dict[str, Any]) -> dict[str, Any]:
        if "experiment" not in body:
            raise _HttpFault(400, "submit_sweep body is missing field 'experiment'")
        return {
            "kind": "sweep",
            "name": body["experiment"],
            "sweep": body.get("sweep"),
            "params": body.get("params"),
            "stage_params": body.get("stage_params"),
        }

    @staticmethod
    def _study_payload(body: dict[str, Any]) -> dict[str, Any]:
        if "study" not in body:
            raise _HttpFault(400, "submit_study body is missing field 'study'")
        return {
            "kind": "study",
            "name": body["study"],
            "sweep": body.get("sweep"),
            "stage_params": body.get("params"),
        }

    def _submit(self, payload: dict[str, Any]) -> None:
        try:
            job = JobSpec.from_payload(payload).validate()
        except (ValueError, ExperimentError) as error:
            # Untrusted spec rejected at the door, naming the bad field.
            raise _HttpFault(400, str(error))
        job_id = self.server.queue.submit(job)
        self._send_json({"job_id": job_id, "state": "queued"})

    def _fetch_results(self, job_id: str) -> None:
        queue = self.server.queue
        status = queue.status(job_id)  # raises UnknownJobError -> 404
        try:
            result = queue.load_result(job_id)
        except ValueError:
            raise _HttpFault(
                409,
                f"job {job_id!r} has no results yet: state is "
                f"{status['state']!r}"
                + (f" ({status.get('error')})" if status.get("error") else ""),
            )
        # Re-serialise through the canonical exporter so the body is exactly
        # what ResultSet.from_json round-trips (content hash included).
        self._send_json(result.to_json().encode())

    def _health(self) -> dict[str, Any]:
        return {
            "status": "ok",
            "version": __version__,
            "registry": {
                "experiments": len(list_experiments()),
                "studies": len(list_studies()),
            },
            "queue": {
                "directory": self.server.queue.directory,
                **self.server.queue.depth(),
            },
        }


class _HttpFault(Exception):
    """Internal control flow: an error response with a status code."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
