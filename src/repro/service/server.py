"""HTTP front end over a spec queue: submit work, poll status, fetch results.

Built on the stdlib :mod:`http.server` (no new dependencies); one
:class:`ServiceServer` fronts one :class:`~repro.service.queue.SpecQueue`.
The server never executes anything -- it writes jobs into the queue and
reads status/result files back -- so it stays responsive no matter what the
daemons are doing, and N servers on one queue directory are as safe as N
daemons.

Endpoint contract (all JSON; see ``docs/SERVICE.md`` for curl sessions):

``POST /submit_sweep``
    Body ``{"experiment", "sweep": {"mode", "axes"}, "params"?,
    "stage_params"?}``.  Validated against the registry at submit time
    (unknown experiment/axis/parameter -> 400 naming the field).  Returns
    ``{"job_id"}``.
``POST /submit_study``
    Body ``{"study", "sweep"?, "params"?}`` where ``params`` are per-stage
    overrides keyed by experiment name.  Returns ``{"job_id"}``.
``POST /submit_campaign``
    Body ``{"experiment", "sweep": <candidate pool>, "campaign":
    {"objective", "mode"?, "batch"?, "budget"?, "strategy"?, "seed"?,
    "target"?, "patience"?, "tolerance"?}, "params"?, "stage_params"?}``.
    Queues a closed-loop adaptive campaign (see ``docs/CAMPAIGNS.md``).
    Returns ``{"job_id"}``.
``GET /status/<job_id>``
    The job's merged status view (state queued/running/done/failed,
    progress, worker, error).  404 for unknown ids.
``GET /fetch_results/<job_id>``
    The completed job's merged ResultSet as its canonical JSON export
    (load with ``ResultSet.from_json``).  409 while the job is not done.
``GET /list_jobs``
    ``{"jobs": [status, ...]}`` oldest first.
``GET /health``
    Liveness + capacity: package version, uptime, registry size
    (experiments and studies), queue depth by state, jobs settled since
    this server started, and this process's metrics snapshot.
``GET /metrics``
    Prometheus text exposition (0.0.4) of the process-local
    :mod:`repro.obs.metrics` registry -- HTTP request counters/latency,
    queue depth gauges (refreshed per scrape) and whatever engine/solver
    series this process has produced.

Every endpoint is counted in ``repro_http_requests_total{endpoint,method,
code}`` and timed in ``repro_http_request_seconds{endpoint}`` (job ids are
normalised out of the endpoint label).  A ``POST /submit_*`` carrying an
``X-Repro-Trace`` header joins the submitting client's trace: the submit is
recorded as a ``service.submit`` span and the carrier is stored with the
queued job, so the daemon that executes it continues the same trace.

Errors are ``{"error": message}`` with conventional status codes (400
malformed/invalid submission, 404 unknown job or route, 405 wrong method,
409 results not ready).
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import urlparse

from repro import __version__
from repro.api.experiment import ExperimentError, list_experiments
from repro.api.study import list_studies
from repro.obs import metrics
from repro.obs.metrics import metrics_snapshot, render_prometheus
from repro.obs.trace import TRACE_HEADER, activate_carrier, carrier_from_header, trace_span
from repro.service.jobs import JOB_DONE, JOB_FAILED, JobSpec
from repro.service.queue import SpecQueue, UnknownJobError

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8765

MAX_BODY_BYTES = 1 << 20
"""Submission bodies above 1 MiB are rejected (413) -- a spec is small."""


class ServiceServer(ThreadingHTTPServer):
    """One HTTP server bound to one spec queue directory."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: tuple[str, int],
        queue: SpecQueue,
        quiet: bool = True,
    ) -> None:
        self.queue = queue
        self.quiet = quiet
        self.started_at = time.time()
        # Depth snapshot at bind time: /health reports settled-job deltas
        # against it ("what happened since this server came up").
        self.initial_depth = queue.depth()
        super().__init__(address, ServiceHandler)

    @property
    def url(self) -> str:
        """The server's reachable base URL (port resolved after bind)."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def make_server(
    queue_dir: str,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    quiet: bool = True,
) -> ServiceServer:
    """Bind a :class:`ServiceServer` over ``queue_dir`` (``port=0``: ephemeral).

    The caller owns the serve loop: ``server.serve_forever()`` blocks (the
    CLI's ``python -m repro serve``), or run it in a thread and
    ``server.shutdown()`` to stop (the tests do).
    """
    return ServiceServer((host, port), SpecQueue(queue_dir), quiet=quiet)


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes the endpoint contract; all responses are JSON."""

    server_version = f"repro-service/{__version__}"
    protocol_version = "HTTP/1.1"
    server: ServiceServer  # narrowed for type checkers

    # --- plumbing ---------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        if not self.server.quiet:
            super().log_message(format, *args)

    def _send_body(self, body: bytes, status: int, content_type: str) -> None:
        self._last_status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, payload: Any, status: int = 200) -> None:
        body = (
            payload if isinstance(payload, bytes) else json.dumps(payload).encode()
        )
        self._send_body(body, status, "application/json")

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json({"error": message}, status=status)

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise _HttpFault(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise _HttpFault(400, "empty request body; expected a JSON object")
        try:
            payload = json.loads(raw)
        except ValueError as error:
            raise _HttpFault(400, f"request body is not valid JSON: {error}")
        if not isinstance(payload, dict):
            raise _HttpFault(400, "request body must be a JSON object")
        return payload

    # --- routes -----------------------------------------------------------

    @staticmethod
    def _endpoint_label(path: str) -> str:
        """Normalise a request path to a bounded-cardinality metric label."""
        if path.startswith("/status/"):
            return "/status"
        if path.startswith("/fetch_results/"):
            return "/fetch_results"
        if path in ("/health", "/list_jobs", "/metrics", "/submit_sweep",
                    "/submit_study", "/submit_campaign", "/status",
                    "/fetch_results"):
            return path
        return "other"

    def _observe(self, method: str, path: str, started: float) -> None:
        endpoint = self._endpoint_label(path)
        metrics.counter(
            "repro_http_requests_total",
            endpoint=endpoint,
            method=method,
            code=str(getattr(self, "_last_status", 0)),
        ).inc()
        metrics.histogram("repro_http_request_seconds", endpoint=endpoint).observe(
            time.perf_counter() - started
        )

    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        path = urlparse(self.path).path.rstrip("/")
        started = time.perf_counter()
        try:
            if path == "/health":
                self._send_json(self._health())
            elif path == "/metrics":
                self._metrics()
            elif path == "/list_jobs":
                self._send_json({"jobs": self.server.queue.statuses()})
            elif path.startswith("/status/"):
                job_id = path[len("/status/"):]
                self._send_json(self.server.queue.status(job_id))
            elif path.startswith("/fetch_results/"):
                job_id = path[len("/fetch_results/"):]
                self._fetch_results(job_id)
            else:
                self._send_error_json(404, f"unknown endpoint {path!r}")
        except _HttpFault as fault:
            self._send_error_json(fault.status, fault.message)
        except UnknownJobError as error:
            self._send_error_json(404, str(error))
        except Exception as error:  # never let a handler kill the server
            self._send_error_json(500, f"{type(error).__name__}: {error}")
        finally:
            self._observe("GET", path, started)

    def do_POST(self) -> None:  # noqa: N802 - http.server contract
        path = urlparse(self.path).path.rstrip("/")
        started = time.perf_counter()
        # A client-sent trace context makes the submit (and the queued job)
        # part of the client's trace; absent/malformed headers are ignored.
        carrier = carrier_from_header(self.headers.get(TRACE_HEADER))
        try:
            with activate_carrier(carrier):
                if path == "/submit_sweep":
                    self._submit(self._sweep_payload(self._read_body()))
                elif path == "/submit_study":
                    self._submit(self._study_payload(self._read_body()))
                elif path == "/submit_campaign":
                    self._submit(self._campaign_payload(self._read_body()))
                elif path in ("/health", "/list_jobs", "/metrics") or path.startswith(
                    ("/status/", "/fetch_results/")
                ):
                    self._send_error_json(405, f"{path!r} is read-only; use GET")
                else:
                    self._send_error_json(404, f"unknown endpoint {path!r}")
        except _HttpFault as fault:
            self._send_error_json(fault.status, fault.message)
        except Exception as error:
            self._send_error_json(500, f"{type(error).__name__}: {error}")
        finally:
            self._observe("POST", path, started)

    # --- endpoint bodies --------------------------------------------------

    @staticmethod
    def _sweep_payload(body: dict[str, Any]) -> dict[str, Any]:
        if "experiment" not in body:
            raise _HttpFault(400, "submit_sweep body is missing field 'experiment'")
        return {
            "kind": "sweep",
            "name": body["experiment"],
            "sweep": body.get("sweep"),
            "params": body.get("params"),
            "stage_params": body.get("stage_params"),
        }

    @staticmethod
    def _study_payload(body: dict[str, Any]) -> dict[str, Any]:
        if "study" not in body:
            raise _HttpFault(400, "submit_study body is missing field 'study'")
        return {
            "kind": "study",
            "name": body["study"],
            "sweep": body.get("sweep"),
            "stage_params": body.get("params"),
        }

    @staticmethod
    def _campaign_payload(body: dict[str, Any]) -> dict[str, Any]:
        for required in ("experiment", "sweep", "campaign"):
            if required not in body:
                raise _HttpFault(
                    400, f"submit_campaign body is missing field {required!r}"
                )
        return {
            "kind": "campaign",
            "name": body["experiment"],
            "sweep": body["sweep"],
            "campaign": body["campaign"],
            "params": body.get("params"),
            "stage_params": body.get("stage_params"),
        }

    def _submit(self, payload: dict[str, Any]) -> None:
        try:
            job = JobSpec.from_payload(payload).validate()
        except (ValueError, ExperimentError) as error:
            # Untrusted spec rejected at the door, naming the bad field.
            raise _HttpFault(400, str(error))
        with trace_span(
            "service.submit", kind=payload.get("kind"), target=payload.get("name")
        ) as span:
            # queue.submit self-injects the *current* carrier, i.e. this
            # service.submit span, into the job document.
            job_id = self.server.queue.submit(job)
            span.set("job_id", job_id)
        self._send_json({"job_id": job_id, "state": "queued"})

    def _fetch_results(self, job_id: str) -> None:
        queue = self.server.queue
        status = queue.status(job_id)  # raises UnknownJobError -> 404
        try:
            result = queue.load_result(job_id)
        except ValueError:
            raise _HttpFault(
                409,
                f"job {job_id!r} has no results yet: state is "
                f"{status['state']!r}"
                + (f" ({status.get('error')})" if status.get("error") else ""),
            )
        # Re-serialise through the canonical exporter so the body is exactly
        # what ResultSet.from_json round-trips (content hash included).
        self._send_json(result.to_json().encode())

    def _metrics(self) -> None:
        # Queue depth is registry state only at scrape time: refresh the
        # gauges from the queue directory before rendering.
        for state, count in self.server.queue.depth().items():
            metrics.gauge("repro_queue_depth", state=state).set(count)
        self._send_body(
            render_prometheus().encode(),
            200,
            "text/plain; version=0.0.4; charset=utf-8",
        )

    def _health(self) -> dict[str, Any]:
        depth = self.server.queue.depth()
        initial = self.server.initial_depth
        return {
            "status": "ok",
            "version": __version__,
            "uptime_s": time.time() - self.server.started_at,
            "registry": {
                "experiments": len(list_experiments()),
                "studies": len(list_studies()),
            },
            "queue": {
                "directory": self.server.queue.directory,
                **depth,
            },
            "jobs_since_start": {
                "done": depth[JOB_DONE] - initial.get(JOB_DONE, 0),
                "failed": depth[JOB_FAILED] - initial.get(JOB_FAILED, 0),
            },
            "metrics": metrics_snapshot(),
        }


class _HttpFault(Exception):
    """Internal control flow: an error response with a status code."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
