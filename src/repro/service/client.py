"""Thin Python client for the repro service HTTP API.

Wraps the endpoint contract of :mod:`repro.service.server` in typed calls
(stdlib :mod:`urllib` only)::

    from repro.api import SweepSpec
    from repro.service import ServiceClient

    client = ServiceClient("http://127.0.0.1:8765")
    print(client.health()["queue"])

    job_id = client.submit_sweep(
        "table_density", SweepSpec.grid(length_um=[1.0, 10.0])
    )
    client.wait(job_id, timeout=120)
    result = client.fetch_results(job_id)   # a full ResultSet, bit-identical
    print(len(result), result.content_hash[:16])

Every server-side rejection surfaces as :class:`ServiceError` carrying the
HTTP status and the server's ``error`` message; connection problems raise
:class:`ServiceError` with ``status=None``.  The CLI verbs ``python -m
repro submit/status/fetch`` are thin shells over this class.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Mapping

from repro.api.results import ResultSet
from repro.api.sweep import SweepSpec
from repro.dist.backoff import Backoff
from repro.obs.trace import TRACE_HEADER, carrier_to_header, current_carrier, trace_span
from repro.service.jobs import JOB_DONE, JOB_FAILED


class ServiceError(RuntimeError):
    """An HTTP-level failure talking to the service.

    ``status`` is the HTTP status code, or ``None`` when the server was
    unreachable; the message is the server's ``error`` field when present.
    """

    def __init__(self, message: str, status: int | None = None) -> None:
        super().__init__(message)
        self.status = status


def _sweep_descriptor(sweep: SweepSpec | Mapping[str, Any] | None) -> Any:
    if sweep is None or isinstance(sweep, SweepSpec):
        return None if sweep is None else sweep.to_meta()
    return dict(sweep)  # hand-built descriptor: the server validates it


class ServiceClient:
    """Typed access to one service server (see module docstring)."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def __repr__(self) -> str:
        return f"ServiceClient({self.base_url!r})"

    # --- transport --------------------------------------------------------

    def _request(self, method: str, path: str, payload: Any = None) -> str:
        headers = {"Content-Type": "application/json"}
        # With tracing active, every request carries the open span so the
        # server (and eventually the executing daemon) joins this trace.
        carrier = current_carrier()
        if carrier is not None:
            headers[TRACE_HEADER] = carrier_to_header(carrier)
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            method=method,
            data=None if payload is None else json.dumps(payload).encode(),
            headers=headers,
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read().decode()
        except urllib.error.HTTPError as error:
            body = error.read().decode(errors="replace")
            try:
                message = json.loads(body).get("error", body)
            except ValueError:
                message = body or error.reason
            raise ServiceError(
                f"{method} {path} failed ({error.code}): {message}",
                status=error.code,
            ) from None
        except urllib.error.URLError as error:
            raise ServiceError(
                f"cannot reach service at {self.base_url}: {error.reason}"
            ) from None

    def _get_json(self, path: str) -> Any:
        return json.loads(self._request("GET", path))

    def _post_json(self, path: str, payload: Any) -> Any:
        return json.loads(self._request("POST", path, payload))

    # --- endpoints --------------------------------------------------------

    def submit_sweep(
        self,
        experiment: str,
        sweep: SweepSpec | Mapping[str, Any],
        params: Mapping[str, Any] | None = None,
        stage_params: Mapping[str, Mapping[str, Any]] | None = None,
    ) -> str:
        """Submit a sweep job; returns its job id.

        ``sweep`` is a :class:`SweepSpec` or a raw ``{"mode", "axes"}``
        descriptor; validation (unknown experiment, axis, parameter)
        happens server-side at submit time and raises :class:`ServiceError`
        with the server's field-naming message.
        """
        body: dict[str, Any] = {
            "experiment": experiment,
            "sweep": _sweep_descriptor(sweep),
        }
        if params:
            body["params"] = dict(params)
        if stage_params:
            body["stage_params"] = {k: dict(v) for k, v in stage_params.items()}
        with trace_span("client.submit_sweep", experiment=experiment) as span:
            job_id = self._post_json("/submit_sweep", body)["job_id"]
            span.set("job_id", job_id)
        return job_id

    def submit_study(
        self,
        study: str,
        sweep: SweepSpec | Mapping[str, Any] | None = None,
        params: Mapping[str, Mapping[str, Any]] | None = None,
    ) -> str:
        """Submit a study job (``params`` are per-stage overrides)."""
        body: dict[str, Any] = {"study": study}
        descriptor = _sweep_descriptor(sweep)
        if descriptor is not None:
            body["sweep"] = descriptor
        if params:
            body["params"] = {k: dict(v) for k, v in params.items()}
        with trace_span("client.submit_study", study=study) as span:
            job_id = self._post_json("/submit_study", body)["job_id"]
            span.set("job_id", job_id)
        return job_id

    def submit_campaign(
        self,
        experiment: str,
        sweep: SweepSpec | Mapping[str, Any],
        objective: str,
        mode: str = "min",
        batch: int = 8,
        budget: int | None = None,
        strategy: str = "surrogate",
        seed: int = 0,
        target: float | None = None,
        patience: int | None = None,
        tolerance: float = 0.0,
        params: Mapping[str, Any] | None = None,
        stage_params: Mapping[str, Mapping[str, Any]] | None = None,
    ) -> str:
        """Submit a closed-loop adaptive campaign job; returns its job id.

        ``sweep`` is the campaign's candidate pool; the daemon runs a
        :class:`~repro.campaign.Campaign` over it (strategy/batch/budget/
        stopping rules as given) and stores the merged ResultSet of every
        visited point, with the campaign report under ``meta["campaign"]``.
        """
        campaign: dict[str, Any] = {
            "objective": objective,
            "mode": mode,
            "batch": batch,
            "strategy": strategy,
            "seed": seed,
            "tolerance": tolerance,
        }
        if budget is not None:
            campaign["budget"] = budget
        if target is not None:
            campaign["target"] = target
        if patience is not None:
            campaign["patience"] = patience
        body: dict[str, Any] = {
            "experiment": experiment,
            "sweep": _sweep_descriptor(sweep),
            "campaign": campaign,
        }
        if params:
            body["params"] = dict(params)
        if stage_params:
            body["stage_params"] = {k: dict(v) for k, v in stage_params.items()}
        with trace_span(
            "client.submit_campaign", experiment=experiment, objective=objective
        ) as span:
            job_id = self._post_json("/submit_campaign", body)["job_id"]
            span.set("job_id", job_id)
        return job_id

    def status(self, job_id: str) -> dict[str, Any]:
        """One job's status view (state, progress, worker, error)."""
        return self._get_json(f"/status/{job_id}")

    def list_jobs(self) -> list[dict[str, Any]]:
        """Status views of every queued/running/settled job, oldest first."""
        return self._get_json("/list_jobs")["jobs"]

    def health(self) -> dict[str, Any]:
        """Service liveness: version, registry size, queue depth."""
        return self._get_json("/health")

    def fetch_results(self, job_id: str) -> ResultSet:
        """The completed job's merged :class:`ResultSet`.

        Raises :class:`ServiceError` (status 409) while the job is still
        queued or running, and for failed jobs (the message carries the
        recorded error).
        """
        return ResultSet.from_json(self._request("GET", f"/fetch_results/{job_id}"))

    # --- convenience ------------------------------------------------------

    def wait(
        self,
        job_id: str,
        timeout: float | None = 300.0,
        poll_interval: float = 0.2,
    ) -> dict[str, Any]:
        """Poll until the job settles; returns the terminal status.

        A job that reaches ``failed`` state raises :class:`ServiceError`
        carrying the recorded error; exceeding ``timeout`` raises
        :class:`ServiceError` with the last observed status in the message.
        Polling backs off with jitter like every other loop in the service.
        """
        backoff = Backoff(
            initial=poll_interval, maximum=max(poll_interval * 16, 2.0)
        )
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] == JOB_DONE:
                return status
            if status["state"] == JOB_FAILED:
                raise ServiceError(
                    f"job {job_id} failed: {status.get('error') or 'unknown error'}"
                )
            if deadline is not None and time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {status['state']!r} after "
                    f"{timeout:.1f} s"
                )
            time.sleep(backoff.next_delay())
