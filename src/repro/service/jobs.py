"""Job specs: the serialized unit of work a service client submits.

A *job* is one sweep or study execution request, written into a
:class:`~repro.service.queue.SpecQueue` as a JSON document and later claimed
by a daemon (:func:`repro.service.daemon.serve_queue`).  :class:`JobSpec` is
the typed form of that document:

* ``kind="sweep"``: fan a registered experiment out over a
  :class:`~repro.api.sweep.SweepSpec` (``params`` are the fixed base
  parameters under the sweep axes, ``stage_params`` optional per-stage
  overrides for composite experiments);
* ``kind="study"``: execute a registered :class:`~repro.api.study.Study`
  end to end -- with its default sweep, or an explicit ``sweep`` override,
  and ``stage_params`` merged over the study's own per-stage parameters.

Job payloads arrive from *untrusted clients* (hand-written curl bodies, see
``docs/SERVICE.md``), so deserialisation is strict: :meth:`JobSpec.
from_payload` validates every field shape with a :class:`ValueError` naming
the bad field, and :meth:`JobSpec.validate` additionally resolves the job
against the experiment/study registry (unknown names, unknown sweep axes
and malformed stage overrides all fail *at submit time*, HTTP 400, instead
of poisoning a daemon later).

The executed results are bit-identical to a local run: a job carries only
names and parameters, and execution flows through the exact
claim/execute/publish machinery of :mod:`repro.dist` -- so a result fetched
through the service API content-hash-matches the same sweep run serially.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.api.experiment import get_experiment
from repro.api.study import get_study, resolve_pipeline
from repro.api.sweep import SweepSpec

JOB_KINDS = ("sweep", "study")

# Job lifecycle states, as reported by SpecQueue.status()/the HTTP API.
JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"
JOB_STATES = (JOB_QUEUED, JOB_RUNNING, JOB_DONE, JOB_FAILED)

_PAYLOAD_FIELDS = {"kind", "name", "sweep", "params", "stage_params"}


def _checked_params(value: Any, label: str) -> dict[str, Any]:
    """A flat ``{param: value}`` mapping, or a ValueError naming ``label``."""
    if value is None:
        return {}
    if not isinstance(value, Mapping):
        raise ValueError(
            f"job field {label!r} must be a mapping of parameter name to "
            f"value, got {type(value).__name__}"
        )
    return {str(key): cell for key, cell in value.items()}


def _checked_stage_params(value: Any) -> dict[str, dict[str, Any]]:
    if value is None:
        return {}
    if not isinstance(value, Mapping):
        raise ValueError(
            "job field 'stage_params' must be a mapping of stage name to "
            f"parameter mapping, got {type(value).__name__}"
        )
    return {
        str(stage): _checked_params(overrides, f"stage_params[{str(stage)!r}]")
        for stage, overrides in value.items()
    }


@dataclass(frozen=True)
class JobSpec:
    """One submitted unit of service work: a sweep or a study execution.

    Attributes
    ----------
    kind:
        ``"sweep"`` or ``"study"``.
    name:
        Registered experiment name (sweep jobs) or study name (study jobs).
    sweep:
        The sweep to expand.  Required for sweep jobs; optional for study
        jobs (``None`` falls back to the study's default sweep, or a single
        invocation when the study declares none).
    params:
        Fixed base parameters under the sweep axes (sweep jobs only --
        study-stage overrides belong in ``stage_params``).
    stage_params:
        Per-experiment parameter overrides for pipeline stages, keyed by
        experiment name (the :class:`~repro.api.study.Study` ``params``
        shape).
    """

    kind: str
    name: str
    sweep: SweepSpec | None = None
    params: Mapping[str, Any] = field(default_factory=dict)
    stage_params: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ValueError(
                f"job field 'kind' must be one of {JOB_KINDS}, got {self.kind!r}"
            )
        if not isinstance(self.name, str) or not self.name:
            raise ValueError(
                f"job field 'name' must be a non-empty string, got {self.name!r}"
            )
        if self.sweep is not None and not isinstance(self.sweep, SweepSpec):
            raise ValueError(
                f"job field 'sweep' must be a SweepSpec or None, got {self.sweep!r}"
            )
        if self.kind == "sweep" and self.sweep is None:
            raise ValueError(
                "a sweep job needs a 'sweep' descriptor (a single invocation "
                "is a one-point sweep)"
            )
        object.__setattr__(self, "params", _checked_params(self.params, "params"))
        object.__setattr__(self, "stage_params", _checked_stage_params(self.stage_params))
        if self.kind == "study" and self.params:
            raise ValueError(
                "study jobs take per-stage overrides in 'stage_params' "
                "(keyed by experiment name), not flat 'params'"
            )

    # --- registry validation ----------------------------------------------

    def validate(self) -> "JobSpec":
        """Resolve the job against the registry; raises on anything unknown.

        The submit-time gate: an unregistered experiment/study, a sweep axis
        or base parameter the experiment does not declare, or stage
        overrides naming stages outside the pipeline all raise here
        (:class:`~repro.api.experiment.ExperimentError` subclasses or
        :class:`ValueError`), so the HTTP server can reject the job with a
        clear 400 instead of leaving a daemon to fail it later.  Returns
        ``self`` for chaining.
        """
        if self.kind == "sweep":
            experiment = get_experiment(self.name)
            for axis in self.sweep.axis_names:
                experiment.spec(axis)  # raises ParameterError on unknown axes
            for key in self.params:
                experiment.spec(key)
            if self.stage_params:
                resolve_pipeline(experiment, self.stage_params)
        else:
            study = get_study(self.name)
            if self.sweep is not None:
                target = get_experiment(study.target)
                for axis in self.sweep.axis_names:
                    target.spec(axis)
            merged = {name: dict(values) for name, values in study.params.items()}
            for name, values in self.stage_params.items():
                merged.setdefault(name, {}).update(values)
            resolve_pipeline(study.target, merged)
        return self

    # --- serialisation ----------------------------------------------------

    def to_payload(self) -> dict[str, Any]:
        """The JSON document written into the queue (see :meth:`from_payload`)."""
        return {
            "kind": self.kind,
            "name": self.name,
            "sweep": None if self.sweep is None else self.sweep.to_meta(),
            "params": dict(self.params),
            "stage_params": {
                name: dict(values) for name, values in self.stage_params.items()
            },
        }

    @classmethod
    def from_payload(cls, payload: Any) -> "JobSpec":
        """Rebuild a spec from a queue document, strictly validated.

        Every malformed shape raises a :class:`ValueError` naming the bad
        field; the sweep descriptor goes through the hardened
        :meth:`SweepSpec.from_meta`.
        """
        if not isinstance(payload, Mapping):
            raise ValueError(
                f"job spec must be a JSON object, got {type(payload).__name__}"
            )
        unknown = sorted(set(map(str, payload)) - _PAYLOAD_FIELDS)
        if unknown:
            raise ValueError(
                f"job spec has unknown fields {unknown}; "
                f"allowed: {sorted(_PAYLOAD_FIELDS)}"
            )
        missing = sorted({"kind", "name"} - set(payload))
        if missing:
            raise ValueError(f"job spec is missing required fields {missing}")
        raw_sweep = payload.get("sweep")
        sweep = None if raw_sweep is None else SweepSpec.from_meta(raw_sweep)
        return cls(
            kind=payload["kind"],
            name=payload["name"],
            sweep=sweep,
            params=payload.get("params"),
            stage_params=payload.get("stage_params"),
        )

    def describe(self) -> str:
        """One-line human summary (daemon logs and ``repro status``)."""
        sweep = "-" if self.sweep is None else f"{self.sweep.mode}[{len(self.sweep)}]"
        return f"{self.kind} {self.name} sweep={sweep}"
